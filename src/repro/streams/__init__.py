"""Data-stream anonymization (continuous publishing under a delay bound)."""

from .castle import AnonymizedTuple, Castle, StreamTuple

__all__ = ["AnonymizedTuple", "Castle", "StreamTuple"]
