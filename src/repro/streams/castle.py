"""CASTLE: Continuously Anonymizing STreaming data via adaptive cLustEring
(Cao, Carminati, Ferrari & Tan, 2008).

Batch anonymizers assume the whole table is on disk. Publishing a *stream*
(tuples arrive one at a time and must be released within a delay bound δ)
needs different machinery: CASTLE maintains a working set of clusters whose
generalization regions grow as tuples join, and emits a tuple — generalized
to its cluster's region — the moment it expires.

Protocol per arriving tuple ``t`` at position ``p``:

1. **placement** — add ``t`` to the non-anonymized cluster whose region
   grows least (by NCP-style enlargement), unless even the best enlargement
   would push that cluster past the info-loss threshold ``τ`` (tracked as a
   running average of recently emitted clusters) and the cluster budget β
   allows opening a fresh cluster;
2. **expiry** — any tuple with position ``≤ p − δ`` must ship now:

   * its cluster has ≥ k members → the whole cluster is emitted (every
     member generalized to the cluster region) and, if its loss is below τ,
     the region is kept as a **reusable** k-anonymized cluster;
   * the cluster is small → first try re-publishing through a reusable
     region that covers the tuple; otherwise merge the cluster with its
     nearest peers until it reaches k, then emit.

Every emitted tuple therefore belongs to a group of ≥ k tuples sharing one
generalized region — the stream analogue of k-anonymity (tuples re-published
through a reused region inherit that region's ≥ k support). Experiment E26
reproduces the canonical trade-off: information loss falls as the delay
budget δ grows (more time to gather k similar tuples), approaching but never
beating batch Mondrian, which sees the whole table at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.hierarchy import Hierarchy
from ..errors import SchemaError

__all__ = ["StreamTuple", "AnonymizedTuple", "Castle"]


@dataclass(frozen=True)
class StreamTuple:
    """One arriving record: position in the stream plus QI values.

    ``numeric`` maps numeric QI names to floats; ``categorical`` maps
    categorical QI names to *ground codes* into the matching hierarchy.
    ``payload`` carries anything the caller wants back (e.g. a row id).
    """

    position: int
    numeric: Mapping[str, float]
    categorical: Mapping[str, int]
    payload: object = None


@dataclass(frozen=True)
class AnonymizedTuple:
    """An emitted record: original position/payload + generalized QIs.

    ``forced`` marks emissions that could not reach k support: the delay
    bound expired while fewer than k tuples were alive to merge with (this
    happens mid-stream right after a large cluster drains the buffer, and
    for the trailing tuples at flush). Consumers wanting a strict guarantee
    should drop forced emissions — the paper's "suppress" option.
    """

    position: int
    payload: object
    generalized: Mapping[str, object]
    cluster_size: int
    loss: float
    forced: bool = False


class _Cluster:
    """A growing generalization region plus its member tuples."""

    __slots__ = ("members", "num_lo", "num_hi", "cat_codes")

    def __init__(self) -> None:
        self.members: list[StreamTuple] = []
        self.num_lo: dict[str, float] = {}
        self.num_hi: dict[str, float] = {}
        self.cat_codes: dict[str, set[int]] = {}

    def add(self, t: StreamTuple) -> None:
        self.members.append(t)
        for name, value in t.numeric.items():
            self.num_lo[name] = min(self.num_lo.get(name, value), value)
            self.num_hi[name] = max(self.num_hi.get(name, value), value)
        for name, code in t.categorical.items():
            self.cat_codes.setdefault(name, set()).add(code)

    def absorb(self, other: "_Cluster") -> None:
        for t in other.members:
            self.add(t)

    def __len__(self) -> int:
        return len(self.members)


class Castle:
    """Streaming k-anonymizer with delay constraint δ.

    Parameters
    ----------
    k:
        minimum cluster support before emission.
    delta:
        delay bound — a tuple arriving at position ``p`` is forced out once
        position ``p + delta`` arrives (or at :meth:`flush`).
    beta:
        maximum number of concurrently open clusters.
    numeric_ranges:
        ``{name: (lo, hi)}`` global span per numeric QI (normalizes loss).
    hierarchies:
        categorical QI name → :class:`~repro.core.Hierarchy`.
    mu:
        window length of the running info-loss average that sets τ.
    max_reusable:
        cap on retained reusable k-anonymized regions.
    """

    def __init__(
        self,
        k: int,
        delta: int,
        numeric_ranges: Mapping[str, tuple[float, float]] | None = None,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        beta: int = 50,
        mu: int = 100,
        max_reusable: int = 100,
    ):
        if k < 1:
            raise SchemaError(f"k must be >= 1, got {k}")
        if delta < k:
            raise SchemaError(f"delay delta ({delta}) must be >= k ({k})")
        self.k = int(k)
        self.delta = int(delta)
        self.beta = int(beta)
        self.mu = int(mu)
        self.max_reusable = int(max_reusable)
        self.numeric_ranges = dict(numeric_ranges or {})
        self.hierarchies = dict(hierarchies or {})
        for name, (lo, hi) in self.numeric_ranges.items():
            if hi <= lo:
                raise SchemaError(f"numeric range of {name!r} must have hi > lo")
        self._open: list[_Cluster] = []
        self._reusable: list[_Cluster] = []
        self._pending: list[StreamTuple] = []  # in arrival order
        self._recent_losses: list[float] = []
        self.stats = {"emitted": 0, "merges": 0, "reused": 0, "clusters_opened": 0}

    # -- public API ----------------------------------------------------------

    def push(self, t: StreamTuple) -> list[AnonymizedTuple]:
        """Accept one tuple; return whatever the delay bound forces out."""
        self._validate(t)
        self._place(t)
        self._pending.append(t)
        emitted: list[AnonymizedTuple] = []
        while self._pending and self._pending[0].position <= t.position - self.delta:
            emitted.extend(self._expire(self._pending[0]))
        return emitted

    def flush(self) -> list[AnonymizedTuple]:
        """End of stream: force out everything still pending."""
        emitted: list[AnonymizedTuple] = []
        while self._pending:
            emitted.extend(self._expire(self._pending[0]))
        return emitted

    # -- placement -----------------------------------------------------------

    def _validate(self, t: StreamTuple) -> None:
        for name in t.numeric:
            if name not in self.numeric_ranges:
                raise SchemaError(f"no numeric range declared for QI {name!r}")
        for name, code in t.categorical.items():
            hierarchy = self.hierarchies.get(name)
            if hierarchy is None:
                raise SchemaError(f"no hierarchy declared for categorical QI {name!r}")
            if not 0 <= code < len(hierarchy.ground):
                raise SchemaError(f"code {code} outside {name!r} ground domain")

    def _place(self, t: StreamTuple) -> None:
        tau = self._tau()
        best, best_loss = None, np.inf
        for cluster in self._open:
            loss = self._loss_with(cluster, t)
            if loss < best_loss:
                best, best_loss = cluster, loss
        over_threshold = best is None or best_loss > tau
        if over_threshold and len(self._open) < self.beta:
            fresh = _Cluster()
            fresh.add(t)
            self._open.append(fresh)
            self.stats["clusters_opened"] += 1
        else:
            assert best is not None  # beta >= 1 guarantees an open cluster
            best.add(t)

    def _tau(self) -> float:
        """Info-loss threshold: average of recently emitted cluster losses.

        Zero before the first emission, so the warm-up phase opens fresh
        clusters (up to β) instead of piling everything into one region —
        the paper's behaviour.
        """
        if not self._recent_losses:
            return 0.0
        return float(np.mean(self._recent_losses))

    # -- expiry --------------------------------------------------------------

    def _expire(self, t: StreamTuple) -> list[AnonymizedTuple]:
        cluster = self._cluster_of(t)
        if len(cluster) >= self.k:
            return self._emit(cluster)
        reusable = self._covering_reusable(t)
        if reusable is not None:
            self.stats["reused"] += 1
            self._pending.remove(t)
            cluster.members.remove(t)
            if not cluster.members:
                self._open.remove(cluster)
            loss = self._cluster_loss(reusable)
            return [
                AnonymizedTuple(
                    position=t.position,
                    payload=t.payload,
                    generalized=self._generalize(reusable, t),
                    cluster_size=len(reusable),
                    loss=loss,
                )
            ]
        self._merge_until_k(cluster)
        return self._emit(cluster)

    def _cluster_of(self, t: StreamTuple) -> _Cluster:
        for cluster in self._open:
            if any(member is t for member in cluster.members):
                return cluster
        raise SchemaError("tuple expired but belongs to no open cluster")  # pragma: no cover

    def _covering_reusable(self, t: StreamTuple) -> _Cluster | None:
        for cluster in self._reusable:
            if self._covers(cluster, t):
                return cluster
        return None

    def _covers(self, cluster: _Cluster, t: StreamTuple) -> bool:
        for name, value in t.numeric.items():
            if name not in cluster.num_lo:
                return False
            if not cluster.num_lo[name] <= value <= cluster.num_hi[name]:
                return False
        for name, code in t.categorical.items():
            codes = cluster.cat_codes.get(name)
            if codes is None:
                return False
            level = self._lca_level(self.hierarchies[name], codes)
            target = self.hierarchies[name].map_codes(np.array([code]), level)[0]
            anchor = self.hierarchies[name].map_codes(np.array([next(iter(codes))]), level)[0]
            if target != anchor:
                return False
        return True

    def _merge_until_k(self, cluster: _Cluster) -> None:
        """Absorb nearest open clusters until the cluster reaches k."""
        while len(cluster) < self.k:
            candidates = [c for c in self._open if c is not cluster]
            if not candidates:
                break  # stream smaller than k: emit undersized (documented)
            nearest = min(candidates, key=lambda c: self._merged_loss(cluster, c))
            cluster.absorb(nearest)
            self._open.remove(nearest)
            self.stats["merges"] += 1

    def _emit(self, cluster: _Cluster) -> list[AnonymizedTuple]:
        loss = self._cluster_loss(cluster)
        forced = len(cluster) < self.k
        out = [
            AnonymizedTuple(
                position=member.position,
                payload=member.payload,
                generalized=self._generalize(cluster, member),
                cluster_size=len(cluster),
                loss=loss,
                forced=forced,
            )
            for member in cluster.members
        ]
        self.stats["emitted"] += len(out)
        member_set = {id(m) for m in cluster.members}
        self._pending = [p for p in self._pending if id(p) not in member_set]
        self._open.remove(cluster)
        self._recent_losses.append(loss)
        if len(self._recent_losses) > self.mu:
            self._recent_losses = self._recent_losses[-self.mu :]
        if len(cluster) >= self.k and loss <= self._tau() and len(self._reusable) < self.max_reusable:
            self._reusable.append(cluster)
        return sorted(out, key=lambda a: a.position)

    # -- loss geometry ---------------------------------------------------------

    def _cluster_loss(self, cluster: _Cluster) -> float:
        """Average per-QI NCP of the cluster's region, in [0, 1]."""
        parts: list[float] = []
        for name, (lo, hi) in self.numeric_ranges.items():
            if name in cluster.num_lo:
                parts.append((cluster.num_hi[name] - cluster.num_lo[name]) / (hi - lo))
        for name, hierarchy in self.hierarchies.items():
            codes = cluster.cat_codes.get(name)
            if not codes:
                continue
            domain = len(hierarchy.ground)
            if domain <= 1:
                parts.append(0.0)
                continue
            level = self._lca_level(hierarchy, codes)
            generalized = hierarchy.map_codes(np.array([next(iter(codes))]), level)[0]
            covered = int(hierarchy.leaf_count(level)[generalized])
            parts.append((covered - 1) / (domain - 1))
        return float(np.mean(parts)) if parts else 0.0

    def _loss_with(self, cluster: _Cluster, t: StreamTuple) -> float:
        """Region loss if ``t`` joined ``cluster`` (no mutation)."""
        ghost = _Cluster()
        ghost.num_lo, ghost.num_hi = dict(cluster.num_lo), dict(cluster.num_hi)
        ghost.cat_codes = {k: set(v) for k, v in cluster.cat_codes.items()}
        ghost.members = []
        ghost.add(t)
        return self._cluster_loss(ghost)

    def _merged_loss(self, a: _Cluster, b: _Cluster) -> float:
        ghost = _Cluster()
        ghost.num_lo, ghost.num_hi = dict(a.num_lo), dict(a.num_hi)
        ghost.cat_codes = {k: set(v) for k, v in a.cat_codes.items()}
        for t in b.members:
            ghost.add(t)
        return self._cluster_loss(ghost)

    @staticmethod
    def _lca_level(hierarchy: Hierarchy, codes: set[int]) -> int:
        """Lowest hierarchy level putting every code in one bucket."""
        code_array = np.fromiter(codes, dtype=np.int64)
        for level in range(hierarchy.height + 1):
            mapped = hierarchy.map_codes(code_array, level)
            if np.all(mapped == mapped[0]):
                return level
        return hierarchy.height  # pragma: no cover - top level always unifies

    def _generalize(self, cluster: _Cluster, t: StreamTuple) -> dict[str, object]:
        """The published value of each QI for a member of ``cluster``."""
        out: dict[str, object] = {}
        for name in t.numeric:
            out[name] = (cluster.num_lo[name], cluster.num_hi[name])
        for name in t.categorical:
            hierarchy = self.hierarchies[name]
            codes = cluster.cat_codes[name]
            level = self._lca_level(hierarchy, codes)
            mapped = hierarchy.map_codes(np.array([next(iter(codes))]), level)[0]
            out[name] = hierarchy.labels(level)[mapped]
        return out

    def __repr__(self) -> str:
        return (
            f"Castle(k={self.k}, delta={self.delta}, beta={self.beta}, "
            f"open={len(self._open)}, reusable={len(self._reusable)})"
        )
