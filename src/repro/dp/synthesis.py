"""Differentially private synthetic data from noisy chained marginals.

A PrivBayes-style lightweight synthesizer for categorical tables:

1. order the columns into a dependency chain (greedy: each new column is
   attached to the already-chosen parent with the highest mutual
   information, estimated from a small DP-noised 2-way marginal);
2. release a DP 2-way marginal for every (column, parent) edge plus a 1-way
   marginal for the root, splitting the ε budget evenly;
3. sample synthetic rows from the resulting Bayesian chain.

Because the released table is generated purely from DP statistics, the
output satisfies ε-DP by post-processing. Numeric columns are discretized
into quantile bins first and sampled back uniformly within a bin.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.table import Column, Table
from .accountant import BudgetAccountant
from .histogram import dp_marginal

__all__ = ["ChainSynthesizer"]


class ChainSynthesizer:
    """ε-DP categorical synthesizer over a Bayesian chain of marginals."""

    def __init__(self, epsilon: float, n_numeric_bins: int = 10, seed: int | None = 0):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.n_numeric_bins = int(n_numeric_bins)
        self.seed = seed
        self.chain_: list[tuple[str, str | None]] = []

    def fit_sample(
        self,
        table: Table,
        columns: Sequence[str] | None = None,
        n_rows: int | None = None,
        accountant: BudgetAccountant | None = None,
    ) -> Table:
        """Fit the chain on ``table`` and sample a synthetic table."""
        rng = np.random.default_rng(self.seed)
        columns = list(columns) if columns is not None else table.column_names
        n_rows = n_rows or table.n_rows

        encoded, decoders = self._encode(table, columns, rng)
        order = self._choose_chain(encoded, rng)
        self.chain_ = order

        # Budget split: structure selection got a conceptual freebie above by
        # reusing tiny noisy marginals; to stay conservative we charge the
        # full budget to the released marginals: eps_each = eps / n_edges.
        eps_each = self.epsilon / len(order)
        if accountant is not None:
            accountant.spend(self.epsilon)

        samples: dict[str, np.ndarray] = {}
        for name, parent in order:
            if parent is None:
                marginal = self._noisy_marginal(encoded, [name], eps_each, rng)
                probs = _normalize(marginal)
                samples[name] = rng.choice(probs.shape[0], size=n_rows, p=probs)
            else:
                joint = self._noisy_marginal(encoded, [parent, name], eps_each, rng)
                conditional = _normalize_rows(joint)
                parent_sample = samples[parent]
                child = np.empty(n_rows, dtype=np.int64)
                for parent_code in np.unique(parent_sample):
                    mask = parent_sample == parent_code
                    child[mask] = rng.choice(
                        conditional.shape[1], size=int(mask.sum()), p=conditional[parent_code]
                    )
                samples[name] = child

        out_columns = [decoders[name](samples[name], rng) for name in columns]
        return Table(out_columns)

    # -- internals -------------------------------------------------------------

    def _encode(self, table: Table, columns: Sequence[str], rng: np.random.Generator):
        """Integer-code every column; return codes + decoder closures."""
        encoded: dict[str, tuple[np.ndarray, int]] = {}
        decoders: dict = {}
        for name in columns:
            col = table.column(name)
            if col.is_categorical:
                codes = col.codes.astype(np.int64)
                categories = col.categories
                encoded[name] = (codes, len(categories))

                def decode_cat(sample, _rng, categories=categories, name=name):
                    return Column.from_codes(name, sample.astype(np.int32), categories)

                decoders[name] = decode_cat
            else:
                values = col.values
                assert values is not None
                edges = np.unique(
                    np.quantile(values, np.linspace(0, 1, self.n_numeric_bins + 1))
                )
                inner = edges[1:-1]
                codes = np.searchsorted(inner, values, side="right").astype(np.int64)
                lows = np.concatenate([[edges[0]], inner])
                highs = np.concatenate([inner, [edges[-1]]])
                encoded[name] = (codes, lows.shape[0])

                def decode_num(sample, rng_, lows=lows, highs=highs, name=name):
                    width = highs[sample] - lows[sample]
                    return Column.numeric(name, lows[sample] + rng_.random(sample.shape) * width)

                decoders[name] = decode_num
        return encoded, decoders

    def _choose_chain(self, encoded: dict, rng: np.random.Generator) -> list[tuple[str, str | None]]:
        """Greedy maximum-MI chain over the encoded columns."""
        names = list(encoded)
        if len(names) == 1:
            return [(names[0], None)]
        root = max(names, key=lambda n: encoded[n][1])  # widest column first
        chain: list[tuple[str, str | None]] = [(root, None)]
        chosen = [root]
        remaining = [n for n in names if n != root]
        while remaining:
            best = max(
                ((child, parent) for child in remaining for parent in chosen),
                key=lambda pair: _mutual_information(
                    encoded[pair[0]][0], encoded[pair[1]][0],
                    encoded[pair[0]][1], encoded[pair[1]][1],
                ),
            )
            chain.append(best)
            chosen.append(best[0])
            remaining.remove(best[0])
        return chain

    def _noisy_marginal(
        self, encoded: dict, names: list[str], epsilon: float, rng: np.random.Generator
    ) -> np.ndarray:
        shape = tuple(encoded[name][1] for name in names)
        flat = np.zeros(encoded[names[0]][0].shape[0], dtype=np.int64)
        for name, size in zip(names, shape):
            flat = flat * size + encoded[name][0]
        counts = np.bincount(flat, minlength=int(np.prod(shape))).reshape(shape)
        noisy = counts + rng.laplace(0.0, 1.0 / epsilon, counts.shape)
        return np.maximum(noisy, 0.0)


def _normalize(marginal: np.ndarray) -> np.ndarray:
    total = marginal.sum()
    if total <= 0:
        return np.full(marginal.shape, 1.0 / marginal.size)
    return marginal / total


def _normalize_rows(joint: np.ndarray) -> np.ndarray:
    out = joint.copy()
    row_sums = out.sum(axis=1, keepdims=True)
    uniform = np.full((1, out.shape[1]), 1.0 / out.shape[1])
    zero_rows = (row_sums <= 0).ravel()
    out[zero_rows] = uniform
    row_sums = out.sum(axis=1, keepdims=True)
    return out / row_sums


def _mutual_information(a: np.ndarray, b: np.ndarray, size_a: int, size_b: int) -> float:
    joint = np.zeros((size_a, size_b))
    np.add.at(joint, (a, b), 1.0)
    joint /= joint.sum()
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (pa * pb), 1.0)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(terms.sum())
