"""Advanced DP query primitives: SVT, noisy-max, and noisy statistics.

* :class:`SparseVector` — the sparse vector technique (SVT): answer a long
  adaptive stream of threshold queries, paying budget only for the (at most
  ``c``) queries that exceed the threshold. The classic Dwork/Roth AboveThreshold
  instantiation with budget split ε = ε₁ + ε₂.
* :func:`report_noisy_max` — select the index of the (noisily) largest
  counting query; ε-DP regardless of the number of candidates.
* :func:`dp_mean`, :func:`dp_quantile` — bounded-domain mean (Laplace on sum
  and count) and exponential-mechanism quantile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import BudgetError

__all__ = ["SparseVector", "report_noisy_max", "dp_mean", "dp_quantile"]


class SparseVector:
    """AboveThreshold: pay only for queries that cross the threshold.

    Parameters
    ----------
    epsilon:
        total privacy budget for this SVT instance.
    threshold:
        the public threshold queries are compared against.
    max_positives:
        the number of above-threshold answers allowed before the instance
        refuses further queries (``c`` in the literature).
    sensitivity:
        sensitivity of each individual query (1 for counts).
    """

    def __init__(
        self,
        epsilon: float,
        threshold: float,
        max_positives: int = 1,
        sensitivity: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if max_positives < 1:
            raise ValueError(f"max_positives must be >= 1, got {max_positives}")
        self.epsilon = float(epsilon)
        self.threshold = float(threshold)
        self.max_positives = int(max_positives)
        self.sensitivity = float(sensitivity)
        self._rng = rng or np.random.default_rng()
        self._epsilon1 = self.epsilon / 2.0
        self._epsilon2 = self.epsilon / 2.0
        self._noisy_threshold = self.threshold + self._rng.laplace(
            0.0, self.sensitivity / self._epsilon1
        )
        self._positives_used = 0
        self.queries_answered = 0

    @property
    def exhausted(self) -> bool:
        return self._positives_used >= self.max_positives

    def query(self, true_answer: float) -> bool:
        """True iff the (noisy) answer exceeds the (noisy) threshold.

        Negative answers are free beyond the initial threshold noise; each
        positive answer consumes one of the ``max_positives`` slots. Raises
        :class:`BudgetError` once exhausted.
        """
        if self.exhausted:
            raise BudgetError(
                f"sparse vector exhausted after {self.max_positives} positives"
            )
        self.queries_answered += 1
        noise = self._rng.laplace(
            0.0, 2.0 * self.max_positives * self.sensitivity / self._epsilon2
        )
        if true_answer + noise >= self._noisy_threshold:
            self._positives_used += 1
            # Re-draw the threshold noise after each positive (the c>1 variant).
            self._noisy_threshold = self.threshold + self._rng.laplace(
                0.0, self.sensitivity / self._epsilon1
            )
            return True
        return False


def report_noisy_max(
    counts: Sequence[float],
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | None = None,
) -> int:
    """Index of the largest count under one-sided exponential noise (ε-DP)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    rng = rng or np.random.default_rng()
    counts = np.asarray(counts, dtype=np.float64)
    noisy = counts + rng.exponential(2.0 * sensitivity / epsilon, counts.shape)
    return int(noisy.argmax())


def dp_mean(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: np.random.Generator | None = None,
) -> float:
    """ε-DP mean of values clipped to [lo, hi].

    Budget is split between the noisy sum (sensitivity hi−lo after
    recentering... we use the standard clip-and-noise-the-sum with public n).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if hi <= lo:
        raise ValueError("need hi > lo")
    rng = rng or np.random.default_rng()
    clipped = np.clip(np.asarray(values, dtype=np.float64), lo, hi)
    n = clipped.shape[0]
    if n == 0:
        raise ValueError("empty input")
    noisy_sum = clipped.sum() + rng.laplace(0.0, (hi - lo) / epsilon)
    return float(np.clip(noisy_sum / n, lo, hi))


def dp_quantile(
    values: np.ndarray,
    q: float,
    epsilon: float,
    lo: float,
    hi: float,
    n_candidates: int = 128,
    rng: np.random.Generator | None = None,
) -> float:
    """ε-DP q-quantile via the exponential mechanism over a candidate grid.

    Utility of a candidate ``t`` is −|#(values < t) − q·n|; its sensitivity
    is 1, so probabilities ∝ exp(ε·u/2).
    """
    if not 0 <= q <= 1:
        raise ValueError(f"q must lie in [0, 1], got {q}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    rng = rng or np.random.default_rng()
    values = np.clip(np.asarray(values, dtype=np.float64), lo, hi)
    candidates = np.linspace(lo, hi, n_candidates)
    ranks = np.searchsorted(np.sort(values), candidates)
    utilities = -np.abs(ranks - q * values.shape[0])
    logits = epsilon * utilities / 2.0
    logits -= logits.max()
    probs = np.exp(logits)
    probs /= probs.sum()
    return float(candidates[rng.choice(n_candidates, p=probs)])
