"""Smooth sensitivity (Nissim, Raskhodnikova & Smith, STOC 2007) for the median.

Global sensitivity is brutal for the median: moving one record can drag it
across the whole data range, so calibrating Laplace noise to ``hi − lo``
drowns the statistic. But on *concentrated* data the median barely moves —
its **local** sensitivity is tiny. Local sensitivity cannot be used directly
(its own value leaks), so NRS smooth it:

    S_β(x) = max_t  e^{−β·t} · LS⁽ᵗ⁾(x)

where ``LS⁽ᵗ⁾`` is the worst local sensitivity over databases at edit
distance t. For the median of a sorted sample clamped to ``[lo, hi]``:

    LS⁽ᵗ⁾(x) = max_{0≤s≤t+1} ( x̃[m+s] − x̃[m+s−t−1] )

with ``x̃`` padded by lo/hi outside the sample and m the median index.

Noise calibrated to S_β yields DP via an admissible distribution:

* **Cauchy** noise ``6·S/ε`` with β = ε/6 → pure ε-DP;
* **Laplace** noise ``2·S/ε`` with β = ε/(2·ln(2/δ)) → (ε, δ)-DP.

:func:`dp_median_global` is the global-sensitivity baseline the experiment
(E31) compares against: on concentrated data the smooth-sensitivity error is
orders of magnitude lower, which is the paper's headline figure.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import BudgetError

__all__ = [
    "local_sensitivity_at_distance",
    "smooth_sensitivity_median",
    "dp_median_smooth",
    "dp_median_global",
]


def _prepare(values, lo: float, hi: float) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise BudgetError("need a non-empty 1-D sample")
    if hi <= lo:
        raise BudgetError(f"need hi > lo, got [{lo}, {hi}]")
    return np.sort(np.clip(values, lo, hi))


def _padded(sorted_values: np.ndarray, index: int, lo: float, hi: float) -> float:
    """x̃[i]: the sample padded with lo below and hi above."""
    if index < 0:
        return lo
    if index >= sorted_values.size:
        return hi
    return float(sorted_values[index])


def local_sensitivity_at_distance(
    values, t: int, lo: float, hi: float
) -> float:
    """LS⁽ᵗ⁾ of the median: worst local sensitivity at edit distance t."""
    if t < 0:
        raise BudgetError(f"distance must be non-negative, got {t}")
    x = _prepare(values, lo, hi)
    m = (x.size - 1) // 2
    worst = 0.0
    for s in range(t + 2):
        upper = _padded(x, m + s, lo, hi)
        lower = _padded(x, m + s - t - 1, lo, hi)
        worst = max(worst, upper - lower)
    return worst


def smooth_sensitivity_median(values, beta: float, lo: float, hi: float) -> float:
    """β-smooth sensitivity of the median over ``[lo, hi]``-clamped data.

    Exact O(n²) maximization over distances; distances past n add nothing
    because LS⁽ᵗ⁾ is already ``hi − lo`` there and e^{−βt} only shrinks.
    """
    if beta <= 0:
        raise BudgetError(f"beta must be positive, got {beta}")
    x = _prepare(values, lo, hi)
    best = 0.0
    span = hi - lo
    for t in range(x.size + 1):
        decay = math.exp(-beta * t)
        if decay * span <= best:  # no larger value possible beyond this t
            break
        best = max(best, decay * local_sensitivity_at_distance(x, t, lo, hi))
    return best


def dp_median_smooth(
    values,
    epsilon: float,
    lo: float,
    hi: float,
    delta: float | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """DP median with smooth-sensitivity-calibrated noise.

    ``delta=None`` uses Cauchy noise (pure ε-DP); a δ in (0, 1) uses Laplace
    noise for (ε, δ)-DP with the tighter β = ε/(2·ln(2/δ)).
    """
    if epsilon <= 0:
        raise BudgetError(f"epsilon must be positive, got {epsilon}")
    rng = rng or np.random.default_rng()
    x = _prepare(values, lo, hi)
    median = float(np.median(x))
    if delta is None:
        beta = epsilon / 6.0
        s = smooth_sensitivity_median(x, beta, lo, hi)
        noise = (6.0 * s / epsilon) * rng.standard_cauchy()
    else:
        if not 0 < delta < 1:
            raise BudgetError(f"delta must be in (0, 1), got {delta}")
        beta = epsilon / (2.0 * math.log(2.0 / delta))
        s = smooth_sensitivity_median(x, beta, lo, hi)
        noise = rng.laplace(0.0, 2.0 * s / epsilon)
    return float(np.clip(median + noise, lo, hi))


def dp_median_global(
    values,
    epsilon: float,
    lo: float,
    hi: float,
    rng: np.random.Generator | None = None,
) -> float:
    """The global-sensitivity baseline: Laplace((hi − lo)/ε) on the median."""
    if epsilon <= 0:
        raise BudgetError(f"epsilon must be positive, got {epsilon}")
    rng = rng or np.random.default_rng()
    x = _prepare(values, lo, hi)
    median = float(np.median(x))
    noise = rng.laplace(0.0, (hi - lo) / epsilon)
    return float(np.clip(median + noise, lo, hi))
