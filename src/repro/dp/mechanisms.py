"""Differential-privacy mechanisms.

The building blocks of ε-differential privacy, each parameterized by its
query sensitivity:

* :class:`LaplaceMechanism` — real-valued queries; noise scale
  ``sensitivity / epsilon``.
* :class:`GeometricMechanism` — integer counts; two-sided geometric noise,
  the discrete analogue of Laplace.
* :class:`GaussianMechanism` — (ε, δ)-DP with L2 sensitivity.
* :class:`ExponentialMechanism` — selection from a candidate set by noisy
  utility score.
* :class:`RandomizedResponse` — per-respondent local DP over a categorical
  domain, with the unbiased frequency estimator.

All mechanisms take an explicit ``numpy`` Generator so experiments are
reproducible; none of them mutates shared state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "LaplaceMechanism",
    "GeometricMechanism",
    "GaussianMechanism",
    "ExponentialMechanism",
    "RandomizedResponse",
]


def _check_epsilon(epsilon: float) -> float:
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return float(epsilon)


class LaplaceMechanism:
    """Add Laplace(sensitivity / epsilon) noise to real-valued answers."""

    def __init__(self, epsilon: float, sensitivity: float = 1.0):
        self.epsilon = _check_epsilon(epsilon)
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = float(sensitivity)

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def randomize(self, answers, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        answers = np.asarray(answers, dtype=np.float64)
        return answers + rng.laplace(0.0, self.scale, answers.shape)

    def expected_absolute_error(self) -> float:
        """E|noise| = scale (mean absolute deviation of Laplace)."""
        return self.scale


class GeometricMechanism:
    """Two-sided geometric noise for integer counting queries."""

    def __init__(self, epsilon: float, sensitivity: int = 1):
        self.epsilon = _check_epsilon(epsilon)
        if sensitivity < 1:
            raise ValueError(f"sensitivity must be >= 1, got {sensitivity}")
        self.sensitivity = int(sensitivity)

    def randomize(self, answers, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        answers = np.asarray(answers, dtype=np.int64)
        alpha = np.exp(-self.epsilon / self.sensitivity)
        # Two-sided geometric = difference of two geometric variables.
        p = 1.0 - alpha
        left = rng.geometric(p, answers.shape) - 1
        right = rng.geometric(p, answers.shape) - 1
        return answers + left - right


class GaussianMechanism:
    """(ε, δ)-DP Gaussian noise with the analytic classic calibration."""

    def __init__(self, epsilon: float, delta: float, l2_sensitivity: float = 1.0):
        self.epsilon = _check_epsilon(epsilon)
        if not 0 < delta < 1:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if l2_sensitivity <= 0:
            raise ValueError(f"l2_sensitivity must be positive, got {l2_sensitivity}")
        self.delta = float(delta)
        self.l2_sensitivity = float(l2_sensitivity)

    @property
    def sigma(self) -> float:
        return self.l2_sensitivity * np.sqrt(2.0 * np.log(1.25 / self.delta)) / self.epsilon

    def randomize(self, answers, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        answers = np.asarray(answers, dtype=np.float64)
        return answers + rng.normal(0.0, self.sigma, answers.shape)


class ExponentialMechanism:
    """Select a candidate with probability ∝ exp(ε·utility / (2·Δu))."""

    def __init__(self, epsilon: float, sensitivity: float = 1.0):
        self.epsilon = _check_epsilon(epsilon)
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = float(sensitivity)

    def probabilities(self, utilities: Sequence[float]) -> np.ndarray:
        scores = np.asarray(utilities, dtype=np.float64)
        logits = self.epsilon * scores / (2.0 * self.sensitivity)
        logits -= logits.max()  # numerical stability
        weights = np.exp(logits)
        return weights / weights.sum()

    def select(self, utilities: Sequence[float], rng: np.random.Generator | None = None) -> int:
        rng = rng or np.random.default_rng()
        probs = self.probabilities(utilities)
        return int(rng.choice(probs.shape[0], p=probs))


class RandomizedResponse:
    """k-ary randomized response: keep truth w.p. p, else uniform other value.

    With domain size ``d`` and privacy parameter ε, the truthful-answer
    probability is ``p = e^ε / (e^ε + d - 1)``, which is ε-locally-DP.
    """

    def __init__(self, epsilon: float, domain_size: int):
        self.epsilon = _check_epsilon(epsilon)
        if domain_size < 2:
            raise ValueError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)

    @property
    def p_truth(self) -> float:
        e = np.exp(self.epsilon)
        return float(e / (e + self.domain_size - 1))

    def randomize(self, codes, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        codes = np.asarray(codes, dtype=np.int64)
        lie = rng.random(codes.shape) >= self.p_truth
        # A lying respondent picks uniformly among the other d-1 values.
        offsets = rng.integers(1, self.domain_size, codes.shape)
        noisy = np.where(lie, (codes + offsets) % self.domain_size, codes)
        return noisy

    def estimate_frequencies(self, noisy_codes) -> np.ndarray:
        """Unbiased estimate of the true value frequencies."""
        noisy_codes = np.asarray(noisy_codes, dtype=np.int64)
        n = noisy_codes.shape[0]
        observed = np.bincount(noisy_codes, minlength=self.domain_size) / n
        p = self.p_truth
        q = (1.0 - p) / (self.domain_size - 1)
        return (observed - q) / (p - q)
