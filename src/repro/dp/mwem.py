"""MWEM: Multiplicative Weights + Exponential Mechanism (Hardt, Ligett & McSherry, 2012).

A workload-driven ε-DP synthesizer over a discrete domain. Where the
chain synthesizer (:class:`~repro.dp.synthesis.ChainSynthesizer`) fixes a
Bayesian-chain structure up front, MWEM *adapts* to a caller-supplied query
workload:

1. start from the uniform distribution over the full contingency domain;
2. per iteration, use the **exponential mechanism** (score = absolute error,
   sensitivity 1) to select the workload query the current synthetic
   distribution answers worst;
3. measure that query's true answer with **Laplace** noise;
4. apply **multiplicative-weights** updates pulling the synthetic
   distribution toward all measurements taken so far.

The privacy budget splits evenly across iterations, and within an iteration
evenly between selection and measurement, so the whole run is ε-DP by
sequential composition; sampling rows from the final distribution is free
post-processing.

The domain is the cross product of the chosen columns' category lists, so
MWEM is the right tool for *low-dimensional* workloads (a handful of
columns); the chain synthesizer scales to more columns but ignores the
workload. Experiment E24 reproduces the canonical comparison: MWEM beats
workload-oblivious baselines on its own workload, and error falls with both
ε and iterations until the per-measurement noise floor dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from ..core.table import Column, Table
from ..errors import NotFittedError
from .accountant import BudgetAccountant

__all__ = ["LinearQuery", "MWEM", "marginal_workload", "workload_max_error", "workload_avg_error"]


@dataclass(frozen=True)
class LinearQuery:
    """A 0/1 counting query over flattened domain cells.

    ``cells`` holds the flat indices whose total the query reports. A label
    makes experiment output readable (e.g. ``"sex=F & race=B"``).
    """

    cells: np.ndarray
    label: str = ""

    def answer(self, histogram: np.ndarray) -> float:
        return float(histogram[self.cells].sum())


class _Domain:
    """Cross-product encoding of several categorical columns."""

    def __init__(self, table: Table, columns: Sequence[str]):
        self.columns = list(columns)
        self.sizes = []
        for name in self.columns:
            col = table.column(name)
            if not col.is_categorical:
                raise NotFittedError(
                    f"MWEM needs categorical columns; discretize {name!r} first"
                )
            self.sizes.append(len(col.categories))
        self.n_cells = int(np.prod(self.sizes))
        self.categories = {name: table.column(name).categories for name in self.columns}

    def flatten(self, table: Table) -> np.ndarray:
        flat = np.zeros(table.n_rows, dtype=np.int64)
        for name, size in zip(self.columns, self.sizes):
            flat = flat * size + table.codes(name)
        return flat

    def histogram(self, table: Table) -> np.ndarray:
        return np.bincount(self.flatten(table), minlength=self.n_cells).astype(np.float64)

    def unflatten(self, flat: np.ndarray) -> dict[str, np.ndarray]:
        codes: dict[str, np.ndarray] = {}
        remaining = flat.copy()
        for name, size in zip(reversed(self.columns), reversed(self.sizes)):
            codes[name] = (remaining % size).astype(np.int32)
            remaining //= size
        return codes

    def marginal_cells(self, names: Sequence[str], values: Sequence[int]) -> np.ndarray:
        """Flat indices of all cells matching ``names[i] == values[i]``."""
        mask = np.ones(self.n_cells, dtype=bool)
        flat = np.arange(self.n_cells)
        strides = {}
        stride = 1
        for name, size in zip(reversed(self.columns), reversed(self.sizes)):
            strides[name] = (stride, size)
            stride *= size
        for name, value in zip(names, values):
            s, size = strides[name]
            mask &= (flat // s) % size == value
        return np.flatnonzero(mask)


def marginal_workload(
    table: Table,
    columns: Sequence[str],
    ways: Sequence[int] = (1, 2),
) -> list[LinearQuery]:
    """Every cell of every ``w``-way marginal (w ∈ ``ways``) as a query."""
    domain = _Domain(table, columns)
    queries: list[LinearQuery] = []
    for w in ways:
        for subset in combinations(domain.columns, w):
            sizes = [len(domain.categories[name]) for name in subset]
            for values in np.ndindex(*sizes):
                label = " & ".join(
                    f"{name}={domain.categories[name][v]}" for name, v in zip(subset, values)
                )
                queries.append(LinearQuery(domain.marginal_cells(subset, values), label))
    return queries


class MWEM:
    """ε-DP workload-adaptive synthesizer over a categorical cross domain.

    Parameters
    ----------
    epsilon:
        total privacy budget for the run.
    n_iterations:
        selection+measurement rounds ``T``; per-round budget is ε/T.
    mw_steps:
        multiplicative-weights passes over the measurement set per round.
    seed:
        RNG seed for reproducible runs (``None`` for nondeterministic).
    """

    def __init__(
        self,
        epsilon: float,
        n_iterations: int = 10,
        mw_steps: int = 20,
        seed: int | None = 0,
    ):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if n_iterations < 1:
            raise ValueError(f"need at least one iteration, got {n_iterations}")
        self.epsilon = float(epsilon)
        self.n_iterations = int(n_iterations)
        self.mw_steps = int(mw_steps)
        self.seed = seed
        self._domain: _Domain | None = None
        self._synthetic: np.ndarray | None = None
        self.measurements_: list[tuple[LinearQuery, float]] = []

    # -- fitting -------------------------------------------------------------

    def fit(
        self,
        table: Table,
        columns: Sequence[str],
        workload: Sequence[LinearQuery] | None = None,
        accountant: BudgetAccountant | None = None,
    ) -> "MWEM":
        """Run the MWEM loop against ``table`` restricted to ``columns``."""
        if accountant is not None:
            accountant.spend(self.epsilon)
        rng = np.random.default_rng(self.seed)
        domain = _Domain(table, columns)
        true_hist = domain.histogram(table)
        n = float(true_hist.sum())
        if workload is None:
            workload = marginal_workload(table, columns)
        if not workload:
            raise ValueError("workload must contain at least one query")

        eps_round = self.epsilon / self.n_iterations
        laplace_scale = 2.0 / eps_round  # half the round budget for measurement

        synthetic = np.full(domain.n_cells, n / domain.n_cells)
        self.measurements_ = []
        chosen: set[int] = set()
        for _ in range(self.n_iterations):
            idx = self._select(workload, true_hist, synthetic, eps_round / 2.0, rng, chosen)
            chosen.add(idx)
            query = workload[idx]
            measurement = query.answer(true_hist) + rng.laplace(0.0, laplace_scale)
            self.measurements_.append((query, measurement))
            synthetic = self._multiplicative_weights(synthetic, n)

        self._domain = domain
        self._synthetic = synthetic
        return self

    def _select(
        self,
        workload: Sequence[LinearQuery],
        true_hist: np.ndarray,
        synthetic: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        already_chosen: set[int],
    ) -> int:
        """Exponential mechanism over |error| scores (sensitivity 1)."""
        scores = np.array(
            [
                -np.inf if i in already_chosen
                else abs(q.answer(true_hist) - q.answer(synthetic))
                for i, q in enumerate(workload)
            ]
        )
        if np.isinf(scores).all():  # workload smaller than T: allow repeats
            scores = np.array(
                [abs(q.answer(true_hist) - q.answer(synthetic)) for q in workload]
            )
        logits = (epsilon / 2.0) * scores
        logits -= logits.max()
        weights = np.exp(logits)
        weights[np.isnan(weights)] = 0.0
        total = weights.sum()
        if total <= 0:  # pragma: no cover - degenerate all -inf case
            return int(rng.integers(len(workload)))
        return int(rng.choice(len(workload), p=weights / total))

    def _multiplicative_weights(self, synthetic: np.ndarray, n: float) -> np.ndarray:
        """Pull the synthetic histogram toward every measurement so far."""
        hist = synthetic
        for _ in range(self.mw_steps):
            for query, measurement in self.measurements_:
                estimate = query.answer(hist)
                factor = np.exp((measurement - estimate) / (2.0 * n))
                update = np.ones_like(hist)
                update[query.cells] = factor
                hist = hist * update
                hist *= n / hist.sum()
        return hist

    # -- outputs -------------------------------------------------------------

    @property
    def synthetic_histogram(self) -> np.ndarray:
        if self._synthetic is None:
            raise NotFittedError("call fit() before reading the synthetic histogram")
        return self._synthetic

    def sample(self, n_rows: int | None = None, seed: int | None = None) -> Table:
        """Sample a synthetic table from the fitted distribution."""
        if self._domain is None or self._synthetic is None:
            raise NotFittedError("call fit() before sampling")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        total = self._synthetic.sum()
        n_rows = int(n_rows if n_rows is not None else round(total))
        probs = self._synthetic / total
        flat = rng.choice(self._domain.n_cells, size=n_rows, p=probs)
        codes = self._domain.unflatten(flat)
        columns = [
            Column.from_codes(name, codes[name], self._domain.categories[name])
            for name in self._domain.columns
        ]
        return Table(columns)

    def true_vs_synthetic_error(self, table: Table, workload: Sequence[LinearQuery]) -> float:
        """Max absolute workload error of the fitted distribution vs ``table``."""
        if self._domain is None or self._synthetic is None:
            raise NotFittedError("call fit() before evaluating error")
        true_hist = self._domain.histogram(table)
        return workload_max_error(true_hist, self._synthetic, workload)


def workload_max_error(
    true_hist: np.ndarray, synthetic_hist: np.ndarray, workload: Sequence[LinearQuery]
) -> float:
    """Maximum absolute error over the workload."""
    return max(abs(q.answer(true_hist) - q.answer(synthetic_hist)) for q in workload)


def workload_avg_error(
    true_hist: np.ndarray, synthetic_hist: np.ndarray, workload: Sequence[LinearQuery]
) -> float:
    """Mean absolute error over the workload."""
    errors = [abs(q.answer(true_hist) - q.answer(synthetic_hist)) for q in workload]
    return float(np.mean(errors))
