"""Privacy-budget accounting.

A :class:`BudgetAccountant` tracks the (ε, δ) spent by a sequence of
mechanism invocations under three composition rules:

* **sequential** — budgets add: ``ε = Σ ε_i``, ``δ = Σ δ_i``.
* **parallel** — mechanisms run on disjoint data partitions; cost is the
  max, not the sum.
* **advanced** — the advanced composition theorem for k-fold adaptive
  composition of (ε, δ)-DP mechanisms: total
  ``ε' = ε √(2k ln(1/δ')) + k ε (e^ε − 1)`` with additive ``δ' + kδ``.

The accountant raises :class:`~repro.errors.BudgetError` once a spend would
exceed the configured cap, which is what the E11 bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import BudgetError

__all__ = ["BudgetAccountant", "advanced_composition_epsilon"]


def advanced_composition_epsilon(epsilon: float, k: int, delta_slack: float) -> float:
    """Total ε of k-fold advanced composition of an ε-DP mechanism."""
    if epsilon <= 0 or k < 1 or not 0 < delta_slack < 1:
        raise ValueError("need epsilon > 0, k >= 1, 0 < delta_slack < 1")
    return float(
        epsilon * np.sqrt(2.0 * k * np.log(1.0 / delta_slack))
        + k * epsilon * (np.exp(epsilon) - 1.0)
    )


@dataclass
class _Spend:
    epsilon: float
    delta: float
    group: str | None  # parallel-composition group key


@dataclass
class BudgetAccountant:
    """Tracks cumulative (ε, δ) spend against a cap."""

    epsilon_cap: float
    delta_cap: float = 0.0
    spends: list = field(default_factory=list)

    def spend(self, epsilon: float, delta: float = 0.0, group: str | None = None) -> None:
        """Record a mechanism invocation; raise BudgetError if over cap.

        ``group`` marks parallel composition: spends sharing a group key are
        charged their maximum instead of their sum (disjoint partitions of
        one dataset).
        """
        if epsilon < 0 or delta < 0:
            raise ValueError("epsilon and delta must be non-negative")
        trial = self.spends + [_Spend(epsilon, delta, group)]
        eps_total, delta_total = _totals(trial)
        if eps_total > self.epsilon_cap + 1e-12 or delta_total > self.delta_cap + 1e-12:
            raise BudgetError(
                f"spend of (ε={epsilon:g}, δ={delta:g}) would exceed the cap "
                f"(ε={self.epsilon_cap:g}, δ={self.delta_cap:g}); "
                f"already spent (ε={self.spent_epsilon():g}, δ={self.spent_delta():g})"
            )
        self.spends.append(_Spend(epsilon, delta, group))

    def spent_epsilon(self) -> float:
        return _totals(self.spends)[0]

    def spent_delta(self) -> float:
        return _totals(self.spends)[1]

    def remaining_epsilon(self) -> float:
        return max(self.epsilon_cap - self.spent_epsilon(), 0.0)

    def reset(self) -> None:
        self.spends.clear()


def _totals(spends: list) -> tuple[float, float]:
    """Sequential sum over ungrouped spends + max within each parallel group."""
    eps_total = 0.0
    delta_total = 0.0
    group_eps: dict[str, float] = {}
    group_delta: dict[str, float] = {}
    for spend in spends:
        if spend.group is None:
            eps_total += spend.epsilon
            delta_total += spend.delta
        else:
            group_eps[spend.group] = max(group_eps.get(spend.group, 0.0), spend.epsilon)
            group_delta[spend.group] = max(group_delta.get(spend.group, 0.0), spend.delta)
    eps_total += sum(group_eps.values())
    delta_total += sum(group_delta.values())
    return eps_total, delta_total
