"""Differential-privacy substrate: mechanisms, accounting, histograms, synthesis."""

from .accountant import BudgetAccountant, advanced_composition_epsilon
from .histogram import dp_count_query, dp_histogram, dp_marginal
from .mechanisms import (
    ExponentialMechanism,
    GaussianMechanism,
    GeometricMechanism,
    LaplaceMechanism,
    RandomizedResponse,
)
from .mwem import MWEM, LinearQuery, marginal_workload, workload_avg_error, workload_max_error
from .rdp import (
    RDPAccountant,
    ZCDPAccountant,
    analytic_gaussian_sigma,
    classical_gaussian_sigma,
    gaussian_delta,
    gaussian_rdp,
    gaussian_zcdp,
    laplace_rdp,
    randomized_response_rdp,
    zcdp_to_epsilon,
)
from .local import LocalHashing, UnaryEncoding
from .queries import SparseVector, dp_mean, dp_quantile, report_noisy_max
from .range_queries import FlatRangeHistogram, HierarchicalRangeHistogram
from .smooth_sensitivity import (
    dp_median_global,
    dp_median_smooth,
    local_sensitivity_at_distance,
    smooth_sensitivity_median,
)
from .synthesis import ChainSynthesizer

__all__ = [
    "BudgetAccountant",
    "ChainSynthesizer",
    "FlatRangeHistogram",
    "HierarchicalRangeHistogram",
    "LinearQuery",
    "MWEM",
    "RDPAccountant",
    "SparseVector",
    "ZCDPAccountant",
    "analytic_gaussian_sigma",
    "classical_gaussian_sigma",
    "gaussian_delta",
    "gaussian_rdp",
    "gaussian_zcdp",
    "laplace_rdp",
    "marginal_workload",
    "randomized_response_rdp",
    "workload_avg_error",
    "workload_max_error",
    "zcdp_to_epsilon",
    "dp_mean",
    "dp_median_global",
    "dp_median_smooth",
    "local_sensitivity_at_distance",
    "smooth_sensitivity_median",
    "dp_quantile",
    "report_noisy_max",
    "ExponentialMechanism",
    "GaussianMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "LocalHashing",
    "UnaryEncoding",
    "RandomizedResponse",
    "advanced_composition_epsilon",
    "dp_count_query",
    "dp_histogram",
    "dp_marginal",
]
