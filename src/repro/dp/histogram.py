"""Differentially private histograms and marginals over tables.

A histogram over disjoint cells has sensitivity 1 (adding/removing one
record changes exactly one cell by 1), so the Laplace/geometric mechanism
with scale 1/ε releases the whole histogram for ε total budget.

Provided here:

* :func:`dp_histogram` — noisy counts over one categorical column.
* :func:`dp_marginal` — noisy contingency table over several columns (the
  k-way marginal primitive the synthesizer builds on).
* :func:`dp_count_query` — single noisy COUNT with an accountant hookup.

Post-processing (clamping at zero, normalization) never costs extra budget.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.table import Table
from .accountant import BudgetAccountant
from .mechanisms import GeometricMechanism, LaplaceMechanism

__all__ = ["dp_histogram", "dp_marginal", "dp_count_query"]


def dp_histogram(
    table: Table,
    column: str,
    epsilon: float,
    rng: np.random.Generator | None = None,
    integer: bool = True,
    accountant: BudgetAccountant | None = None,
    clamp: bool = True,
) -> np.ndarray:
    """ε-DP noisy counts over the column's category list."""
    if accountant is not None:
        accountant.spend(epsilon, group=None)
    codes = table.codes(column)
    counts = np.bincount(codes, minlength=len(table.column(column).categories))
    if integer:
        noisy = GeometricMechanism(epsilon).randomize(counts, rng)
    else:
        noisy = LaplaceMechanism(epsilon).randomize(counts, rng)
    if clamp:
        noisy = np.maximum(noisy, 0)
    return noisy


def dp_marginal(
    table: Table,
    columns: Sequence[str],
    epsilon: float,
    rng: np.random.Generator | None = None,
    accountant: BudgetAccountant | None = None,
    clamp: bool = True,
) -> np.ndarray:
    """ε-DP contingency table, shape = per-column category counts."""
    if accountant is not None:
        accountant.spend(epsilon, group=None)
    shape = tuple(len(table.column(name).categories) for name in columns)
    flat_index = np.zeros(table.n_rows, dtype=np.int64)
    for name, size in zip(columns, shape):
        flat_index = flat_index * size + table.codes(name)
    counts = np.bincount(flat_index, minlength=int(np.prod(shape))).reshape(shape)
    noisy = LaplaceMechanism(epsilon).randomize(counts, rng)
    if clamp:
        noisy = np.maximum(noisy, 0.0)
    return noisy


def dp_count_query(
    table: Table,
    mask: np.ndarray,
    epsilon: float,
    rng: np.random.Generator | None = None,
    accountant: BudgetAccountant | None = None,
) -> float:
    """Noisy COUNT of the rows selected by a boolean mask."""
    if accountant is not None:
        accountant.spend(epsilon)
    true_answer = float(np.asarray(mask, dtype=bool).sum())
    return float(LaplaceMechanism(epsilon).randomize([true_answer], rng)[0])
