"""DP range queries over ordered domains: flat vs hierarchical histograms.

Answering range COUNT queries from a flat ε-DP histogram sums O(range)
noisy cells, so error grows with range length. The *hierarchical* method
(Hay et al.) builds a tree of interval counts, each level noised with an
equal budget share; any range decomposes into O(b·log n) canonical nodes,
so error grows only logarithmically. Constrained inference (weighted
averaging of parent/children estimates) tightens it further.

Provided:

* :class:`FlatRangeHistogram` — baseline.
* :class:`HierarchicalRangeHistogram` — tree method with branching factor
  ``b`` and optional bottom-up/top-down consistency pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlatRangeHistogram", "HierarchicalRangeHistogram"]


class FlatRangeHistogram:
    """ε-DP flat histogram; ranges are sums of noisy cells."""

    def __init__(self, counts: np.ndarray, epsilon: float, rng: np.random.Generator | None = None):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        rng = rng or np.random.default_rng()
        counts = np.asarray(counts, dtype=np.float64)
        self.n_cells = counts.shape[0]
        self.epsilon = float(epsilon)
        self.noisy = counts + rng.laplace(0.0, 1.0 / epsilon, counts.shape)

    def range_count(self, lo: int, hi: int) -> float:
        """Estimated COUNT over cells [lo, hi)."""
        self._check_range(lo, hi)
        return float(self.noisy[lo:hi].sum())

    def expected_range_variance(self, length: int) -> float:
        """Variance of a length-``length`` range estimate (2/ε² per cell)."""
        return length * 2.0 / self.epsilon**2

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo < hi <= self.n_cells:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.n_cells})")


class HierarchicalRangeHistogram:
    """ε-DP interval tree with canonical-range decomposition.

    The domain is padded to a power of ``branching``; each tree level gets
    ε/height budget. With ``consistency=True`` a weighted least-squares pass
    (Hay et al.'s constrained inference) reconciles parents with children.
    """

    def __init__(
        self,
        counts: np.ndarray,
        epsilon: float,
        branching: int = 2,
        consistency: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        rng = rng or np.random.default_rng()
        counts = np.asarray(counts, dtype=np.float64)
        self.n_cells = counts.shape[0]
        self.branching = int(branching)
        self.epsilon = float(epsilon)

        # Pad to a full tree.
        size = 1
        height = 0
        while size < self.n_cells:
            size *= self.branching
            height += 1
        height = max(height, 1)
        padded = np.zeros(size if size >= self.n_cells else self.n_cells)
        padded[: self.n_cells] = counts

        # levels[0] = leaves ... levels[height] = root; each level noised.
        self.height = height
        eps_per_level = self.epsilon / (height + 1)
        true_levels = [padded]
        while true_levels[-1].shape[0] > 1:
            previous = true_levels[-1]
            parents = previous.reshape(-1, self.branching).sum(axis=1)
            true_levels.append(parents)
        self.levels = [
            level + rng.laplace(0.0, 1.0 / eps_per_level, level.shape)
            for level in true_levels
        ]
        self._eps_per_level = eps_per_level
        if consistency:
            self._enforce_consistency()

    # -- consistency ----------------------------------------------------------

    def _enforce_consistency(self) -> None:
        """Hay et al. two-pass constrained inference (uniform variances)."""
        b = self.branching
        # Bottom-up: blend each node with the sum of its children.
        # Optimal weights for equal variances: z = (b^l - b^{l-1})/(b^l - 1)
        # on own estimate at height l, rest on children sum.
        for l in range(1, len(self.levels)):
            children_sum = self.levels[l - 1].reshape(-1, b).sum(axis=1)
            power = float(b**l)
            weight_self = (power - power / b) / (power - 1.0)
            self.levels[l] = weight_self * self.levels[l] + (1 - weight_self) * children_sum
        # Top-down: distribute each parent's residual equally to children.
        for l in range(len(self.levels) - 1, 0, -1):
            children = self.levels[l - 1].reshape(-1, b)
            residual = (self.levels[l] - children.sum(axis=1)) / b
            self.levels[l - 1] = (children + residual[:, None]).reshape(-1)

    # -- queries ---------------------------------------------------------------

    def range_count(self, lo: int, hi: int) -> float:
        """Estimated COUNT over cells [lo, hi) via canonical decomposition."""
        if not 0 <= lo < hi <= self.n_cells:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.n_cells})")
        total = 0.0
        self.nodes_used = 0
        level = 0
        b = self.branching
        # Standard segment-tree walk: consume unaligned edges at each level.
        while lo < hi:
            if level + 1 < len(self.levels):
                while lo % b and lo < hi:
                    total += self.levels[level][lo]
                    self.nodes_used += 1
                    lo += 1
                while hi % b and lo < hi:
                    hi -= 1
                    total += self.levels[level][hi]
                    self.nodes_used += 1
                if lo >= hi:
                    break
                lo //= b
                hi //= b
                level += 1
            else:
                for cell in range(lo, hi):
                    total += self.levels[level][cell]
                    self.nodes_used += 1
                break
        return float(total)

    def expected_worst_range_variance(self) -> float:
        """Upper bound on range variance: 2·b·height levels of nodes."""
        per_node = 2.0 / self._eps_per_level**2
        return 2.0 * self.branching * (self.height + 1) * per_node
