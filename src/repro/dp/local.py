"""Local differential privacy frequency oracles.

Beyond k-ary randomized response (``mechanisms.RandomizedResponse``), the
two standard high-utility frequency oracles:

* :class:`UnaryEncoding` — each respondent one-hot encodes their value and
  perturbs every bit independently. The *optimized* variant (OUE) uses
  ``p = 1/2, q = 1/(e^ε + 1)``, minimizing estimator variance for large
  domains.
* :class:`LocalHashing` — binary local hashing (BLH): each respondent hashes
  their value to one bit with a personal seed and randomizes it; the
  aggregator debiases per-value. Constant communication regardless of
  domain size.

All oracles expose ``randomize(codes, rng)`` (per-user reports) and
``estimate_frequencies(reports)`` (unbiased aggregate).
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnaryEncoding", "LocalHashing"]


class UnaryEncoding:
    """(Optimized) unary encoding: perturb each one-hot bit independently.

    ``optimized=True`` gives OUE (p=1/2, q=1/(e^ε+1)); ``False`` gives the
    symmetric variant (p = e^{ε/2}/(e^{ε/2}+1)).
    """

    def __init__(self, epsilon: float, domain_size: int, optimized: bool = True):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if domain_size < 2:
            raise ValueError(f"domain_size must be >= 2, got {domain_size}")
        self.epsilon = float(epsilon)
        self.domain_size = int(domain_size)
        self.optimized = optimized
        if optimized:
            self.p = 0.5
            self.q = 1.0 / (np.exp(epsilon) + 1.0)
        else:
            e_half = np.exp(epsilon / 2.0)
            self.p = e_half / (e_half + 1.0)
            self.q = 1.0 / (e_half + 1.0)

    def randomize(self, codes, rng: np.random.Generator | None = None) -> np.ndarray:
        """(n, domain) bit matrix of perturbed one-hot reports."""
        rng = rng or np.random.default_rng()
        codes = np.asarray(codes, dtype=np.int64)
        n = codes.shape[0]
        flips = rng.random((n, self.domain_size))
        bits = (flips < self.q).astype(np.int8)  # background noise at rate q
        truth_bit = (rng.random(n) < self.p).astype(np.int8)
        bits[np.arange(n), codes] = truth_bit
        return bits

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimate from the stacked bit reports."""
        reports = np.asarray(reports)
        n = reports.shape[0]
        ones = reports.sum(axis=0).astype(np.float64)
        return (ones / n - self.q) / (self.p - self.q)

    def estimator_variance(self, n: int) -> float:
        """Per-value variance of the estimate (small-frequency regime)."""
        return self.q * (1 - self.q) / (n * (self.p - self.q) ** 2)


class LocalHashing:
    """Binary local hashing: hash to one bit, then binary randomized response."""

    def __init__(self, epsilon: float, domain_size: int):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if domain_size < 2:
            raise ValueError(f"domain_size must be >= 2, got {domain_size}")
        self.epsilon = float(epsilon)
        self.domain_size = int(domain_size)
        self.p = np.exp(epsilon) / (np.exp(epsilon) + 1.0)

    @staticmethod
    def _hash_bits(seeds: np.ndarray, domain_size: int) -> np.ndarray:
        """(n, domain) bit matrix: user i's hash of every domain value.

        Combines seed and value *before* a full splitmix64-style avalanche —
        a plain XOR of independently-mixed halves would make the bit
        ``f(seed) ^ g(value)``, which is not pairwise independent across
        values and silently breaks the estimator.
        """
        values = np.arange(domain_size, dtype=np.uint64)
        with np.errstate(over="ignore"):
            z = seeds[:, None] + values[None, :] * np.uint64(0x9E3779B97F4A7C15)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            z = z ^ (z >> np.uint64(31))
        return (z & np.uint64(1)).astype(np.int8)

    def randomize(self, codes, rng: np.random.Generator | None = None) -> tuple:
        """Per-user (seed, noisy_bit) reports."""
        rng = rng or np.random.default_rng()
        codes = np.asarray(codes, dtype=np.int64)
        n = codes.shape[0]
        seeds = rng.integers(1, 2**62, size=n, dtype=np.int64).astype(np.uint64)
        hash_bits = self._hash_bits(seeds, self.domain_size)
        true_bits = hash_bits[np.arange(n), codes]
        keep = rng.random(n) < self.p
        noisy = np.where(keep, true_bits, 1 - true_bits).astype(np.int8)
        return seeds, noisy

    def estimate_frequencies(self, reports: tuple) -> np.ndarray:
        """Debiased support estimate per domain value."""
        seeds, noisy = reports
        n = seeds.shape[0]
        hash_bits = self._hash_bits(np.asarray(seeds, dtype=np.uint64), self.domain_size)
        # "Support": user supports value v if their noisy bit equals v's hash.
        support = (hash_bits == np.asarray(noisy)[:, None]).sum(axis=0) / n
        # E[support | freq f] = f*p + (1-f)*0.5  =>  debias:
        return (support - 0.5) / (self.p - 0.5)
