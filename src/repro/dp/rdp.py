"""Rényi and zero-concentrated DP accounting (Mironov 2017; Bun & Steinke 2016).

Basic sequential composition charges ``k·ε`` for ``k`` mechanism runs;
advanced composition improves that to ``O(√k · ε)`` at a δ cost. The modern
accountants tracked here are tighter still for Gaussian-noise pipelines:

* **RDP** — a mechanism's privacy is the curve ``ε(α)`` of Rényi divergences;
  composition is *pointwise addition* of curves; the final curve converts to
  an (ε, δ) guarantee by minimizing ``ε(α) + log(1/δ)/(α−1)`` over orders α.
* **zCDP** — single-parameter ρ; Gaussian noise with ℓ2-sensitivity ``s`` and
  scale σ is ``ρ = s²/(2σ²)``-zCDP; composition adds ρ, and
  ``ε = ρ + 2·√(ρ·log(1/δ))``.

Also here: **analytic Gaussian calibration** (Balle & Wang 2018) — the exact
minimal σ for a target (ε, δ), found by bisection on the true Gaussian
trade-off function rather than the loose classical ``σ = √(2 ln(1.25/δ))·s/ε``
bound. Experiment E29 plots all four accountants on the same pipeline to
reproduce the canonical ordering basic > advanced > zCDP ≥ RDP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.stats import norm

from ..errors import BudgetError

__all__ = [
    "DEFAULT_ORDERS",
    "gaussian_rdp",
    "laplace_rdp",
    "randomized_response_rdp",
    "RDPAccountant",
    "gaussian_zcdp",
    "ZCDPAccountant",
    "zcdp_to_epsilon",
    "classical_gaussian_sigma",
    "analytic_gaussian_sigma",
    "gaussian_delta",
]

#: The order grid most RDP implementations use: dense at small α (tight for
#: large ε) plus a geometric tail (tight for tiny ε / many compositions).
DEFAULT_ORDERS: tuple[float, ...] = tuple(
    [1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
)


# -- per-mechanism RDP curves -------------------------------------------------


def gaussian_rdp(sigma: float, sensitivity: float = 1.0, orders: Sequence[float] = DEFAULT_ORDERS) -> np.ndarray:
    """RDP curve of the Gaussian mechanism: ε(α) = α·s²/(2σ²)."""
    if sigma <= 0:
        raise BudgetError(f"sigma must be positive, got {sigma}")
    orders = np.asarray(orders, dtype=np.float64)
    return orders * (sensitivity**2) / (2.0 * sigma**2)


def laplace_rdp(scale: float, sensitivity: float = 1.0, orders: Sequence[float] = DEFAULT_ORDERS) -> np.ndarray:
    """RDP curve of the Laplace mechanism (Mironov 2017, Table II).

    With ``b = scale/sensitivity`` (the pure-DP ε is 1/b)::

        ε(α) = (1/(α−1)) · log( (α/(2α−1))·e^{(α−1)/b} + ((α−1)/(2α−1))·e^{−α/b} )
    """
    if scale <= 0:
        raise BudgetError(f"scale must be positive, got {scale}")
    b = scale / sensitivity
    out = []
    for alpha in orders:
        if abs(alpha - 1.0) < 1e-12:
            # α→1 limit: KL divergence of two shifted Laplace distributions.
            out.append(1.0 / b + math.expm1(-1.0 / b))
            continue
        # Log-space to survive large orders: log(e^a·w1 + e^c·w2).
        log_term1 = math.log(alpha / (2 * alpha - 1)) + (alpha - 1) / b
        log_term2 = math.log((alpha - 1) / (2 * alpha - 1)) - alpha / b
        out.append(float(np.logaddexp(log_term1, log_term2)) / (alpha - 1))
    return np.asarray(out)


def randomized_response_rdp(epsilon: float, orders: Sequence[float] = DEFAULT_ORDERS) -> np.ndarray:
    """RDP curve of binary randomized response with pure-DP parameter ε."""
    if epsilon <= 0:
        raise BudgetError(f"epsilon must be positive, got {epsilon}")
    p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    out = []
    for alpha in orders:
        if abs(alpha - 1.0) < 1e-12:
            out.append(p * math.log(p / (1 - p)) + (1 - p) * math.log((1 - p) / p))
            continue
        log_p, log_q = math.log(p), math.log(1 - p)
        log_value = np.logaddexp(
            alpha * log_p + (1 - alpha) * log_q,
            alpha * log_q + (1 - alpha) * log_p,
        )
        out.append(float(log_value) / (alpha - 1))
    return np.asarray(out)


# -- accountants ---------------------------------------------------------------


@dataclass
class RDPAccountant:
    """Compose RDP curves pointwise; convert to (ε, δ) on demand."""

    orders: tuple[float, ...] = DEFAULT_ORDERS
    _total: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if any(a <= 1.0 for a in self.orders):
            raise BudgetError("RDP orders must all exceed 1")
        if self._total is None:
            self._total = np.zeros(len(self.orders))

    def add(self, curve: np.ndarray, count: int = 1) -> "RDPAccountant":
        """Account for ``count`` runs of a mechanism with the given curve."""
        curve = np.asarray(curve, dtype=np.float64)
        if curve.shape != (len(self.orders),):
            raise BudgetError(
                f"curve has {curve.shape[0]} orders, accountant expects {len(self.orders)}"
            )
        if count < 1:
            raise BudgetError(f"count must be >= 1, got {count}")
        self._total = self._total + count * curve
        return self

    def add_gaussian(self, sigma: float, sensitivity: float = 1.0, count: int = 1) -> "RDPAccountant":
        return self.add(gaussian_rdp(sigma, sensitivity, self.orders), count)

    def add_laplace(self, scale: float, sensitivity: float = 1.0, count: int = 1) -> "RDPAccountant":
        return self.add(laplace_rdp(scale, sensitivity, self.orders), count)

    def epsilon(self, delta: float) -> float:
        """Tightest (ε, δ) conversion over the order grid (Mironov, Prop. 3)."""
        if not 0 < delta < 1:
            raise BudgetError(f"delta must be in (0, 1), got {delta}")
        orders = np.asarray(self.orders)
        candidates = self._total + math.log(1.0 / delta) / (orders - 1.0)
        return float(candidates.min())

    def best_order(self, delta: float) -> float:
        """The order achieving the minimum in :meth:`epsilon`."""
        orders = np.asarray(self.orders)
        candidates = self._total + math.log(1.0 / delta) / (orders - 1.0)
        return float(orders[int(np.argmin(candidates))])


def gaussian_zcdp(sigma: float, sensitivity: float = 1.0) -> float:
    """ρ of the Gaussian mechanism: s²/(2σ²)."""
    if sigma <= 0:
        raise BudgetError(f"sigma must be positive, got {sigma}")
    return (sensitivity**2) / (2.0 * sigma**2)


def zcdp_to_epsilon(rho: float, delta: float) -> float:
    """Standard conversion: ε = ρ + 2·√(ρ·log(1/δ))."""
    if rho < 0:
        raise BudgetError(f"rho must be non-negative, got {rho}")
    if not 0 < delta < 1:
        raise BudgetError(f"delta must be in (0, 1), got {delta}")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


@dataclass
class ZCDPAccountant:
    """Additive ρ accounting for zero-concentrated DP."""

    rho: float = 0.0

    def add(self, rho: float, count: int = 1) -> "ZCDPAccountant":
        if rho < 0:
            raise BudgetError(f"rho must be non-negative, got {rho}")
        self.rho += count * rho
        return self

    def add_gaussian(self, sigma: float, sensitivity: float = 1.0, count: int = 1) -> "ZCDPAccountant":
        return self.add(gaussian_zcdp(sigma, sensitivity), count)

    def epsilon(self, delta: float) -> float:
        return zcdp_to_epsilon(self.rho, delta)


# -- Gaussian calibration -------------------------------------------------------


def classical_gaussian_sigma(epsilon: float, delta: float, sensitivity: float = 1.0) -> float:
    """The textbook bound σ = √(2·ln(1.25/δ))·s/ε (valid for ε ≤ 1)."""
    if epsilon <= 0 or not 0 < delta < 1:
        raise BudgetError("need epsilon > 0 and delta in (0, 1)")
    return math.sqrt(2.0 * math.log(1.25 / delta)) * sensitivity / epsilon


def gaussian_delta(sigma: float, epsilon: float, sensitivity: float = 1.0) -> float:
    """Exact δ achieved by Gaussian noise at a given ε (Balle & Wang, Thm. 8).

    δ(ε; σ) = Φ(s/(2σ) − εσ/s) − e^ε · Φ(−s/(2σ) − εσ/s)
    """
    if sigma <= 0:
        raise BudgetError(f"sigma must be positive, got {sigma}")
    a = sensitivity / (2.0 * sigma)
    b = epsilon * sigma / sensitivity
    return float(norm.cdf(a - b) - math.exp(epsilon) * norm.cdf(-a - b))


def analytic_gaussian_sigma(
    epsilon: float,
    delta: float,
    sensitivity: float = 1.0,
    tolerance: float = 1e-10,
) -> float:
    """Minimal σ meeting (ε, δ)-DP exactly, by bisection on :func:`gaussian_delta`.

    Always ≤ the classical bound, and valid for every ε (the classical
    calibration is only proved for ε ≤ 1).
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise BudgetError("need epsilon > 0 and delta in (0, 1)")
    # gaussian_delta is strictly decreasing in sigma: bracket then bisect.
    lo = 1e-6 * sensitivity
    hi = max(classical_gaussian_sigma(min(epsilon, 1.0), delta, sensitivity), 1.0)
    while gaussian_delta(hi, epsilon, sensitivity) > delta:  # pragma: no cover - generous hi
        hi *= 2.0
    while gaussian_delta(lo, epsilon, sensitivity) < delta:
        lo *= 0.5
        if lo < 1e-300:  # pragma: no cover - defensive
            break
    while hi - lo > tolerance * hi:
        mid = 0.5 * (lo + hi)
        if gaussian_delta(mid, epsilon, sensitivity) > delta:
            lo = mid
        else:
            hi = mid
    return hi
