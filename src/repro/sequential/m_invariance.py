"""m-invariance for sequential republication (Xiao & Tao).

A dataset that is republished over time (records inserted and deleted) can
be attacked by *cross-version inference*: intersecting the sensitive-value
sets of a target's equivalence classes across versions narrows the
candidates even if every version is ℓ-diverse. m-invariance requires:

* every equivalence class in every release has ``m`` records with ``m``
  *distinct* sensitive values (an "m-unique" signature), and
* every record that appears in consecutive releases lies, in both, in
  classes with the *identical signature* (set of sensitive values), so the
  cross-version intersection reveals nothing new.

When the surviving records cannot be partitioned into signature-consistent
groups, the publisher injects *counterfeit* records (fake rows counted and
reported, per the paper).

This module provides the checker (:class:`MInvariance`), the cross-version
attack (:func:`cross_version_attack`), and a bucketization-style publisher
(:class:`MInvariantPublisher`) that maintains signatures across releases.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..core.table import Table
from ..errors import InfeasibleError

__all__ = ["MInvariance", "MInvariantPublisher", "SequentialRelease", "cross_version_attack"]


@dataclass
class SequentialRelease:
    """One version of a sequentially-published dataset.

    ``groups`` maps a group id to the list of (record_id, sensitive_value)
    pairs published in that bucket; ``counterfeits`` counts fake records per
    group (also included in ``groups`` with record_id None).
    """

    version: int
    groups: dict = field(default_factory=dict)
    counterfeits: int = 0

    def signature(self, group_id: int) -> frozenset:
        return frozenset(value for _, value in self.groups[group_id])

    def __post_init__(self):
        # record_id -> group id (real records only), derived from groups.
        self.group_of = {
            record_id: gid
            for gid, members in self.groups.items()
            for record_id, _ in members
            if record_id is not None
        }

    def n_records(self) -> int:
        return sum(len(members) for members in self.groups.values())


class MInvariance:
    """Checker for the two m-invariance conditions across a release list."""

    def __init__(self, m: int):
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        self.m = int(m)
        self.name = f"{m}-invariance"

    def check_single(self, release: SequentialRelease) -> bool:
        """Every group has >= m members with all-distinct sensitive values."""
        for gid, members in release.groups.items():
            values = [value for _, value in members]
            if len(members) < self.m or len(set(values)) != len(values):
                return False
        return True

    def check_pair(self, earlier: SequentialRelease, later: SequentialRelease) -> bool:
        """Surviving records keep their signature between the two versions."""
        for record_id, gid_late in later.group_of.items():
            gid_early = earlier.group_of.get(record_id)
            if gid_early is None:
                continue
            if earlier.signature(gid_early) != later.signature(gid_late):
                return False
        return True

    def check(self, releases: list[SequentialRelease]) -> bool:
        if not releases:
            return False
        if not all(self.check_single(r) for r in releases):
            return False
        return all(
            self.check_pair(a, b) for a, b in zip(releases, releases[1:])
        )


class MInvariantPublisher:
    """Maintains m-unique signatures across insert/delete republication.

    Each call to :meth:`publish` takes the current record set as a mapping
    ``{record_id: sensitive_value}`` and returns a
    :class:`SequentialRelease`. Surviving records are re-bucketed with their
    previous signature; when a signature bucket cannot be completed from the
    live records, counterfeit records fill the gap (the paper's approach).
    """

    def __init__(self, m: int, seed: int = 0):
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        self.m = int(m)
        self._rng = np.random.default_rng(seed)
        self.releases: list[SequentialRelease] = []
        self._signature_of: dict = {}  # record_id -> frozenset

    def publish(self, records: dict) -> SequentialRelease:
        version = len(self.releases)
        groups: dict[int, list] = {}
        counterfeits = 0
        next_gid = 0

        surviving = {rid: s for rid, s in records.items() if rid in self._signature_of}
        new = {rid: s for rid, s in records.items() if rid not in self._signature_of}

        # 1. Re-bucket surviving records by their frozen signature. Records
        #    sharing a signature can share buckets, one record per value.
        by_signature: dict[frozenset, list] = defaultdict(list)
        for rid, value in surviving.items():
            signature = self._signature_of[rid]
            if value not in signature:  # sensitive value changed: treat as new
                new[rid] = value
                continue
            by_signature[signature].append((rid, value))

        for signature, members in by_signature.items():
            buckets: list[dict] = []
            for rid, value in members:
                home = next(
                    (b for b in buckets if value not in b), None
                )
                if home is None:
                    home = {}
                    buckets.append(home)
                home[value] = rid
            for bucket in buckets:
                group = [(rid, value) for value, rid in bucket.items()]
                # Fill missing signature values with counterfeits.
                for value in signature - set(bucket):
                    group.append((None, value))
                    counterfeits += 1
                groups[next_gid] = group
                next_gid += 1

        # 2. Bucket new records m at a time with distinct values (the
        #    standard l-eligible draw).
        buckets_new = self._bucketize_new(new)
        for group in buckets_new:
            groups[next_gid] = group
            for rid, _ in group:
                if rid is not None:
                    self._signature_of[rid] = frozenset(v for _, v in group)
            next_gid += 1

        release = SequentialRelease(version=version, groups=groups, counterfeits=counterfeits)
        self.releases.append(release)
        return release

    def _bucketize_new(self, new: dict) -> list[list]:
        by_value: dict = defaultdict(list)
        for rid, value in new.items():
            by_value[value].append(rid)
        for rids in by_value.values():
            self._rng.shuffle(rids)
        buckets = []
        suppressed = []
        while True:
            sizes = {v: len(rids) for v, rids in by_value.items() if rids}
            if len(sizes) < self.m:
                break
            largest = sorted(sizes, key=sizes.get, reverse=True)[: self.m]
            buckets.append([(by_value[v].pop(), v) for v in largest])
        for value, rids in by_value.items():
            for rid in rids:
                placed = False
                for bucket in buckets:
                    if all(v != value for _, v in bucket):
                        bucket.append((rid, value))
                        placed = True
                        break
                if not placed:
                    suppressed.append(rid)  # held back until a later version
        return buckets


def cross_version_attack(releases: list[SequentialRelease]) -> dict:
    """Intersect each surviving record's candidate sensitive sets.

    Returns the fraction of surviving records whose sensitive value becomes
    uniquely determined by intersecting signatures across versions — 0 for
    an m-invariant sequence, positive for naive republication.
    """
    candidate: dict = {}
    seen_in: dict = defaultdict(int)
    for release in releases:
        for record_id, gid in release.group_of.items():
            signature = release.signature(gid)
            seen_in[record_id] += 1
            if record_id in candidate:
                candidate[record_id] &= signature
            else:
                candidate[record_id] = set(signature)
    survivors = [rid for rid, n in seen_in.items() if n >= 2]
    if not survivors:
        return {"n_survivors": 0, "pinned_fraction": 0.0, "avg_candidates": 0.0}
    pinned = sum(1 for rid in survivors if len(candidate[rid]) == 1)
    avg = float(np.mean([len(candidate[rid]) for rid in survivors]))
    return {
        "n_survivors": len(survivors),
        "pinned_fraction": pinned / len(survivors),
        "avg_candidates": avg,
    }
