"""Sequential (multi-version) publishing: m-invariance and republication."""

from .m_invariance import (
    MInvariance,
    MInvariantPublisher,
    SequentialRelease,
    cross_version_attack,
)

__all__ = [
    "MInvariance",
    "MInvariantPublisher",
    "SequentialRelease",
    "cross_version_attack",
]
