"""Command-line interface: anonymize a CSV file end to end.

Usage::

    python -m repro input.csv output.csv \
        --qi zipcode --qi nationality --numeric-qi age \
        --sensitive disease --k 5 --l 2 \
        --algorithm mondrian --report

or, declaratively, with the whole job described as JSON::

    python -m repro input.csv output.csv --config job.json --report

Flags are parsed into the same :class:`repro.api.AnonymizationConfig` a
``--config`` file deserializes to, and both run through
:func:`repro.api.run` — the CLI has no private algorithm table or wiring of
its own. Hierarchies default to the ``auto`` builder (prefix/flat for
categorical QIs, uniform intervals for numeric QIs); pin them in the config
file for production use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .api import AnonymizationConfig, algorithm_registry, run
from .core.io import read_csv, write_csv
from .errors import ReproError

__all__ = ["main", "build_parser", "config_from_args"]

#: Suppression budgets the flag-mode CLI has always used per algorithm
#: (registry defaults are library-wide; these preserve CLI behavior).
_CLI_BUDGETS = {
    "datafly": 0.05,
    "incognito": 0.02,
    "ola": 0.05,
    "flash": 0.02,
    "bottom-up": 0.05,
}

#: Report metrics computed when ``--report`` is given and the config does
#: not request its own set ("homogeneity" joins when a sensitive exists).
_REPORT_METRICS = ("linkage", "gcp")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anonymize a CSV file with k-anonymity and friends.",
    )
    parser.add_argument("input", help="input CSV path (with header row)")
    parser.add_argument("output", help="output CSV path")
    parser.add_argument("--config", default=None, metavar="JOB_JSON",
                        help="declarative job description (JSON file with "
                             "AnonymizationConfig keys); overrides role/model flags")
    parser.add_argument("--qi", action="append", default=[],
                        help="categorical quasi-identifier column (repeatable)")
    parser.add_argument("--numeric-qi", action="append", default=[],
                        help="numeric quasi-identifier column (repeatable)")
    parser.add_argument("--sensitive", action="append", default=[],
                        help="sensitive column (repeatable)")
    parser.add_argument("--drop", action="append", default=[],
                        help="identifying column to remove (repeatable)")
    parser.add_argument("--k", type=int, default=5, help="k-anonymity level")
    parser.add_argument("--l", type=int, default=0,
                        help="distinct l-diversity level (0 = off)")
    parser.add_argument("--t", type=float, default=0.0,
                        help="t-closeness threshold (0 = off)")
    parser.add_argument("--algorithm",
                        choices=sorted([*algorithm_registry.names(), "mondrian-relaxed"]),
                        default="mondrian")
    parser.add_argument("--max-suppression", type=float, default=None,
                        help="suppression budget override (fraction of rows)")
    parser.add_argument("--bins", type=int, default=16,
                        help="base bins for auto numeric hierarchies")
    parser.add_argument("--report", action="store_true",
                        help="print a risk/utility report as JSON to stderr")
    return parser


def config_from_args(args: argparse.Namespace) -> AnonymizationConfig:
    """Translate role/model flags into a declarative config."""
    models: list[dict] = [{"model": "k-anonymity", "k": args.k}]
    if args.l:
        models.append(
            {"model": "distinct-l-diversity", "l": args.l, "sensitive": args.sensitive[0]}
        )
    if args.t:
        models.append(
            {"model": "t-closeness", "t": args.t, "sensitive": args.sensitive[0]}
        )
    if args.algorithm == "mondrian-relaxed":
        algorithm = {"algorithm": "mondrian", "mode": "relaxed"}
    else:
        algorithm = {"algorithm": args.algorithm}
    max_suppression = args.max_suppression
    if max_suppression is None:
        max_suppression = _CLI_BUDGETS.get(args.algorithm)
    metrics: tuple = ()
    if args.report:
        metrics = _REPORT_METRICS + (("homogeneity",) if args.sensitive else ())
    return AnonymizationConfig(
        quasi_identifiers=args.qi,
        numeric_quasi_identifiers=args.numeric_qi,
        sensitive=args.sensitive,
        drop=args.drop,
        models=models,
        algorithm=algorithm,
        max_suppression=max_suppression,
        metrics=metrics,
        bins=args.bins,
    )


def _load_config(args: argparse.Namespace) -> AnonymizationConfig:
    overrides: dict = {}
    if args.max_suppression is not None:
        overrides["max_suppression"] = args.max_suppression
    config = AnonymizationConfig.from_json(Path(args.config).read_text())
    if args.report and not config.metrics:
        overrides["metrics"] = _REPORT_METRICS + (
            ("homogeneity",) if config.sensitive else ()
        )
    elif not args.report and config.metrics:
        # Without --report the CLI never surfaces metric values; computing
        # the job file's battery (full passes over the release) would be
        # pure wasted wall-clock.
        overrides["metrics"] = ()
    if overrides:
        config = AnonymizationConfig.from_dict({**config.to_dict(), **overrides})
    return config


def _reject_job_flags_with_config(parser: argparse.ArgumentParser,
                                  args: argparse.Namespace) -> None:
    """--config describes the whole job; silently dropping job flags would
    let e.g. a --k sweep over one job file publish N identical releases."""
    conflicting = [
        flag
        for flag, name in (
            ("--qi", "qi"), ("--numeric-qi", "numeric_qi"),
            ("--sensitive", "sensitive"), ("--drop", "drop"),
            ("--k", "k"), ("--l", "l"), ("--t", "t"),
            ("--algorithm", "algorithm"), ("--bins", "bins"),
        )
        if getattr(args, name) != parser.get_default(name)
    ]
    if conflicting:
        parser.error(
            f"{', '.join(conflicting)} cannot be combined with --config "
            "(the job file describes the whole job; only --max-suppression "
            "and --report apply on top)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.config is None:
        if not args.qi and not args.numeric_qi:
            parser.error("declare at least one --qi or --numeric-qi (or use --config)")
        if (args.l or args.t) and not args.sensitive:
            parser.error("--l/--t require --sensitive")
    else:
        _reject_job_flags_with_config(parser, args)

    try:
        config = (
            _load_config(args) if args.config is not None else config_from_args(args)
        )
        table = read_csv(
            args.input,
            categorical=list(config.quasi_identifiers) + list(config.sensitive),
            numeric=list(config.numeric_quasi_identifiers),
        )
        result = run(config, table)
        write_csv(result.release.table, args.output)

        if args.report:
            report = result.to_dict()
            # Keep risk/utility values at the top level (historic CLI shape)
            # alongside the structured result.
            report.update(report.pop("metrics"))
            print(json.dumps(report, indent=2), file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
