"""Command-line interface: anonymize a CSV file end to end.

Usage::

    python -m repro input.csv output.csv \
        --qi zipcode --qi nationality --numeric-qi age \
        --sensitive disease --k 5 --l 2 \
        --algorithm mondrian --report

Hierarchies are derived automatically: categorical QIs get prefix/flat
hierarchies, numeric QIs get uniform interval hierarchies over their
observed range. For production use, construct hierarchies programmatically
with the library API instead.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .algorithms import BottomUpGeneralization, Datafly, Flash, Incognito, Mondrian
from .algorithms.ola import OLA
from .attacks import homogeneity_attack, linkage_risks
from .core.anonymizer import Anonymizer
from .core.hierarchy import Hierarchy, IntervalHierarchy
from .core.io import read_csv, write_csv
from .core.schema import Schema
from .core.table import Table
from .errors import ReproError
from .metrics import gcp
from .privacy import DistinctLDiversity, KAnonymity, TCloseness

__all__ = ["main", "build_parser"]

ALGORITHMS = {
    "mondrian": lambda: Mondrian("strict"),
    "mondrian-relaxed": lambda: Mondrian("relaxed"),
    "datafly": lambda: Datafly(max_suppression=0.05),
    "incognito": lambda: Incognito(max_suppression=0.02),
    "ola": lambda: OLA(max_suppression=0.05),
    "flash": lambda: Flash(max_suppression=0.02),
    "bottom-up": lambda: BottomUpGeneralization(max_suppression=0.05),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anonymize a CSV file with k-anonymity and friends.",
    )
    parser.add_argument("input", help="input CSV path (with header row)")
    parser.add_argument("output", help="output CSV path")
    parser.add_argument("--qi", action="append", default=[],
                        help="categorical quasi-identifier column (repeatable)")
    parser.add_argument("--numeric-qi", action="append", default=[],
                        help="numeric quasi-identifier column (repeatable)")
    parser.add_argument("--sensitive", action="append", default=[],
                        help="sensitive column (repeatable)")
    parser.add_argument("--drop", action="append", default=[],
                        help="identifying column to remove (repeatable)")
    parser.add_argument("--k", type=int, default=5, help="k-anonymity level")
    parser.add_argument("--l", type=int, default=0,
                        help="distinct l-diversity level (0 = off)")
    parser.add_argument("--t", type=float, default=0.0,
                        help="t-closeness threshold (0 = off)")
    parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="mondrian")
    parser.add_argument("--bins", type=int, default=16,
                        help="base bins for auto numeric hierarchies")
    parser.add_argument("--report", action="store_true",
                        help="print a risk/utility report as JSON to stderr")
    return parser


def auto_hierarchies(table: Table, schema: Schema, n_bins: int) -> dict:
    """Derive sensible default hierarchies from the data."""
    hierarchies: dict = {}
    for name in schema.categorical_quasi_identifiers:
        values = sorted(set(table.column(name).decode()), key=str)
        hierarchies[name] = _prefix_or_flat(values)
    for name in schema.numeric_quasi_identifiers:
        data = table.values(name)
        lo, hi = float(data.min()), float(data.max())
        if hi <= lo:
            hi = lo + 1.0
        span = hi - lo
        hierarchies[name] = IntervalHierarchy.uniform(
            lo - 0.001 * span, hi + 0.001 * span, n_bins=n_bins
        )
    return hierarchies


def _prefix_or_flat(values: list) -> Hierarchy:
    """Digit-string domains get prefix-masking levels; others get flat."""
    texts = [str(v) for v in values]
    if all(t.isdigit() and len(t) == len(texts[0]) for t in texts) and len(texts[0]) > 1:
        width = len(texts[0])
        rows = {
            v: [str(v)[: width - i] + "*" * i for i in range(1, width)] + ["*"]
            for v in values
        }
        return Hierarchy.from_levels(rows)
    return Hierarchy.flat(values)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.qi and not args.numeric_qi:
        parser.error("declare at least one --qi or --numeric-qi")
    if (args.l or args.t) and not args.sensitive:
        parser.error("--l/--t require --sensitive")

    try:
        table = read_csv(args.input, categorical=args.qi + args.sensitive,
                         numeric=args.numeric_qi)
        schema = Schema.build(
            quasi_identifiers=args.qi,
            numeric_quasi_identifiers=args.numeric_qi,
            sensitive=args.sensitive,
            identifying=args.drop,
            insensitive=[
                name for name in table.column_names
                if name not in set(args.qi) | set(args.numeric_qi)
                | set(args.sensitive) | set(args.drop)
            ],
        )
        hierarchies = auto_hierarchies(table, schema, args.bins)
        anonymizer = Anonymizer(table, schema, hierarchies)

        models = [KAnonymity(args.k)]
        if args.l:
            models.append(DistinctLDiversity(args.l, args.sensitive[0]))
        if args.t:
            models.append(TCloseness(args.t, args.sensitive[0]))

        release = anonymizer.apply(*models, algorithm=ALGORITHMS[args.algorithm]())
        write_csv(release.table, args.output)

        if args.report:
            report = {
                "summary": release.summary(),
                "linkage": linkage_risks(release),
                "gcp": gcp(table, release, hierarchies),
            }
            if args.sensitive:
                report["homogeneity"] = homogeneity_attack(release)
            print(json.dumps(report, indent=2, default=_jsonable), file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return list(value)
    return str(value)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
