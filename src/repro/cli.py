"""Command-line interface: anonymize a CSV file end to end.

Usage::

    python -m repro input.csv output.csv \
        --qi zipcode --qi nationality --numeric-qi age \
        --sensitive disease --k 5 --l 2 \
        --algorithm mondrian --report

or, declaratively, with the whole job described as JSON::

    python -m repro input.csv output.csv --config job.json --report

or as a batch — a JSON *list* of jobs run through
:func:`repro.api.run_batch`, optionally in parallel::

    python -m repro input.csv output.csv --config jobs.json --workers 4

Batch mode writes one release per job to numbered outputs derived from the
output path (``output.1.csv``, ``output.2.csv``, ... in job order), shares
lattice evaluation across jobs exactly like the library API, and with
``--report`` prints a JSON array of per-job reports to stderr.
``--cache-bytes`` budgets the engine cache (per-job for a single job,
globally via the batch planner in batch mode), ``--plan
auto|waves|shared`` picks the batch cache plan, and ``--backend
thread|process`` picks the batch execution tier — outputs are identical at
any budget, plan, backend, or worker count. ``--chunk-rows`` streams
lattice group packing through fixed-size row chunks in either mode.

Batch failure handling mirrors :func:`repro.api.run_batch`: with
``--on-error collect`` a failing job is recorded instead of aborting its
siblings — its numbered output file is skipped, a one-line summary goes to
stderr, its ``--report`` entry carries the structured failure, and the
exit code is 1 when any job failed (0 otherwise). ``--retries N`` re-runs
failed jobs, and ``--job-timeout SECONDS`` bounds each job cooperatively
(also valid for single jobs, where it sets the config's ``job_timeout``).

A third form runs the long-lived anonymization service (HTTP job API with
per-tenant warm caches — see :mod:`repro.service`)::

    python -m repro serve --port 8035 --queue-workers 2

Flags are parsed into the same :class:`repro.api.AnonymizationConfig` a
``--config`` file deserializes to, and both run through
:func:`repro.api.run` — the CLI has no private algorithm table or wiring of
its own. ``--algorithm`` therefore accepts every registered algorithm,
including the whole local-recoding family (``mondrian``, ``tds``, ``mdav``,
``kmember``, ``anatomy``, ``slicing``) alongside the full-domain lattice
algorithms; ``mdav`` needs at least one ``--numeric-qi`` and ``anatomy``
exactly one ``--sensitive``, both enforced at config-parse time. Hierarchies default to the ``auto`` builder (prefix/flat for
categorical QIs, uniform intervals for numeric QIs); pin them in the config
file for production use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .api import (
    BACKENDS,
    ON_ERROR,
    PLANS,
    AnonymizationConfig,
    JobFailure,
    algorithm_registry,
    run,
    run_batch,
)
from .core.io import read_csv, write_csv
from .errors import ConfigError, ReproError

__all__ = ["main", "build_parser", "build_serve_parser", "config_from_args"]

#: Suppression budgets the flag-mode CLI has always used per algorithm
#: (registry defaults are library-wide; these preserve CLI behavior).
_CLI_BUDGETS = {
    "datafly": 0.05,
    "incognito": 0.02,
    "ola": 0.05,
    "flash": 0.02,
    "bottom-up": 0.05,
}

#: Report metrics computed when ``--report`` is given and the config does
#: not request its own set ("homogeneity" joins when a sensitive exists).
_REPORT_METRICS = ("linkage", "gcp")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anonymize a CSV file with k-anonymity and friends.",
    )
    parser.add_argument("input", help="input CSV path (with header row)")
    parser.add_argument("output", help="output CSV path")
    parser.add_argument("--config", default=None, metavar="JOB_JSON",
                        help="declarative job description (JSON file with "
                             "AnonymizationConfig keys, or a JSON list of such "
                             "jobs for batch mode); overrides role/model flags")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker threads for batch mode (--config with a "
                             "JSON list of jobs); jobs share one lattice "
                             "engine and outputs are identical at any N")
    parser.add_argument("--cache-bytes", type=int, default=None, metavar="BYTES",
                        help="engine-cache budget: per-job evaluator budget "
                             "for a single job, global batch-planner budget "
                             "in batch mode; outputs are identical at any "
                             "budget")
    parser.add_argument("--plan", choices=list(PLANS),
                        default="auto",
                        help="batch cache plan: 'waves' schedules "
                             "environments in budget-sized waves, 'shared' "
                             "keeps every engine alive at once, 'auto' picks "
                             "waves when the estimated footprint overflows "
                             "--cache-bytes (batch mode only)")
    parser.add_argument("--backend", choices=list(BACKENDS), default=None,
                        help="batch execution tier: 'thread' (default) runs "
                             "workers in-process, 'process' runs each "
                             "environment group in a worker process against "
                             "shared-memory column arrays; outputs are "
                             "identical either way (batch mode only)")
    parser.add_argument("--on-error", choices=list(ON_ERROR), default=None,
                        help="batch failure policy: 'raise' (default) aborts "
                             "the whole batch on the first failing job, "
                             "'collect' records the failure, keeps the "
                             "siblings running, skips the failed job's "
                             "numbered output, and exits 1 (batch mode only)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="cooperative per-job time budget in seconds, "
                             "enforced between lattice-node evaluations; in "
                             "batch mode the tighter of this and a job's own "
                             "'job_timeout' key wins")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-attempt each failed job up to N times "
                             "(requires --on-error collect; batch mode only)")
    parser.add_argument("--chunk-rows", type=int, default=None, metavar="ROWS",
                        help="stream lattice group packing through chunks of "
                             "this many rows instead of materializing "
                             "full-size intermediate label arrays (full-"
                             "domain algorithms; outputs are identical at "
                             "any chunk size)")
    parser.add_argument("--qi", action="append", default=[],
                        help="categorical quasi-identifier column (repeatable)")
    parser.add_argument("--numeric-qi", action="append", default=[],
                        help="numeric quasi-identifier column (repeatable)")
    parser.add_argument("--sensitive", action="append", default=[],
                        help="sensitive column (repeatable)")
    parser.add_argument("--drop", action="append", default=[],
                        help="identifying column to remove (repeatable)")
    parser.add_argument("--k", type=int, default=5, help="k-anonymity level")
    parser.add_argument("--l", type=int, default=0,
                        help="distinct l-diversity level (0 = off)")
    parser.add_argument("--t", type=float, default=0.0,
                        help="t-closeness threshold (0 = off)")
    parser.add_argument("--algorithm",
                        choices=sorted([*algorithm_registry.names(), "mondrian-relaxed"]),
                        default="mondrian")
    parser.add_argument("--max-suppression", type=float, default=None,
                        help="suppression budget override (fraction of rows)")
    parser.add_argument("--bins", type=int, default=16,
                        help="base bins for auto numeric hierarchies")
    parser.add_argument("--report", action="store_true",
                        help="print a risk/utility report as JSON to stderr")
    return parser


def config_from_args(args: argparse.Namespace) -> AnonymizationConfig:
    """Translate role/model flags into a declarative config."""
    models: list[dict] = [{"model": "k-anonymity", "k": args.k}]
    if args.l:
        models.append(
            {"model": "distinct-l-diversity", "l": args.l, "sensitive": args.sensitive[0]}
        )
    if args.t:
        models.append(
            {"model": "t-closeness", "t": args.t, "sensitive": args.sensitive[0]}
        )
    if args.algorithm == "mondrian-relaxed":
        algorithm = {"algorithm": "mondrian", "mode": "relaxed"}
    else:
        algorithm = {"algorithm": args.algorithm}
    max_suppression = args.max_suppression
    if max_suppression is None:
        max_suppression = _CLI_BUDGETS.get(args.algorithm)
    metrics: tuple = ()
    if args.report:
        metrics = _REPORT_METRICS + (("homogeneity",) if args.sensitive else ())
    return AnonymizationConfig(
        quasi_identifiers=args.qi,
        numeric_quasi_identifiers=args.numeric_qi,
        sensitive=args.sensitive,
        drop=args.drop,
        models=models,
        algorithm=algorithm,
        max_suppression=max_suppression,
        metrics=metrics,
        bins=args.bins,
        cache_bytes=args.cache_bytes,
        chunk_rows=args.chunk_rows,
        job_timeout=args.job_timeout,
    )


def _apply_cli_overrides(
    config: AnonymizationConfig, args: argparse.Namespace, batch: bool = False
) -> AnonymizationConfig:
    overrides: dict = {}
    if args.max_suppression is not None:
        overrides["max_suppression"] = args.max_suppression
    if args.cache_bytes is not None and not batch:
        # In batch mode --cache-bytes is the planner's *global* budget
        # (passed to run_batch), not a per-job engine override.
        overrides["cache_bytes"] = args.cache_bytes
    if args.chunk_rows is not None:
        # Chunking is a per-environment execution knob, so unlike
        # --cache-bytes it applies per job in batch mode too.
        overrides["chunk_rows"] = args.chunk_rows
    if args.job_timeout is not None and not batch:
        # In batch mode --job-timeout goes to run_batch, where the tighter
        # of it and a job's own 'job_timeout' key wins — overriding the
        # config here would silently widen a job's declared budget.
        overrides["job_timeout"] = args.job_timeout
    if args.report and not config.metrics:
        overrides["metrics"] = _REPORT_METRICS + (
            ("homogeneity",) if config.sensitive else ()
        )
    elif not args.report and config.metrics:
        # Without --report the CLI never surfaces metric values; computing
        # the job file's battery (full passes over the release) would be
        # pure wasted wall-clock.
        overrides["metrics"] = ()
    if overrides:
        config = AnonymizationConfig.from_dict({**config.to_dict(), **overrides})
    return config


def _load_configs(args: argparse.Namespace) -> tuple[list[AnonymizationConfig], bool]:
    """(configs, is_batch) from ``--config``: one job object, or a list."""
    try:
        data = json.loads(Path(args.config).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"config is not valid JSON: {exc}") from exc
    is_batch = isinstance(data, list)
    jobs = data if is_batch else [data]
    if not jobs:
        raise ConfigError("config file holds an empty job list")
    return (
        [
            _apply_cli_overrides(AnonymizationConfig.from_dict(job), args, is_batch)
            for job in jobs
        ],
        is_batch,
    )


def _column_roles(configs: list[AnonymizationConfig]) -> tuple[list[str], list[str]]:
    """Union of (categorical, numeric) column typings across a batch.

    A column typed categorically by one job and numerically by another
    cannot be loaded consistently from one CSV, so that is rejected rather
    than letting one job silently win.
    """
    categorical: set[str] = set()
    numeric: set[str] = set()
    for config in configs:
        categorical.update(config.quasi_identifiers)
        categorical.update(config.sensitive)
        numeric.update(config.numeric_quasi_identifiers)
    clashing = sorted(categorical & numeric)
    if clashing:
        raise ConfigError(
            f"column {clashing[0]!r} is categorical in one batch job and "
            "numeric in another; batch jobs must agree on column types"
        )
    return sorted(categorical), sorted(numeric)


def _numbered_output(path: Path, index: int) -> Path:
    """``out.csv`` -> ``out.3.csv`` for job index 3 (1-based, job order)."""
    return path.with_name(f"{path.stem}.{index}{path.suffix}")


def _reject_job_flags_with_config(parser: argparse.ArgumentParser,
                                  args: argparse.Namespace) -> None:
    """--config describes the whole job; silently dropping job flags would
    let e.g. a --k sweep over one job file publish N identical releases."""
    conflicting = [
        flag
        for flag, name in (
            ("--qi", "qi"), ("--numeric-qi", "numeric_qi"),
            ("--sensitive", "sensitive"), ("--drop", "drop"),
            ("--k", "k"), ("--l", "l"), ("--t", "t"),
            ("--algorithm", "algorithm"), ("--bins", "bins"),
        )
        if getattr(args, name) != parser.get_default(name)
    ]
    if conflicting:
        parser.error(
            f"{', '.join(conflicting)} cannot be combined with --config "
            "(the job file describes the whole job; only --max-suppression, "
            "--cache-bytes, --chunk-rows, --plan, --backend, --workers, "
            "--on-error, --job-timeout, --retries and --report apply on top)"
        )


def _report_payload(result) -> dict:
    report = result.to_dict()
    # Keep risk/utility values at the top level (historic CLI shape)
    # alongside the structured result. JobFailure reports have no metrics.
    report.update(report.pop("metrics", {}))
    return report


def _failure_summary(index: int, failure: JobFailure) -> str:
    """The one-line per-job failure summary printed to stderr."""
    return (
        f"job {index} failed [{failure.error_type}] after "
        f"{len(failure.attempts)} attempt(s): {failure.error.get('message', '')}"
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the long-lived anonymization service (HTTP job API).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8035,
                        help="bind port (default 8035; 0 picks a free port)")
    parser.add_argument("--queue-workers", type=int, default=2, metavar="N",
                        help="worker threads draining the job queue")
    parser.add_argument("--queue-depth", type=int, default=32, metavar="N",
                        help="max queued batches before POSTs get 503")
    parser.add_argument("--tenants-config", default=None, metavar="JSON",
                        help="per-tenant policy file: {tenant: {'cache_bytes': "
                             "N, 'max_environments': M}}; unlisted tenants "
                             "get the defaults")
    parser.add_argument("--replay-log", default=None, metavar="PATH",
                        help="append-only JSONL log of every accepted job and "
                             "outcome; replayable to byte-identical releases")
    parser.add_argument("--data-root", default=None, metavar="DIR",
                        help="allow jobs to reference server-side CSVs via "
                             "{'path': ...} resolved under this directory "
                             "(inline CSV is always allowed)")
    parser.add_argument("--service-cache-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="global cap on the sum of live tenants' warm-"
                             "cache budgets; exceeding it evicts LRU tenants")
    parser.add_argument("--default-cache-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="warm-cache budget for tenants not in "
                             "--tenants-config")
    return parser


def _serve(argv: list[str]) -> int:
    from .api.executor import _arm_signal_conversion
    from .service import AnonymizationService, create_server

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    tenants_config = None
    if args.tenants_config is not None:
        try:
            tenants_config = json.loads(Path(args.tenants_config).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: --tenants-config: {exc}", file=sys.stderr)
            return 2
    try:
        service = AnonymizationService(
            tenants_config=tenants_config,
            queue_workers=args.queue_workers,
            queue_depth=args.queue_depth,
            replay_path=args.replay_log,
            data_root=args.data_root,
            service_cache_bytes=args.service_cache_bytes,
            default_cache_bytes=args.default_cache_bytes,
        )
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # Flushed line with the bound port so wrappers (CI smoke, benchmarks)
    # can parse it even when --port 0 asked for an ephemeral one.
    print(f"repro service listening on http://{host}:{port}", flush=True)
    # Install our own SIGINT/SIGTERM handlers: shells start background
    # children (`repro serve ... &`) with SIGINT ignored, and SIGTERM's
    # default disposition would skip the shutdown path below entirely.
    restore = _arm_signal_conversion()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        restore()
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # The anonymize parser has two positionals; dispatch the service
        # subcommand before it so `repro serve --port N` never parses as
        # input/output paths.
        return _serve(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.config is None:
        if args.workers != 1:
            parser.error("--workers requires --config with a JSON list of jobs")
        if args.plan != parser.get_default("plan"):
            parser.error("--plan requires --config with a JSON list of jobs")
        if args.backend is not None:
            parser.error("--backend requires --config with a JSON list of jobs")
        if args.on_error is not None:
            parser.error("--on-error requires --config with a JSON list of jobs")
        if args.retries:
            parser.error("--retries requires --config with a JSON list of jobs")
        if not args.qi and not args.numeric_qi:
            parser.error("declare at least one --qi or --numeric-qi (or use --config)")
        if (args.l or args.t) and not args.sensitive:
            parser.error("--l/--t require --sensitive")
    else:
        _reject_job_flags_with_config(parser, args)

    try:
        if args.config is not None:
            configs, is_batch = _load_configs(args)
            if not is_batch and args.workers != 1:
                # Silently running one job on one thread would contradict
                # what the flag promises; say what shape the file needs.
                raise ConfigError(
                    "--workers applies to batch mode: --config must hold a "
                    "JSON list of jobs, got a single job object"
                )
            if not is_batch and args.plan != parser.get_default("plan"):
                raise ConfigError(
                    "--plan applies to batch mode: --config must hold a "
                    "JSON list of jobs, got a single job object"
                )
            if not is_batch and args.backend is not None:
                raise ConfigError(
                    "--backend applies to batch mode: --config must hold a "
                    "JSON list of jobs, got a single job object"
                )
            if not is_batch and args.on_error is not None:
                raise ConfigError(
                    "--on-error applies to batch mode: --config must hold a "
                    "JSON list of jobs, got a single job object"
                )
            if not is_batch and args.retries:
                raise ConfigError(
                    "--retries applies to batch mode: --config must hold a "
                    "JSON list of jobs, got a single job object"
                )
        else:
            configs, is_batch = [config_from_args(args)], False
        categorical, numeric = _column_roles(configs)
        table = read_csv(args.input, categorical=categorical, numeric=numeric)

        if is_batch:
            results = run_batch(
                configs,
                table,
                workers=args.workers,
                plan=args.plan,
                cache_bytes=args.cache_bytes,
                backend=args.backend,
                on_error=args.on_error or "raise",
                job_timeout=args.job_timeout,
                retries=args.retries,
            )
            output = Path(args.output)
            failed = 0
            for index, result in enumerate(results, start=1):
                if isinstance(result, JobFailure):
                    # No numbered output for a failed job: a partial or
                    # stale file would read as a published release.
                    failed += 1
                    print(_failure_summary(index, result), file=sys.stderr)
                    continue
                write_csv(result.release.table, _numbered_output(output, index))
            if args.report:
                payload = [_report_payload(result) for result in results]
                print(json.dumps(payload, indent=2), file=sys.stderr)
            return 1 if failed else 0

        result = run(configs[0], table)
        write_csv(result.release.table, args.output)
        if args.report:
            print(json.dumps(_report_payload(result), indent=2), file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
