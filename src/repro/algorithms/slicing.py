"""Slicing (Li, Li, Zhang & Molloy).

A third publication style beside generalization and anatomization: the
attribute set is partitioned into *columns* of correlated attributes (the
sensitive attribute anchors one column); records are partitioned into
*buckets* of size ≥ k; within every bucket, each column's values are
independently permuted. The published table preserves each column's joint
distribution exactly and each bucket's cross-column associations only in
aggregate — breaking the QI→sensitive linkage while keeping utility far
above full generalization.

Column grouping is data-driven: greedy pairing by mutual information (the
paper's correlation-based grouping), with a per-column width cap.

The release's :class:`SlicedRelease` (in ``info["sliced"]``) supports the
same COUNT-query estimation interface as Anatomy, assuming cross-column
independence within buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Column, Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["Slicing", "SlicedRelease"]


@dataclass
class SlicedRelease:
    """Published sliced table plus its structure."""

    table: Table
    columns: list[tuple]      # attribute-name groups
    buckets: list[np.ndarray]  # row-index arrays (into the published table)

    def bucket_of_rows(self) -> np.ndarray:
        out = np.empty(self.table.n_rows, dtype=np.int64)
        for bucket_id, rows in enumerate(self.buckets):
            out[rows] = bucket_id
        return out


class Slicing:
    """Correlation-grouped columns, size-k buckets, within-bucket permutation."""

    def __init__(self, k: int, max_column_width: int = 2, seed: int | None = 0):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if max_column_width < 1:
            raise ValueError(f"max_column_width must be >= 1, got {max_column_width}")
        self.k = int(k)
        self.max_column_width = int(max_column_width)
        self.seed = seed
        self.name = f"slicing[k={k}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike] | None = None,
        models: Sequence[PrivacyModel] = (),
    ) -> Release:
        original = prepare_input(
            table, schema,
            hierarchies or {n: _DUMMY for n in schema.categorical_quasi_identifiers},
        )
        if original.n_rows < self.k:
            raise InfeasibleError(f"table has fewer than k={self.k} rows")
        rng = np.random.default_rng(self.seed)

        sliced = self.slice_table(original, schema, rng)
        return Release(
            table=sliced.table,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"sliced": sliced, "column_groups": sliced.columns},
        )

    # -- core ------------------------------------------------------------

    def slice_table(self, table: Table, schema: Schema, rng: np.random.Generator) -> SlicedRelease:
        attribute_names = list(schema.quasi_identifiers + schema.sensitive)
        groups = self._group_columns(table, schema)

        # Buckets: random partition into chunks of size >= k (the paper
        # buckets by a tuple-grouping pass; random bucketing preserves the
        # privacy property and is the common simplification).
        order = rng.permutation(table.n_rows)
        buckets = [
            order[i : i + self.k] for i in range(0, table.n_rows - self.k + 1, self.k)
        ]
        leftover = order[len(buckets) * self.k :]
        if leftover.size:
            buckets[-1] = np.concatenate([buckets[-1], leftover])

        # Permute each column group independently within each bucket.
        new_positions = {name: np.arange(table.n_rows) for name in attribute_names}
        for group in groups:
            for bucket in buckets:
                shuffled = bucket.copy()
                rng.shuffle(shuffled)
                for name in group:
                    new_positions[name][bucket] = shuffled

        published_columns = []
        for col in table:
            if col.name in new_positions:
                published_columns.append(col.take(new_positions[col.name]))
            else:
                published_columns.append(col)
        published = Table(published_columns)
        sorted_buckets = [np.sort(b) for b in buckets]
        return SlicedRelease(table=published, columns=groups, buckets=sorted_buckets)

    def _group_columns(self, table: Table, schema: Schema) -> list[tuple]:
        """Greedy MI-based pairing of attributes into column groups.

        The sensitive attribute anchors its own group; its most correlated
        QI joins it (the paper keeps correlated attributes together to
        preserve their joint distribution).
        """
        names = list(schema.quasi_identifiers)
        sensitive = schema.sensitive[0] if schema.sensitive else None
        encoded = {name: _encode(table, name) for name in names}
        if sensitive is not None:
            encoded[sensitive] = _encode(table, sensitive)

        groups: list[list[str]] = []
        remaining = list(names)
        if sensitive is not None:
            anchor = [sensitive]
            if remaining and self.max_column_width > 1:
                best = max(
                    remaining,
                    key=lambda n: _mutual_information(encoded[n], encoded[sensitive]),
                )
                anchor.append(best)
                remaining.remove(best)
            groups.append(anchor)

        while remaining:
            first = remaining.pop(0)
            group = [first]
            while remaining and len(group) < self.max_column_width:
                best = max(
                    remaining,
                    key=lambda n: _mutual_information(encoded[n], encoded[first]),
                )
                group.append(best)
                remaining.remove(best)
            groups.append(group)
        return [tuple(g) for g in groups]

    def __repr__(self) -> str:
        return f"Slicing(k={self.k}, max_column_width={self.max_column_width})"


def _encode(table: Table, name: str) -> np.ndarray:
    col = table.column(name)
    if col.is_categorical:
        return col.codes.astype(np.int64)
    _, inverse = np.unique(col.values, return_inverse=True)
    return inverse.astype(np.int64)


def _mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    size_a, size_b = int(a.max()) + 1, int(b.max()) + 1
    # Flattened integer bincount instead of float scatter-add: identical
    # float64 joint matrix (counts are exact well below 2**53) at a
    # fraction of the cost of np.add.at.
    joint = (
        np.bincount(a * size_b + b, minlength=size_a * size_b)
        .reshape(size_a, size_b)
        .astype(np.float64)
    )
    joint /= joint.sum()
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (pa * pb), 1.0)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(terms.sum())


class _Dummy:
    height = 0


_DUMMY = _Dummy()
