"""Incognito (LeFevre, DeWitt & Ramakrishnan).

Finds *all* minimal full-domain generalizations satisfying the privacy
models, using the apriori-style observation that if a QI subset's
generalization violates (monotone) k-anonymity, every superset node below it
does too.

Implementation walks QI subsets of increasing size; for each subset it does a
bottom-up BFS of the projected lattice, with two classic optimizations:

* **predictive tagging** — once a node satisfies the models, its whole up-set
  is marked satisfying without re-checking (requires monotone models);
* **candidate pruning across subset sizes** — a size-``s`` node is only
  checked if all its size-``s-1`` projections were satisfying.

The returned release uses the minimal satisfying node with the best value of
a caller-supplied scoring function (default: lowest total height, ties by
most equivalence classes).

Instrumentation: ``stats`` on the instance records nodes checked vs. lattice
size (the E12 pruning experiment).
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Mapping, Sequence

from ..core.engine import LatticeEvaluator
from ..core.generalize import HierarchyLike, apply_node
from ..core.lattice import GeneralizationLattice
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input, suppress_rows

__all__ = ["Incognito"]

Node = tuple[int, ...]


class Incognito:
    """Breadth-first lattice search for all minimal satisfying nodes."""

    #: ``anonymize`` accepts an external LatticeEvaluator (batch sharing).
    uses_evaluator = True

    def __init__(
        self,
        max_suppression: float = 0.0,
        score: Callable[[Table, Node], float] | None = None,
        use_subset_pruning: bool = True,
        use_predictive_tagging: bool = True,
        preseed_subsets: bool = True,
    ):
        self.max_suppression = float(max_suppression)
        self.score = score
        self.use_subset_pruning = use_subset_pruning
        self.use_predictive_tagging = use_predictive_tagging
        self.preseed_subsets = preseed_subsets
        self.name = "incognito"
        self.stats: dict = {}

    # -- public API ----------------------------------------------------------

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        evaluator: LatticeEvaluator | None = None,
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        if evaluator is None:
            evaluator = LatticeEvaluator(original, qi_names, hierarchies)
        minimal = self.find_minimal_nodes(
            original, qi_names, hierarchies, models, evaluator=evaluator
        )
        if not minimal:
            raise InfeasibleError("no full-domain generalization satisfies the models")
        best = self._choose(original, evaluator, minimal)
        candidate = apply_node(original, hierarchies, qi_names, best)

        suppressed, kept = 0, None
        if not evaluator.check(best, models):  # pragma: no cover - safety
            candidate, kept, suppressed = suppress_rows(
                candidate, evaluator.failing_rows(best, models), self.max_suppression
            )
        return Release(
            table=candidate,
            schema=schema,
            algorithm=self.name,
            node=best,
            suppressed=suppressed,
            original_n_rows=original.n_rows,
            kept_rows=kept,
            info={"minimal_nodes": sorted(minimal), "stats": dict(self.stats)},
        )

    # -- search --------------------------------------------------------------

    def find_minimal_nodes(
        self,
        table: Table,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        evaluator: LatticeEvaluator | None = None,
    ) -> list[Node]:
        """All minimal satisfying nodes of the full lattice."""
        if evaluator is None:
            evaluator = LatticeEvaluator(table, qi_names, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi_names)
        monotone = all(getattr(m, "monotone", False) for m in models)
        self.stats = {
            "nodes_checked": 0,
            "lattice_size": lattice.size,
            "tagged_without_check": 0,
            "pruned_by_subsets": 0,
        }

        # satisfying_by_subset[frozenset of names] = set of satisfying nodes
        # (in the projected lattice of that subset, ordered as sorted names).
        satisfying_by_subset: dict[frozenset, set[Node]] = {}

        names_sorted = sorted(qi_names)
        if self.preseed_subsets:
            # Deterministic cache fill: a subset's bottom node has no
            # strictly-more-specific neighbour, so it is always an
            # O(n_rows) from-rows computation — and *which* nodes end up
            # from-rows is exactly what used to depend on how parallel
            # batch jobs interleaved their searches (racing workers saw
            # emptier caches, computed more nodes from rows, rolled up
            # fewer). Each subset's bottom is seeded right before its
            # search below, so every job — whatever worker it runs on —
            # has the bottom cached before requesting any other node of
            # that subset, and `cache_info()` shows the same
            # from_rows/rollups split at any worker count. Seeding lazily
            # (not all 2^n bottoms up front) keeps an infeasible or
            # heavily-pruned search from paying for subsets it never
            # reaches. The release-choice phase (_choose, the final check,
            # failing rows) evaluates full-lattice nodes in the
            # evaluator's own QI order — a different memo key space than
            # the sorted subset order whenever qi_names isn't sorted —
            # so its bottom is seeded too (a plain hit when they coincide).
            evaluator.stats((0,) * len(qi_names))
            self.stats["preseeded_subsets"] = 0
        for size in range(1, len(names_sorted) + 1):
            for subset in combinations(names_sorted, size):
                if self.preseed_subsets:
                    evaluator.stats((0,) * size, names=subset)
                    self.stats["preseeded_subsets"] += 1
                sub_lattice = lattice.project(subset)
                satisfying = self._search_subset(
                    evaluator, subset, sub_lattice, models,
                    satisfying_by_subset, monotone,
                )
                if not satisfying:
                    return []  # even this subset cannot be protected
                satisfying_by_subset[frozenset(subset)] = satisfying

        full = satisfying_by_subset[frozenset(names_sorted)]
        # Re-order node components from sorted-name order to qi_names order.
        order = [sorted(qi_names).index(name) for name in qi_names]
        reordered = {tuple(node[i] for i in order) for node in full}
        return _minimal_antichain(reordered)

    def _search_subset(
        self,
        evaluator: LatticeEvaluator,
        subset: tuple,
        sub_lattice: GeneralizationLattice,
        models: Sequence[PrivacyModel],
        satisfying_by_subset: dict,
        monotone: bool,
    ) -> set[Node]:
        satisfying: set[Node] = set()
        for stratum in sub_lattice.levels():
            for node in stratum:
                if node in satisfying:
                    continue  # predictively tagged
                if self.use_subset_pruning and len(subset) > 1:
                    if self._pruned_by_subsets(node, subset, satisfying_by_subset):
                        self.stats["pruned_by_subsets"] += 1
                        continue
                self.stats["nodes_checked"] += 1
                # Evaluate over the full table's rows (not a projection):
                # models like l-diversity/t-closeness need the sensitive
                # column, which GroupStats histograms carry.
                if evaluator.evaluate(node, models, self.max_suppression, names=subset):
                    if monotone and self.use_predictive_tagging:
                        up = sub_lattice.up_set(node)
                        self.stats["tagged_without_check"] += len(up - satisfying) - 1
                        satisfying |= up
                    else:
                        satisfying.add(node)
        return satisfying

    def _pruned_by_subsets(self, node: Node, subset: tuple, satisfying_by_subset: dict) -> bool:
        """True if any (s-1)-projection of ``node`` was unsatisfying."""
        for drop in range(len(subset)):
            smaller = subset[:drop] + subset[drop + 1 :]
            projected = node[:drop] + node[drop + 1 :]
            known = satisfying_by_subset.get(frozenset(smaller))
            if known is not None and projected not in known:
                return True
        return False

    def _choose(
        self,
        table: Table,
        evaluator: LatticeEvaluator,
        minimal: list[Node],
    ) -> Node:
        """Pick the release node among the minimal antichain."""
        if self.score is not None:
            return min(minimal, key=lambda node: self.score(table, node))
        return min(minimal, key=lambda node: (sum(node), -evaluator.n_groups(node)))

    def __repr__(self) -> str:
        return (
            f"Incognito(max_suppression={self.max_suppression}, "
            f"subset_pruning={self.use_subset_pruning}, "
            f"predictive_tagging={self.use_predictive_tagging})"
        )


def _minimal_antichain(nodes: set[Node]) -> list[Node]:
    """Nodes with no strictly-smaller satisfying node in the set."""
    minimal = []
    for node in nodes:
        dominated = any(
            other != node and all(o <= n for o, n in zip(other, node))
            for other in nodes
        )
        if not dominated:
            minimal.append(node)
    return sorted(minimal)
