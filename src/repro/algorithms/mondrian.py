"""Mondrian multidimensional partitioning (LeFevre, DeWitt & Ramakrishnan).

Recursively splits the record set on the quasi-identifier with the widest
normalized range, at the median, as long as both halves remain feasible for
the privacy models. Leaves become equivalence classes; each leaf's QI values
are locally recoded to the class's covering region.

Two modes, matching the paper:

* **strict** — a categorical/numeric value may not straddle the cut: records
  with the median value all go to one side. Guarantees non-overlapping
  regions.
* **relaxed** — records with the median value are distributed to balance the
  halves, allowing overlapping regions and (much) smaller classes on skewed
  data.

Numeric QIs split on the value median; categorical QIs split on the ordered
category-code median (a standard, hierarchy-free treatment; the hierarchy is
still used to label the recoded regions).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_partition_recoding
from ..core.hierarchy import Hierarchy
from ..core.partition import EquivalenceClasses
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["Mondrian"]


class Mondrian:
    """Top-down greedy multidimensional partitioning with local recoding.

    ``target`` switches on *InfoGain Mondrian* (LeFevre et al.'s
    workload-aware variant): split dimensions are ranked by the label-
    entropy reduction of their median cut instead of by normalized range,
    trading a little geometric balance for classification utility.
    """

    def __init__(self, mode: str = "strict", target: str | None = None):
        if mode not in ("strict", "relaxed"):
            raise ValueError(f"mode must be 'strict' or 'relaxed', got {mode!r}")
        self.mode = mode
        self.target = target
        suffix = ",infogain" if target else ""
        self.name = f"mondrian[{mode}{suffix}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers

        # Pre-extract per-QI numeric views for median computation.
        views: dict[str, np.ndarray] = {}
        spans: dict[str, float] = {}
        for name in qi_names:
            col = original.column(name)
            if col.is_categorical:
                views[name] = col.codes.astype(np.float64)  # type: ignore[union-attr]
                spans[name] = max(len(col.categories) - 1, 1)
            else:
                views[name] = col.values.astype(np.float64)  # type: ignore[union-attr]
                span = float(col.values.max() - col.values.min())  # type: ignore[union-attr]
                spans[name] = span if span > 0 else 1.0

        label_codes = original.codes(self.target) if self.target else None

        all_rows = np.arange(original.n_rows)
        if not self._allowable(original, [all_rows], models):
            raise InfeasibleError(
                "the whole table as one class violates the privacy models; "
                "no partitioning can help"
            )

        leaves: list[np.ndarray] = []
        stack = [all_rows]
        while stack:
            rows = stack.pop()
            split = self._best_split(
                original, rows, qi_names, views, spans, models, label_codes
            )
            if split is None:
                leaves.append(np.sort(rows))
            else:
                stack.extend(split)

        categorical = {
            name: hierarchies[name]
            for name in schema.categorical_quasi_identifiers
        }
        recoded = apply_partition_recoding(
            original,
            leaves,
            categorical_qis=categorical,  # type: ignore[arg-type]
            numeric_qis=schema.numeric_quasi_identifiers,
        )
        return Release(
            table=recoded,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"n_leaves": len(leaves), "mode": self.mode},
        )

    # -- splitting -----------------------------------------------------------

    def _best_split(
        self,
        table: Table,
        rows: np.ndarray,
        qi_names: Sequence[str],
        views: Mapping[str, np.ndarray],
        spans: Mapping[str, float],
        models: Sequence[PrivacyModel],
        label_codes: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Try QIs in priority order; first feasible cut wins.

        Priority: normalized range (classic), or label information gain of
        the median cut (InfoGain variant when ``label_codes`` is given).
        """
        scores = []
        for name in qi_names:
            values = views[name][rows]
            if label_codes is None:
                scores.append((float(values.max() - values.min()) / spans[name], name))
            else:
                scores.append((self._cut_gain(values, label_codes[rows]), name))
        for _, name in sorted(scores, reverse=True):
            halves = self._cut(views[name][rows], rows)
            if halves is None:
                continue
            left, right = halves
            if self._allowable(table, [left, right], models):
                return left, right
        return None

    @staticmethod
    def _cut_gain(values: np.ndarray, labels: np.ndarray) -> float:
        """Label-entropy reduction of the median cut on ``values``."""
        median = float(np.median(values))
        left_mask = values <= median
        if left_mask.all() or not left_mask.any():
            left_mask = values < median
            if left_mask.all() or not left_mask.any():
                return -np.inf

        def entropy(mask: np.ndarray) -> float:
            counts = np.bincount(labels[mask])
            probs = counts[counts > 0] / counts.sum()
            return float(-(probs * np.log2(probs)).sum())

        n = labels.shape[0]
        n_left = int(left_mask.sum())
        parent = entropy(np.ones(n, dtype=bool))
        children = (n_left * entropy(left_mask) + (n - n_left) * entropy(~left_mask)) / n
        return parent - children

    def _cut(self, values: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        """Median cut of ``rows`` by ``values``; None if degenerate."""
        if rows.size < 2:
            return None
        median = float(np.median(values))
        if self.mode == "strict":
            left_mask = values <= median
            # All median-valued records stay left; degenerate if one side empty.
            if left_mask.all() or not left_mask.any():
                # Try strictly-less cut for heavily repeated medians.
                left_mask = values < median
                if left_mask.all() or not left_mask.any():
                    return None
            return rows[left_mask], rows[~left_mask]
        # relaxed: split median-valued records to balance halves
        less = values < median
        more = values > median
        equal = ~less & ~more
        left = list(rows[less])
        right = list(rows[more])
        for row in rows[equal]:
            (left if len(left) <= len(right) else right).append(row)
        if not left or not right:
            return None
        return np.array(left, dtype=rows.dtype), np.array(right, dtype=rows.dtype)

    def _allowable(self, table: Table, groups: list[np.ndarray], models: Sequence[PrivacyModel]) -> bool:
        """Would these groups, as equivalence classes, satisfy the models?"""
        partition = EquivalenceClasses(
            groups=tuple(np.sort(g) for g in groups),
            qi_names=(),
            n_rows=table.n_rows,
        )
        return all(model.check(table, partition) for model in models)

    def __repr__(self) -> str:
        return f"Mondrian(mode={self.mode!r})"
