"""Mondrian multidimensional partitioning (LeFevre, DeWitt & Ramakrishnan).

Recursively splits the record set on the quasi-identifier with the widest
normalized range, at the median, as long as both halves remain feasible for
the privacy models. Leaves become equivalence classes; each leaf's QI values
are locally recoded to the class's covering region.

Two modes, matching the paper:

* **strict** — a categorical/numeric value may not straddle the cut: records
  with the median value all go to one side. Guarantees non-overlapping
  regions.
* **relaxed** — records with the median value are distributed to balance the
  halves, allowing overlapping regions and (much) smaller classes on skewed
  data.

Numeric QIs split on the value median; categorical QIs split on the ordered
category-code median (a standard, hierarchy-free treatment; the hierarchy is
still used to label the recoded regions).

Two execution engines produce byte-identical releases:

* ``engine="partition"`` (default) runs on
  :class:`~repro.core.partition_engine.PartitionEngine`: feasibility checks
  go through the privacy models' ``check_stats`` fast path with sensitive
  histograms derived incrementally (child = parent − sibling), the median
  and the parent label entropy are computed once per node, and the relaxed
  median-balancing assignment is closed-form vectorized. Range-scored runs
  (``target=None``) additionally use a frontier-vectorized BFS driver that
  derives every per-(group, QI) quantity — spans, medians, cut sizes, child
  histograms, batched k/l/t verdicts — from fused bincounts and cumulative
  sums over a whole tree level at once, then re-emits leaves in legacy DFS
  order; InfoGain runs stay on the per-node fast path. Cache counters ride
  in ``release.info["partition_cache"]``.
* ``engine="legacy"`` preserves the historic per-node path — a fresh
  :class:`EquivalenceClasses` plus ``model.check`` per candidate cut, the
  per-row Python append loop in relaxed mode, double median computation in
  InfoGain mode — as the parity and benchmark baseline (``bench_e41``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_partition_recoding
from ..core.hierarchy import Hierarchy
from ..core.partition import classes_from_groups
from ..core.partition_engine import (
    PartitionEngine,
    PartitionGroup,
    grouped_histograms,
)
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from ..privacy.k_anonymity import KAnonymity
from ..privacy.l_diversity import DistinctLDiversity, EntropyLDiversity
from ..privacy.t_closeness import TCloseness
from .base import prepare_input

__all__ = ["Mondrian"]

_INFEASIBLE_MSG = (
    "the whole table as one class violates the privacy models; "
    "no partitioning can help"
)


def _hist_entropy(counts: np.ndarray) -> float:
    """Shannon entropy of a count vector (zero bins ignored)."""
    probs = counts[counts > 0] / counts.sum()
    return float(-(probs * np.log2(probs)).sum())


class _FrontierStats:
    """Minimal stats shim feeding a model's matrix fast path per frontier.

    Carries one (n_groups, n_cats) histogram and the global distribution so
    ``TCloseness.distances_stats`` runs unchanged over a whole level's
    candidate children at once. All its per-group math is row-local
    (elementwise plus fixed-width axis-1 reductions), so verdicts are
    bit-identical to the two-row per-candidate evaluation.
    """

    __slots__ = ("_hist", "_global", "n_groups")

    def __init__(self, hist: np.ndarray, global_dist: np.ndarray):
        self._hist = hist
        self._global = global_dist
        self.n_groups = int(hist.shape[0])

    def histogram(self, name: str) -> np.ndarray:
        return self._hist

    def global_distribution(self, name: str) -> np.ndarray:
        return self._global


def _frontier_verdict_kind(model) -> str | None:
    """How (if at all) a model's per-candidate verdict batches per level.

    ``"sizes"`` — verdict from child sizes alone; ``"mask"`` — the model's
    own ``_ok_mask`` over child sensitive histograms; ``"emd"`` — t-closeness
    distances over the same histograms. ``None`` — not batchable (the
    frontier falls back to a per-candidate ``engine.check``). Exact types
    only: a subclass may override ``check``/``check_stats`` arbitrarily.
    """
    if type(model) is KAnonymity:
        return "sizes"
    if type(model) in (DistinctLDiversity, EntropyLDiversity):
        return "mask"
    if type(model) is TCloseness and model.ground_distance in ("equal", "ordered"):
        # The hierarchical ground runs through a matmul whose summation
        # order may depend on operand shape; keep it per-candidate.
        return "emd"
    return None


class Mondrian:
    """Top-down greedy multidimensional partitioning with local recoding.

    ``target`` switches on *InfoGain Mondrian* (LeFevre et al.'s
    workload-aware variant): split dimensions are ranked by the label-
    entropy reduction of their median cut instead of by normalized range,
    trading a little geometric balance for classification utility.
    """

    def __init__(self, mode: str = "strict", target: str | None = None,
                 engine: str = "partition"):
        if mode not in ("strict", "relaxed"):
            raise ValueError(f"mode must be 'strict' or 'relaxed', got {mode!r}")
        if engine not in ("partition", "legacy"):
            raise ValueError(
                f"engine must be 'partition' or 'legacy', got {engine!r}"
            )
        self.mode = mode
        self.target = target
        self.engine = engine
        suffix = ",infogain" if target else ""
        self.name = f"mondrian[{mode}{suffix}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers

        # Pre-extract per-QI numeric views for median computation.
        views: dict[str, np.ndarray] = {}
        spans: dict[str, float] = {}
        for name in qi_names:
            col = original.column(name)
            if col.is_categorical:
                views[name] = col.codes.astype(np.float64)  # type: ignore[union-attr]
                spans[name] = max(len(col.categories) - 1, 1)
            else:
                views[name] = col.values.astype(np.float64)  # type: ignore[union-attr]
                span = float(col.values.max() - col.values.min())  # type: ignore[union-attr]
                spans[name] = span if span > 0 else 1.0

        label_codes = original.codes(self.target) if self.target else None

        cache_info = None
        if self.engine == "partition":
            leaves, cache_info = self._partition_fast(
                original, qi_names, views, spans, models
            )
        else:
            leaves = self._partition_legacy(
                original, qi_names, views, spans, models, label_codes
            )

        categorical = {
            name: hierarchies[name]
            for name in schema.categorical_quasi_identifiers
        }
        recoded = apply_partition_recoding(
            original,
            leaves,
            categorical_qis=categorical,  # type: ignore[arg-type]
            numeric_qis=schema.numeric_quasi_identifiers,
        )
        info = {"n_leaves": len(leaves), "mode": self.mode}
        if cache_info is not None:
            info["partition_cache"] = cache_info
        return Release(
            table=recoded,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info=info,
        )

    # -- partition-engine path ----------------------------------------------

    def _partition_fast(self, original, qi_names, views, spans, models):
        engine = PartitionEngine(original)
        root = engine.root()
        if not engine.check([root], models):
            raise InfeasibleError(_INFEASIBLE_MSG)

        if self.target is None:
            leaves = self._partition_frontier(
                engine, root, qi_names, views, spans, models
            )
        else:
            # InfoGain scoring needs per-candidate label entropies whose
            # float summation order the level-batched layer cannot
            # reproduce bit-for-bit; it stays on the per-node fast path.
            leaves = self._partition_dfs(engine, root, qi_names, views, spans, models)
        return leaves, engine.cache_info()

    def _partition_dfs(self, engine, root, qi_names, views, spans, models):
        leaves: list[np.ndarray] = []
        stack = [root]
        while stack:
            group = stack.pop()
            split = self._best_split_fast(engine, group, qi_names, views, spans, models)
            if split is None:
                leaves.append(np.sort(group.rows))
            else:
                stack.extend(split)
        return leaves

    def _partition_frontier(self, engine, root, qi_names, views, spans, models):
        """Level-synchronous vectorized driver for range-scored Mondrian.

        Instead of re-gathering values and re-deriving statistics one node
        at a time, each frontier (all groups of one tree depth) is packed
        into contiguous arrays and every per-(group, QI) quantity — spans,
        medians, cut sizes, child sensitive histograms, model verdicts —
        comes out of a handful of fused bincounts and cumulative sums over
        the whole level. The per-group Python loop only resolves candidate
        order and materializes the accepted cut (via the same
        ``_cut_positions`` closed form as the per-node path), so releases
        stay byte-identical to ``engine="legacy"`` while per-node overhead
        amortizes away. Leaves are finally re-emitted in the legacy DFS
        stack order, which recoded-category order depends on.
        """
        batched: list[tuple] = []
        other_models: list = []
        for model in models:
            kind = _frontier_verdict_kind(model)
            if kind is None:
                other_models.append(model)
            else:
                batched.append((model, kind))
        sens_names = sorted({m.sensitive for m, kind in batched if kind != "sizes"})

        n_qis = len(qi_names)
        qi_idx = {name: i for i, name in enumerate(qi_names)}
        # Value-space encodings: sorted distinct values per QI plus per-row
        # codes into them, so medians/spans/cut counts are exact in the same
        # float64 value space the legacy path compares in.
        enc_vals: list[np.ndarray] = []
        enc_codes: list[np.ndarray] = []
        for name in qi_names:
            vals, inverse = np.unique(views[name], return_inverse=True)
            enc_vals.append(vals)
            enc_codes.append(inverse.astype(np.int64))
        sens_codes = {s: engine.column_codes(s) for s in sens_names}
        sens_cats = {s: engine.column_cats(s) for s in sens_names}
        relaxed = self.mode == "relaxed"

        children_of: dict[int, tuple[PartitionGroup, PartitionGroup]] = {}
        frontier = [root]
        while frontier:
            active = [g for g in frontier if g.size >= 2]
            if not active:
                break
            n_groups = len(active)
            sizes = np.array([g.size for g in active], dtype=np.int64)
            starts = np.zeros(n_groups, dtype=np.int64)
            np.cumsum(sizes[:-1], out=starts[1:])
            gid = np.repeat(np.arange(n_groups, dtype=np.int64), sizes)
            rows_lvl = np.concatenate([g.rows for g in active])
            sens_lvl = {s: sens_codes[s][rows_lvl] for s in sens_names}
            sens_hists = {
                s: grouped_histograms(gid, sens_lvl[s], n_groups, sens_cats[s])
                for s in sens_names
            }

            scores = np.empty((n_qis, n_groups))
            medians = np.empty((n_qis, n_groups))
            feasible = np.zeros((n_qis, n_groups), dtype=bool)
            arange_g = np.arange(n_groups)
            for qi, name in enumerate(qi_names):
                vals = enc_vals[qi]
                n_cats = vals.size
                codes_lvl = enc_codes[qi][rows_lvl]
                hist = grouped_histograms(gid, codes_lvl, n_groups, n_cats)
                # cum[:, i] = per-group count of codes < i (leading zero col).
                cum = np.concatenate(
                    [np.zeros((n_groups, 1), dtype=np.int64), hist.cumsum(axis=1)],
                    axis=1,
                )
                present = hist > 0
                first = present.argmax(axis=1)
                last = n_cats - 1 - present[:, ::-1].argmax(axis=1)
                scores[qi] = (vals[last] - vals[first]) / spans[name]

                # Median = mean of the two middle order statistics, exactly
                # as np.median computes it on the gathered float64 values.
                k_lo = (sizes - 1) // 2
                k_hi = sizes // 2
                i_lo = (cum[:, 1:] <= k_lo[:, None]).sum(axis=1)
                i_hi = (cum[:, 1:] <= k_hi[:, None]).sum(axis=1)
                median = (vals[i_lo] + vals[i_hi]) / 2.0
                medians[qi] = median

                idx_lt = np.searchsorted(vals, median, side="left")
                idx_le = np.searchsorted(vals, median, side="right")
                n_lt = cum[arange_g, idx_lt]
                n_le = cum[arange_g, idx_le]
                n_eq = n_le - n_lt

                if not relaxed:
                    ok_le = (n_le > 0) & (n_le < sizes)
                    ok_lt = (n_lt > 0) & (n_lt < sizes)
                    degenerate = ~ok_le & ~ok_lt
                    boundary = np.where(ok_le, idx_le, idx_lt)
                    left_sizes = np.where(ok_le, n_le, n_lt)
                else:
                    diff = n_lt - (sizes - n_le)
                    head_bal = np.minimum(n_eq, 1 - diff)
                    left_eq_bal = head_bal + (n_eq - head_bal) // 2
                    head_skip = np.minimum(n_eq, diff)
                    left_eq_skip = (n_eq - head_skip + 1) // 2
                    left_eq = np.where(diff <= 0, left_eq_bal, left_eq_skip)
                    left_sizes = n_lt + left_eq
                    degenerate = (left_sizes == 0) | (left_sizes == sizes)
                right_sizes = sizes - left_sizes

                verdict = ~degenerate
                if sens_names:
                    if not relaxed:
                        left_mask = codes_lvl < boundary[gid]
                    else:
                        less_mask = codes_lvl < idx_lt[gid]
                        eq_mask = (codes_lvl >= idx_lt[gid]) & (
                            codes_lvl < idx_le[gid]
                        )
                        # Rank of each median-valued row among its group's
                        # median block (group row order), then the same
                        # head-then-alternate assignment as _cut_positions.
                        eq_cum = np.cumsum(eq_mask)
                        base = eq_cum[starts] - eq_mask[starts]
                        rank = eq_cum - 1 - base[gid]
                        head = np.where(diff <= 0, head_bal, head_skip)[gid]
                        balance_first = diff[gid] <= 0
                        go_left = np.where(
                            balance_first,
                            (rank < head) | (((rank - head) % 2) == 1),
                            (rank >= head) & (((rank - head) % 2) == 0),
                        )
                        left_mask = less_mask | (eq_mask & go_left)
                for model, kind in batched:
                    if kind == "sizes":
                        verdict &= np.minimum(left_sizes, right_sizes) >= model.k
                        continue
                    s = model.sensitive
                    n_sens = sens_cats[s]
                    flat = gid * n_sens + sens_lvl[s]
                    left_hist = np.bincount(
                        flat[left_mask], minlength=n_groups * n_sens
                    ).reshape(n_groups, n_sens)
                    right_hist = sens_hists[s] - left_hist
                    engine.counters["histogram_splits"] += n_groups
                    if kind == "mask":
                        verdict &= model._ok_mask(left_hist)
                        verdict &= model._ok_mask(right_hist)
                    else:  # emd
                        global_dist = engine.global_distribution(s)
                        tolerance = model.t + 1e-12
                        verdict &= (
                            model.distances_stats(_FrontierStats(left_hist, global_dist))
                            <= tolerance
                        )
                        verdict &= (
                            model.distances_stats(_FrontierStats(right_hist, global_dist))
                            <= tolerance
                        )
                feasible[qi] = verdict
            if batched:
                engine.counters["checks_fast"] += n_groups * len(batched)

            next_frontier: list[PartitionGroup] = []
            for j, group in enumerate(active):
                candidates = sorted(
                    ((float(scores[qi, j]), qi_names[qi]) for qi in range(n_qis)),
                    reverse=True,
                )
                split = None
                for _, name in candidates:
                    qi = qi_idx[name]
                    if not feasible[qi, j]:
                        continue
                    positions = self._cut_positions(
                        views[name][group.rows], float(medians[qi, j])
                    )
                    left, right = engine.split(group, positions[0], positions[1])
                    if other_models and not engine.check((left, right), other_models):
                        continue
                    split = (left, right)
                    break
                if split is not None:
                    children_of[id(group)] = split
                    next_frontier.extend(split)
            frontier = next_frontier

        # Re-emit leaves in the exact order the legacy DFS stack produces
        # them — recoded category order (hence the byte-level fingerprint)
        # depends on which leaf is labeled first.
        leaves: list[np.ndarray] = []
        stack = [root]
        while stack:
            group = stack.pop()
            kids = children_of.get(id(group))
            if kids is None:
                leaves.append(np.sort(group.rows))
            else:
                stack.extend(kids)
        return leaves

    def _best_split_fast(
        self,
        engine: PartitionEngine,
        group: PartitionGroup,
        qi_names: Sequence[str],
        views: Mapping[str, np.ndarray],
        spans: Mapping[str, float],
        models: Sequence[PrivacyModel],
    ) -> tuple[PartitionGroup, PartitionGroup] | None:
        """Try QIs in priority order; first feasible cut wins.

        Same ordering rule as the legacy path, but medians and the parent
        label entropy are computed once per node, child label histograms are
        derived by subtraction, and feasibility goes through the engine's
        stats fast path.
        """
        if group.size < 2:
            return None
        rows = group.rows
        scores = []
        medians: dict[str, float] = {}
        values_of: dict[str, np.ndarray] = {}
        if self.target is not None:
            labels = group.codes(self.target)
            parent_hist = group.histogram(self.target)
            parent_entropy = _hist_entropy(parent_hist)
        for name in qi_names:
            values = views[name][rows]
            values_of[name] = values
            if self.target is None:
                scores.append((float(values.max() - values.min()) / spans[name], name))
            else:
                median = float(np.median(values))
                medians[name] = median
                scores.append((
                    _cut_gain_from_hist(values, median, labels, parent_hist, parent_entropy),
                    name,
                ))
        for _, name in sorted(scores, reverse=True):
            median = medians.get(name)
            if median is None:
                median = float(np.median(values_of[name]))
            positions = self._cut_positions(values_of[name], median)
            if positions is None:
                continue
            left, right = engine.split(group, positions[0], positions[1])
            if engine.check((left, right), models):
                return left, right
        return None

    def _cut_positions(
        self, values: np.ndarray, median: float
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Median-cut positions (into ``values``); None if degenerate.

        The relaxed-mode balancing historically appended median-valued rows
        one at a time to whichever half was smaller; the side each row lands
        on depends only on the running size difference, so the same
        assignment is produced closed-form: with ``diff = n_less - n_more``,
        the first ``|diff|+…`` equal rows top up the smaller half until the
        halves differ by one, then sides strictly alternate.
        """
        if self.mode == "strict":
            left_mask = values <= median
            # All median-valued records stay left; degenerate if one side empty.
            if left_mask.all() or not left_mask.any():
                # Try strictly-less cut for heavily repeated medians.
                left_mask = values < median
                if left_mask.all() or not left_mask.any():
                    return None
            return np.flatnonzero(left_mask), np.flatnonzero(~left_mask)
        less = values < median
        more = values > median
        equal = ~less & ~more
        n_eq = int(equal.sum())
        diff = int(less.sum()) - int(more.sum())
        go_left = np.zeros(n_eq, dtype=bool)
        if diff <= 0:
            head = min(n_eq, 1 - diff)
            go_left[:head] = True
            go_left[head:] = (np.arange(n_eq - head) % 2) == 1
        else:
            head = min(n_eq, diff)
            go_left[head:] = (np.arange(n_eq - head) % 2) == 0
        equal_positions = np.flatnonzero(equal)
        left = np.concatenate([np.flatnonzero(less), equal_positions[go_left]])
        right = np.concatenate([np.flatnonzero(more), equal_positions[~go_left]])
        if not left.size or not right.size:
            return None
        return left, right

    # -- legacy path ---------------------------------------------------------

    def _partition_legacy(self, original, qi_names, views, spans, models, label_codes):
        all_rows = np.arange(original.n_rows)
        if not self._allowable(original, [all_rows], models):
            raise InfeasibleError(_INFEASIBLE_MSG)

        leaves: list[np.ndarray] = []
        stack = [all_rows]
        while stack:
            rows = stack.pop()
            split = self._best_split(
                original, rows, qi_names, views, spans, models, label_codes
            )
            if split is None:
                leaves.append(np.sort(rows))
            else:
                stack.extend(split)
        return leaves

    def _best_split(
        self,
        table: Table,
        rows: np.ndarray,
        qi_names: Sequence[str],
        views: Mapping[str, np.ndarray],
        spans: Mapping[str, float],
        models: Sequence[PrivacyModel],
        label_codes: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Try QIs in priority order; first feasible cut wins.

        Priority: normalized range (classic), or label information gain of
        the median cut (InfoGain variant when ``label_codes`` is given).
        """
        scores = []
        for name in qi_names:
            values = views[name][rows]
            if label_codes is None:
                scores.append((float(values.max() - values.min()) / spans[name], name))
            else:
                scores.append((self._cut_gain(values, label_codes[rows]), name))
        for _, name in sorted(scores, reverse=True):
            halves = self._cut(views[name][rows], rows)
            if halves is None:
                continue
            left, right = halves
            if self._allowable(table, [left, right], models):
                return left, right
        return None

    @staticmethod
    def _cut_gain(values: np.ndarray, labels: np.ndarray) -> float:
        """Label-entropy reduction of the median cut on ``values``."""
        median = float(np.median(values))
        left_mask = values <= median
        if left_mask.all() or not left_mask.any():
            left_mask = values < median
            if left_mask.all() or not left_mask.any():
                return -np.inf

        def entropy(mask: np.ndarray) -> float:
            counts = np.bincount(labels[mask])
            probs = counts[counts > 0] / counts.sum()
            return float(-(probs * np.log2(probs)).sum())

        n = labels.shape[0]
        n_left = int(left_mask.sum())
        parent = entropy(np.ones(n, dtype=bool))
        children = (n_left * entropy(left_mask) + (n - n_left) * entropy(~left_mask)) / n
        return parent - children

    def _cut(self, values: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        """Median cut of ``rows`` by ``values``; None if degenerate."""
        if rows.size < 2:
            return None
        median = float(np.median(values))
        if self.mode == "strict":
            left_mask = values <= median
            # All median-valued records stay left; degenerate if one side empty.
            if left_mask.all() or not left_mask.any():
                # Try strictly-less cut for heavily repeated medians.
                left_mask = values < median
                if left_mask.all() or not left_mask.any():
                    return None
            return rows[left_mask], rows[~left_mask]
        # relaxed: split median-valued records to balance halves
        less = values < median
        more = values > median
        equal = ~less & ~more
        left = list(rows[less])
        right = list(rows[more])
        for row in rows[equal]:
            (left if len(left) <= len(right) else right).append(row)
        if not left or not right:
            return None
        return np.array(left, dtype=rows.dtype), np.array(right, dtype=rows.dtype)

    def _allowable(self, table: Table, groups: list[np.ndarray], models: Sequence[PrivacyModel]) -> bool:
        """Would these groups, as equivalence classes, satisfy the models?"""
        partition = classes_from_groups(groups, table.n_rows)
        return all(model.check(table, partition) for model in models)

    def __repr__(self) -> str:
        return f"Mondrian(mode={self.mode!r})"


def _cut_gain_from_hist(
    values: np.ndarray,
    median: float,
    labels: np.ndarray,
    parent_hist: np.ndarray,
    parent_entropy: float,
) -> float:
    """InfoGain score of the median cut, from the node's cached label counts.

    The right half's histogram is the parent's minus the left's — no second
    bincount — and the parent entropy arrives precomputed (the legacy path
    rebuilt it per QI). Identical floats to :meth:`Mondrian._cut_gain`: the
    histograms differ from the legacy bincounts only in trailing zero bins,
    which the entropy filters out.
    """
    left_mask = values <= median
    if left_mask.all() or not left_mask.any():
        left_mask = values < median
        if left_mask.all() or not left_mask.any():
            return -np.inf
    n = labels.shape[0]
    n_left = int(left_mask.sum())
    left_hist = np.bincount(labels[left_mask], minlength=parent_hist.shape[0])
    right_hist = parent_hist - left_hist
    children = (
        n_left * _hist_entropy(left_hist) + (n - n_left) * _hist_entropy(right_hist)
    ) / n
    return parent_entropy - children
