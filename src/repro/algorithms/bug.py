"""Bottom-Up Generalization (Wang, Yu & Chakraborty, ICDM 2004).

A greedy full-domain search that climbs the generalization lattice one
single-attribute step at a time, choosing at each step the attribute whose
raise maximizes the **anonymity-gain / information-loss ratio**:

    score(step) = (min(A(after), k) − A(before)) / (IL(after) − IL(before))

where ``A(node)`` is the minimum equivalence-class size under the node (the
"anonymity" of the table) and ``IL`` is the per-cell NCP loss of the node.
Capping the gain at ``k`` follows the paper: generalizing past the target
anonymity earns no credit, which steers the greedy walk away from needless
over-generalization.

Contrast with :class:`~repro.algorithms.Datafly`, which raises the attribute
with the *most distinct values* and never looks at either anonymity or loss
— BUG is the metric-driven member of the greedy family and is the ablation
partner in experiment E23. Like Datafly it returns a single (locally, not
globally, minimal) node, so it is cheap: at most ``sum(heights)`` rounds of
at most ``n_qi`` candidate checks each.

Supports any combination of generalization-monotone privacy models; the
anonymity term always uses min class size (the k-anonymity surrogate that
drives all of them upward), while satisfaction is tested against the actual
models.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_node
from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.lattice import GeneralizationLattice
from ..core.partition import partition_by_qi
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from ..privacy.k_anonymity import KAnonymity
from .base import check_models, prepare_input, suppress_failing

__all__ = ["BottomUpGeneralization"]

Node = tuple[int, ...]


class BottomUpGeneralization:
    """Greedy AG/IL-driven bottom-up full-domain generalization."""

    def __init__(self, max_suppression: float = 0.0):
        self.max_suppression = float(max_suppression)
        self.name = "bottom-up"
        self.stats: dict = {}

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi_names)
        target_k = _target_k(models)
        self.stats = {"nodes_checked": 0, "steps": 0, "lattice_size": lattice.size}

        node: Node = lattice.bottom
        candidate = apply_node(original, hierarchies, qi_names, node)
        partition = partition_by_qi(candidate, qi_names)
        anonymity = partition.min_size()
        loss = self._node_loss(original, hierarchies, qi_names, node)

        while not check_models(candidate, partition, models):
            if node == lattice.top:
                break  # even the top node fails; fall through to suppression
            best = self._best_step(
                original, hierarchies, qi_names, node, lattice, anonymity, loss, target_k
            )
            if best is None:  # pragma: no cover - top handled above
                break
            node, candidate, partition, anonymity, loss = best
            self.stats["steps"] += 1

        suppressed, kept = 0, None
        if not check_models(candidate, partition, models):
            candidate, kept, suppressed = suppress_failing(
                candidate, qi_names, models, self.max_suppression
            )
        return Release(
            table=candidate,
            schema=schema,
            algorithm=self.name,
            node=node,
            suppressed=suppressed,
            original_n_rows=original.n_rows,
            kept_rows=kept,
            info={"stats": dict(self.stats)},
        )

    # -- greedy step ---------------------------------------------------------

    def _best_step(
        self,
        table: Table,
        hierarchies: Mapping[str, HierarchyLike],
        qi_names: Sequence[str],
        node: Node,
        lattice: GeneralizationLattice,
        anonymity: int,
        loss: float,
        target_k: int,
    ):
        """Evaluate every single-attribute raise; return the best candidate."""
        best = None
        best_key: tuple | None = None
        for successor in lattice.successors(node):
            self.stats["nodes_checked"] += 1
            candidate = apply_node(table, hierarchies, qi_names, successor)
            partition = partition_by_qi(candidate, qi_names)
            cand_anonymity = partition.min_size()
            cand_loss = self._node_loss(table, hierarchies, qi_names, successor)
            gain = min(cand_anonymity, target_k) - min(anonymity, target_k)
            cost = max(cand_loss - loss, 1e-12)
            # Ties: prefer the cheaper raise, then the more anonymous one.
            key = (gain / cost, -cost, cand_anonymity)
            if best_key is None or key > best_key:
                best_key = key
                best = (successor, candidate, partition, cand_anonymity, cand_loss)
        return best

    def _node_loss(
        self,
        table: Table,
        hierarchies: Mapping[str, HierarchyLike],
        qi_names: Sequence[str],
        node: Node,
    ) -> float:
        """Average per-cell NCP of a full-domain node, computed analytically.

        No table materialization needed: for categorical QIs the loss of a
        row is ``(leaves(label) - 1)/(|domain| - 1)``; for numeric QIs it is
        the interval width over the span.
        """
        total = 0.0
        for name, level in zip(qi_names, node):
            hierarchy = hierarchies[name]
            column = table.column(name)
            if isinstance(hierarchy, IntervalHierarchy):
                if level == 0:
                    continue
                assert column.values is not None
                bins = hierarchy.bin_values(column.values, int(level))
                total += float(hierarchy.width_fraction(int(level))[bins].mean())
            else:
                assert isinstance(hierarchy, Hierarchy)
                domain_size = len(hierarchy.ground)
                if domain_size <= 1:
                    continue
                generalized = hierarchy.generalize_column(column, int(level))
                assert generalized.codes is not None
                cover = hierarchy.leaf_count(int(level))
                total += float(
                    ((cover[generalized.codes] - 1) / (domain_size - 1)).mean()
                )
        return total / len(qi_names)

    def __repr__(self) -> str:
        return f"BottomUpGeneralization(max_suppression={self.max_suppression})"


def _target_k(models: Sequence[PrivacyModel]) -> int:
    """The k that drives the anonymity-gain cap (2 if no k-anonymity model)."""
    ks = [m.k for m in models if isinstance(m, KAnonymity)]
    if ks:
        return max(ks)
    # ℓ-diversity/t-closeness still push class sizes up; use a soft cap.
    ells = [getattr(m, "l", None) for m in models]
    ells = [int(e) for e in ells if isinstance(e, (int, float))]
    return max(ells) if ells else 2
