"""Datafly (Sweeney).

The classic greedy full-domain generalizer: while the table is not
k-anonymous (more precisely: while the records violating the models exceed
the suppression budget), generalize one step the quasi-identifier with the
most distinct values, then suppress whatever small classes remain.

The "most distinct values" heuristic is fast but utility-blind; the survey's
experiments use it as the baseline that smarter searches (Incognito,
Mondrian, TDS) beat. An alternative ``heuristic="loss"`` ablation picks the
attribute whose single-step generalization costs the least NCP — used by the
E3 ablation bench.

Node checks and the distinct-value heuristics run on the shared
:class:`~repro.core.engine.LatticeEvaluator`; only the final winning node is
materialized into a generalized table.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.engine import LatticeEvaluator
from ..core.generalize import HierarchyLike, apply_node
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input, suppress_rows

__all__ = ["Datafly"]


class Datafly:
    """Greedy full-domain generalization with record suppression."""

    #: ``anonymize`` accepts an external LatticeEvaluator (batch sharing).
    uses_evaluator = True

    def __init__(self, max_suppression: float = 0.05, heuristic: str = "distinct"):
        if heuristic not in ("distinct", "loss"):
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.max_suppression = float(max_suppression)
        self.heuristic = heuristic
        self.name = f"datafly[{heuristic}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        evaluator: LatticeEvaluator | None = None,
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        if evaluator is None:
            evaluator = LatticeEvaluator(original, qi_names, hierarchies)
        heights = [hierarchies[name].height for name in qi_names]
        node = [0] * len(qi_names)

        while True:
            if evaluator.check(node, models):
                final = apply_node(original, hierarchies, qi_names, node)
                suppressed = 0
                kept = None
                break
            # Suppression short-circuit: if few enough rows fail, suppress.
            # The engine's failing rows feed both the budget admission and
            # the drop itself (one failing-mask computation), so the two can
            # never disagree on borderline float verdicts.
            drop = evaluator.failing_rows(node, models)
            if (
                drop.size <= self.max_suppression * original.n_rows
                and drop.size < original.n_rows
            ):
                final, kept, suppressed = suppress_rows(
                    evaluator.materialize(node), drop, self.max_suppression
                )
                break
            target = self._pick_attribute(evaluator, node, heights)
            if target is None:
                raise InfeasibleError(
                    "all quasi-identifiers fully generalized and the models "
                    "still fail within the suppression budget"
                )
            node[target] += 1

        return Release(
            table=final,
            schema=schema,
            algorithm=self.name,
            node=tuple(node),
            suppressed=suppressed,
            original_n_rows=original.n_rows,
            kept_rows=kept,
            info={"heuristic": self.heuristic},
        )

    def _pick_attribute(
        self,
        evaluator: LatticeEvaluator,
        node: Sequence[int],
        heights: Sequence[int],
    ) -> int | None:
        """Index of the QI to generalize next, or None if all are topped out."""
        raisable = [i for i in range(len(node)) if node[i] < heights[i]]
        if not raisable:
            return None
        if self.heuristic == "distinct":
            counts = evaluator.distinct_counts(node)
            return max(raisable, key=counts.__getitem__)
        # "loss" ablation: raise the attribute that *keeps* the most distinct
        # values after its one-step generalization (least coarsening first).
        return max(
            raisable, key=lambda i: evaluator.distinct_after(node, i, node[i] + 1)
        )

    def __repr__(self) -> str:
        return f"Datafly(max_suppression={self.max_suppression}, heuristic={self.heuristic!r})"
