"""Datafly (Sweeney).

The classic greedy full-domain generalizer: while the table is not
k-anonymous (more precisely: while the records violating the models exceed
the suppression budget), generalize one step the quasi-identifier with the
most distinct values, then suppress whatever small classes remain.

The "most distinct values" heuristic is fast but utility-blind; the survey's
experiments use it as the baseline that smarter searches (Incognito,
Mondrian, TDS) beat. An alternative ``heuristic="loss"`` ablation picks the
attribute whose single-step generalization costs the least NCP — used by the
E3 ablation bench.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.generalize import HierarchyLike, apply_node
from ..core.partition import partition_by_qi
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import check_models, prepare_input, suppress_failing

__all__ = ["Datafly"]


class Datafly:
    """Greedy full-domain generalization with record suppression."""

    def __init__(self, max_suppression: float = 0.05, heuristic: str = "distinct"):
        if heuristic not in ("distinct", "loss"):
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.max_suppression = float(max_suppression)
        self.heuristic = heuristic
        self.name = f"datafly[{heuristic}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        heights = [hierarchies[name].height for name in qi_names]
        node = [0] * len(qi_names)

        while True:
            candidate = apply_node(original, hierarchies, qi_names, node)
            partition = partition_by_qi(candidate, qi_names)
            if check_models(candidate, partition, models):
                suppressed = 0
                kept = None
                final = candidate
                break
            # Suppression short-circuit: if few enough rows fail, suppress.
            try:
                final, kept, suppressed = suppress_failing(
                    candidate, qi_names, models, self.max_suppression
                )
                break
            except InfeasibleError:
                pass
            target = self._pick_attribute(original, candidate, qi_names, node, heights, hierarchies)
            if target is None:
                raise InfeasibleError(
                    "all quasi-identifiers fully generalized and the models "
                    "still fail within the suppression budget"
                )
            node[target] += 1

        return Release(
            table=final,
            schema=schema,
            algorithm=self.name,
            node=tuple(node),
            suppressed=suppressed,
            original_n_rows=original.n_rows,
            kept_rows=kept,
            info={"heuristic": self.heuristic},
        )

    def _pick_attribute(
        self,
        original: Table,
        candidate: Table,
        qi_names: Sequence[str],
        node: Sequence[int],
        heights: Sequence[int],
        hierarchies: Mapping[str, HierarchyLike],
    ) -> int | None:
        """Index of the QI to generalize next, or None if all are topped out."""
        raisable = [i for i in range(len(qi_names)) if node[i] < heights[i]]
        if not raisable:
            return None
        if self.heuristic == "distinct":
            return max(raisable, key=lambda i: candidate.column(qi_names[i]).n_distinct())
        # "loss" ablation: raise the attribute that *keeps* the most distinct
        # values after its one-step generalization (least coarsening first).
        def distinct_after_raise(i: int) -> int:
            name = qi_names[i]
            raised = hierarchies[name].generalize_column(original.column(name), node[i] + 1)
            return raised.n_distinct()

        return max(raisable, key=distinct_after_raise)

    def __repr__(self) -> str:
        return f"Datafly(max_suppression={self.max_suppression}, heuristic={self.heuristic!r})"
