"""Microaggregation via MDAV (Domingo-Ferrer & Torra).

A perturbative alternative to generalization for numeric quasi-identifiers:
records are clustered into groups of at least ``k`` similar records, and each
record's QI vector is replaced by its group centroid. The published table is
k-anonymous over the (replaced) QIs while keeping them numeric — no interval
labels — which matters for downstream statistics.

MDAV (Maximum Distance to Average Vector), the standard fixed-size
heuristic:

1. compute the centroid of the remaining records;
2. find the record ``r`` farthest from the centroid, group ``r`` with its
   ``k-1`` nearest neighbours;
3. find the record ``s`` farthest from ``r``, group ``s`` with its ``k-1``
   nearest neighbours;
4. repeat until fewer than ``2k`` records remain, which form the last group.

Distances are Euclidean over z-score standardized QI columns. Categorical
QIs, if present, are handled by replacing each group's values with the
group's modal value (a common extension); the k-anonymity guarantee then
applies to the numeric projection only, which is how the SSE experiments
(E13) use it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Column, Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["MDAVMicroaggregation", "within_group_sse"]


class MDAVMicroaggregation:
    """Fixed-size MDAV clustering with centroid replacement."""

    def __init__(self, k: int):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = int(k)
        self.name = f"mdav[k={k}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike] | None = None,
        models: Sequence[PrivacyModel] = (),
    ) -> Release:
        original = prepare_input(table, schema, hierarchies or {n: _DUMMY for n in schema.categorical_quasi_identifiers})
        numeric = schema.numeric_quasi_identifiers
        if not numeric:
            raise InfeasibleError("MDAV needs at least one numeric quasi-identifier")
        if original.n_rows < self.k:
            raise InfeasibleError(f"table has fewer than k={self.k} rows")

        matrix = np.stack([original.values(name) for name in numeric], axis=1).astype(np.float64)
        groups = self.cluster(matrix)

        # Replace numeric QIs by group centroids.
        replaced = matrix.copy()
        for group in groups:
            replaced[group] = matrix[group].mean(axis=0)
        new_columns = [
            Column.numeric(name, replaced[:, j]) for j, name in enumerate(numeric)
        ]
        # Categorical QIs: modal value per group.
        for name in schema.categorical_quasi_identifiers:
            codes = original.codes(name).copy()
            for group in groups:
                histogram = np.bincount(codes[group])
                codes[group] = int(histogram.argmax())
            new_columns.append(
                Column.from_codes(name, codes, original.column(name).categories)
            )

        result = original.replace(*new_columns)
        return Release(
            table=result,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"groups": groups, "sse": within_group_sse(matrix, groups)},
        )

    # -- clustering ----------------------------------------------------------

    def cluster(self, matrix: np.ndarray) -> list[np.ndarray]:
        """MDAV grouping of the rows of ``matrix``; returns row-index arrays."""
        n = matrix.shape[0]
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        z = (matrix - matrix.mean(axis=0)) / std

        remaining = np.arange(n)
        groups: list[np.ndarray] = []
        while remaining.size >= 2 * self.k:
            points = z[remaining]
            centroid = points.mean(axis=0)
            far_r = int(np.argmax(_sq_dist(points, centroid)))
            group_r = _nearest(points, far_r, self.k)
            first = remaining[group_r]

            mask = np.ones(remaining.size, dtype=bool)
            mask[group_r] = False
            rest = remaining[mask]
            points_rest = z[rest]
            far_s = int(np.argmax(_sq_dist(points_rest, points[far_r])))
            group_s = _nearest(points_rest, far_s, self.k)
            second = rest[group_s]

            groups.extend([np.sort(first), np.sort(second)])
            mask2 = np.ones(rest.size, dtype=bool)
            mask2[group_s] = False
            remaining = rest[mask2]

        if remaining.size >= self.k:
            groups.append(np.sort(remaining))
        elif remaining.size:
            # Fewer than k leftovers: merge into the nearest existing group.
            if not groups:
                raise InfeasibleError("cannot form any group of size k")
            leftovers = z[remaining]
            centroids = np.stack([z[g].mean(axis=0) for g in groups])
            for row, point in zip(remaining, leftovers):
                nearest = int(np.argmin(_sq_dist(centroids, point)))
                groups[nearest] = np.sort(np.append(groups[nearest], row))
        return groups

    def __repr__(self) -> str:
        return f"MDAVMicroaggregation(k={self.k})"


def within_group_sse(matrix: np.ndarray, groups: Sequence[np.ndarray]) -> float:
    """Sum of squared distances to group centroids (information loss)."""
    total = 0.0
    for group in groups:
        points = matrix[group]
        centroid = points.mean(axis=0)
        total += float(((points - centroid) ** 2).sum())
    return total


def _sq_dist(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    return ((points - reference) ** 2).sum(axis=1)


def _nearest(points: np.ndarray, anchor: int, k: int) -> np.ndarray:
    """Indices (into ``points``) of ``anchor`` plus its k-1 nearest others."""
    distances = _sq_dist(points, points[anchor])
    return np.argsort(distances, kind="stable")[:k]


class _Dummy:
    height = 0


_DUMMY = _Dummy()
