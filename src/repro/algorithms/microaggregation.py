"""Microaggregation via MDAV (Domingo-Ferrer & Torra).

A perturbative alternative to generalization for numeric quasi-identifiers:
records are clustered into groups of at least ``k`` similar records, and each
record's QI vector is replaced by its group centroid. The published table is
k-anonymous over the (replaced) QIs while keeping them numeric — no interval
labels — which matters for downstream statistics.

MDAV (Maximum Distance to Average Vector), the standard fixed-size
heuristic:

1. compute the centroid of the remaining records;
2. find the record ``r`` farthest from the centroid, group ``r`` with its
   ``k-1`` nearest neighbours;
3. find the record ``s`` farthest from ``r``, group ``s`` with its ``k-1``
   nearest neighbours;
4. repeat until fewer than ``2k`` records remain, which form the last group.

Distances are Euclidean over z-score standardized QI columns. Categorical
QIs, if present, are handled by replacing each group's values with the
group's modal value (a common extension); the k-anonymity guarantee then
applies to the numeric projection only, which is how the SSE experiments
(E13) use it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike
from ..core.partition_engine import grouped_histograms
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Column, Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["MDAVMicroaggregation", "within_group_sse"]


class MDAVMicroaggregation:
    """Fixed-size MDAV clustering with centroid replacement.

    ``engine="partition"`` (default) vectorizes the two group-local loops —
    k-nearest selection via ``np.argpartition`` instead of a full stable
    sort, and modal categorical replacement via one flattened grouped
    bincount instead of a bincount per group. Both are provably
    set/argmax-identical to the historic code, so releases are byte-equal;
    ``engine="legacy"`` keeps the original loops as the benchmark baseline.
    """

    def __init__(self, k: int, engine: str = "partition"):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if engine not in ("partition", "legacy"):
            raise ValueError(
                f"engine must be 'partition' or 'legacy', got {engine!r}"
            )
        self.k = int(k)
        self.engine = engine
        self.name = f"mdav[k={k}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike] | None = None,
        models: Sequence[PrivacyModel] = (),
    ) -> Release:
        original = prepare_input(table, schema, hierarchies or {n: _DUMMY for n in schema.categorical_quasi_identifiers})
        numeric = schema.numeric_quasi_identifiers
        if not numeric:
            raise InfeasibleError("MDAV needs at least one numeric quasi-identifier")
        if original.n_rows < self.k:
            raise InfeasibleError(f"table has fewer than k={self.k} rows")

        matrix = np.stack([original.values(name) for name in numeric], axis=1).astype(np.float64)
        groups = self.cluster(matrix)

        # Replace numeric QIs by group centroids.
        replaced = matrix.copy()
        for group in groups:
            replaced[group] = matrix[group].mean(axis=0)
        new_columns = [
            Column.numeric(name, replaced[:, j]) for j, name in enumerate(numeric)
        ]
        # Categorical QIs: modal value per group.
        group_labels = None
        if self.engine == "partition" and schema.categorical_quasi_identifiers:
            group_labels = np.empty(original.n_rows, dtype=np.int64)
            for gid, group in enumerate(groups):
                group_labels[group] = gid
        for name in schema.categorical_quasi_identifiers:
            codes = original.codes(name).copy()
            if group_labels is not None:
                # One flattened bincount for all groups; per-group argmax
                # matches the per-group loop exactly (padding a histogram
                # with zero bins cannot displace a first-maximum winner).
                n_cats = len(original.column(name).categories)
                hists = grouped_histograms(group_labels, codes, len(groups), n_cats)
                modal = hists.argmax(axis=1).astype(codes.dtype)
                codes = modal[group_labels]
            else:
                for group in groups:
                    histogram = np.bincount(codes[group])
                    codes[group] = int(histogram.argmax())
            new_columns.append(
                Column.from_codes(name, codes, original.column(name).categories)
            )

        result = original.replace(*new_columns)
        return Release(
            table=result,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"groups": groups, "sse": within_group_sse(matrix, groups)},
        )

    # -- clustering ----------------------------------------------------------

    def cluster(self, matrix: np.ndarray) -> list[np.ndarray]:
        """MDAV grouping of the rows of ``matrix``; returns row-index arrays."""
        n = matrix.shape[0]
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        z = (matrix - matrix.mean(axis=0)) / std

        remaining = np.arange(n)
        groups: list[np.ndarray] = []
        while remaining.size >= 2 * self.k:
            points = z[remaining]
            centroid = points.mean(axis=0)
            far_r = int(np.argmax(_sq_dist(points, centroid)))
            group_r = _nearest(points, far_r, self.k, fast=self.engine == "partition")
            first = remaining[group_r]

            mask = np.ones(remaining.size, dtype=bool)
            mask[group_r] = False
            rest = remaining[mask]
            points_rest = z[rest]
            far_s = int(np.argmax(_sq_dist(points_rest, points[far_r])))
            group_s = _nearest(points_rest, far_s, self.k, fast=self.engine == "partition")
            second = rest[group_s]

            groups.extend([np.sort(first), np.sort(second)])
            mask2 = np.ones(rest.size, dtype=bool)
            mask2[group_s] = False
            remaining = rest[mask2]

        if remaining.size >= self.k:
            groups.append(np.sort(remaining))
        elif remaining.size:
            # Fewer than k leftovers: merge into the nearest existing group.
            if not groups:
                raise InfeasibleError("cannot form any group of size k")
            leftovers = z[remaining]
            centroids = np.stack([z[g].mean(axis=0) for g in groups])
            for row, point in zip(remaining, leftovers):
                nearest = int(np.argmin(_sq_dist(centroids, point)))
                groups[nearest] = np.sort(np.append(groups[nearest], row))
        return groups

    def __repr__(self) -> str:
        return f"MDAVMicroaggregation(k={self.k})"


def within_group_sse(matrix: np.ndarray, groups: Sequence[np.ndarray]) -> float:
    """Sum of squared distances to group centroids (information loss)."""
    total = 0.0
    for group in groups:
        points = matrix[group]
        centroid = points.mean(axis=0)
        total += float(((points - centroid) ** 2).sum())
    return total


def _sq_dist(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    return ((points - reference) ** 2).sum(axis=1)


def _nearest(points: np.ndarray, anchor: int, k: int, fast: bool = False) -> np.ndarray:
    """Indices (into ``points``) of ``anchor`` plus its k-1 nearest others.

    ``fast`` selects the same *set* via ``np.argpartition`` (O(n) instead of
    O(n log n)): every index strictly inside the k-th smallest distance,
    plus the lowest-indexed ties at that distance — exactly what the stable
    full sort's first k entries contain. Callers only consume the set (the
    result is masked and re-sorted), so the orderings need not match.
    """
    distances = _sq_dist(points, points[anchor])
    if not fast or k >= distances.size:
        return np.argsort(distances, kind="stable")[:k]
    nearest_k = np.argpartition(distances, k - 1)[:k]
    threshold = distances[nearest_k].max()
    below = np.flatnonzero(distances < threshold)
    ties = np.flatnonzero(distances == threshold)
    return np.concatenate([below, ties[: k - below.size]])


class _Dummy:
    height = 0


_DUMMY = _Dummy()
