"""Optimal Lattice Anonymization (OLA; El Emam et al.).

Full-domain search that finds the *globally optimal* (lowest-loss)
satisfying node under a suppression budget, using binary search over lattice
strata:

1. The predicate "node satisfies the models within the suppression budget"
   is monotone along every lattice path.
2. Binary-search the strata of each sub-lattice between known-unsatisfying
   bottom and known-satisfying top, tagging up-sets/down-sets to avoid
   re-evaluation.
3. Among all minimal satisfying nodes, return the one minimizing a loss
   function (default: non-uniform entropy proxy = sum of level fractions,
   ties broken by suppression count).

Instrumentation mirrors Incognito's: ``stats["nodes_checked"]`` vs lattice
size.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..core.engine import LatticeEvaluator
from ..core.generalize import HierarchyLike, apply_node
from ..core.lattice import GeneralizationLattice
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input, suppress_rows

__all__ = ["OLA"]

Node = tuple[int, ...]


class OLA:
    """Binary-search lattice anonymization with a suppression budget."""

    #: ``anonymize`` accepts an external LatticeEvaluator (batch sharing).
    uses_evaluator = True

    def __init__(
        self,
        max_suppression: float = 0.05,
        loss: Callable[[Node, Sequence[int]], float] | None = None,
    ):
        self.max_suppression = float(max_suppression)
        self.loss = loss or self._default_loss
        self.name = "ola"
        self.stats: dict = {}

    @staticmethod
    def _default_loss(node: Node, heights: Sequence[int]) -> float:
        """Sum of per-attribute level fractions (precision metric)."""
        return sum(
            (level / height) if height else 0.0
            for level, height in zip(node, heights)
        )

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        evaluator: LatticeEvaluator | None = None,
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        if evaluator is None:
            evaluator = LatticeEvaluator(original, qi_names, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi_names)
        heights = lattice.heights
        self.stats = {"nodes_checked": 0, "lattice_size": lattice.size}
        # Deterministic cache fill: OLA probes the top first (which can
        # never serve as a roll-up ancestor), so mid-stratum probes used to
        # be O(n_rows) from-rows computations in an order parallel batch
        # jobs race over. Seeding the bottom gives every probe a roll-up
        # ancestor, pinning the engine's from_rows/rollups profile at any
        # worker count — and making each probe O(n_groups) instead.
        evaluator.stats(lattice.bottom)

        satisfying: set[Node] = set()
        unsatisfying: set[Node] = set()

        def evaluate(node: Node) -> bool:
            if node in satisfying:
                return True
            if node in unsatisfying:
                return False
            self.stats["nodes_checked"] += 1
            ok = evaluator.evaluate(node, models, self.max_suppression)
            if ok:
                satisfying.update(lattice.up_set(node))
            else:
                down = {
                    other
                    for other in lattice.nodes()
                    if GeneralizationLattice.dominates(node, other)
                }
                unsatisfying.update(down)
            return ok

        if not evaluate(lattice.top):
            raise InfeasibleError(
                "even the fully-generalized table violates the models within "
                "the suppression budget"
            )

        # Stratified binary search: repeatedly probe mid-height nodes that
        # are still unclassified, narrowing towards the minimal frontier.
        strata = list(lattice.levels())
        low, high = 0, len(strata) - 1
        while low < high:
            mid = (low + high) // 2
            unresolved = [
                node
                for node in strata[mid]
                if node not in satisfying and node not in unsatisfying
            ]
            any_satisfying = any(evaluate(node) for node in unresolved) or any(
                node in satisfying for node in strata[mid]
            )
            if any_satisfying:
                high = mid
            else:
                low = mid + 1

        # Sweep the (small) remaining unresolved frontier to finalize minima.
        for stratum in strata:
            for node in stratum:
                if node not in satisfying and node not in unsatisfying:
                    evaluate(node)

        minimal = [
            node
            for node in satisfying
            if not any(
                predecessor in satisfying
                for predecessor in lattice.predecessors(node)
            )
        ]
        if not minimal:  # pragma: no cover - top evaluated satisfying above
            raise InfeasibleError("no satisfying node found")

        best = min(minimal, key=lambda node: self.loss(node, heights))
        candidate = apply_node(original, hierarchies, qi_names, best)
        if evaluator.check(best, models):
            kept, suppressed = None, 0
        else:
            candidate, kept, suppressed = suppress_rows(
                candidate, evaluator.failing_rows(best, models), self.max_suppression
            )
        return Release(
            table=candidate,
            schema=schema,
            algorithm=self.name,
            node=best,
            suppressed=suppressed,
            original_n_rows=original.n_rows,
            kept_rows=kept,
            info={"minimal_nodes": sorted(minimal), "stats": dict(self.stats)},
        )

    def __repr__(self) -> str:
        return f"OLA(max_suppression={self.max_suppression})"
