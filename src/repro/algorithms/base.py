"""Algorithm protocol and shared machinery.

Every anonymization algorithm takes an original :class:`~repro.core.Table`,
a :class:`~repro.core.Schema`, the generalization hierarchies, and one or
more privacy models; it returns a :class:`~repro.core.Release`.

Shared here:

* :func:`prepare_input` — validates the schema, strips identifying columns.
* :func:`suppress_failing` — standard record-suppression step: drop the rows
  of equivalence classes that still violate the models, within a suppression
  budget.
* :class:`AnonymizationAlgorithm` — the protocol.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.generalize import HierarchyLike
from ..core.partition import EquivalenceClasses, partition_by_qi
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel, failing_rows

__all__ = [
    "AnonymizationAlgorithm",
    "prepare_input",
    "suppress_failing",
    "suppress_rows",
    "check_models",
    "failing_of_models",
]


@runtime_checkable
class AnonymizationAlgorithm(Protocol):
    """Protocol all algorithms implement."""

    name: str

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        ...


def prepare_input(table: Table, schema: Schema, hierarchies: Mapping[str, HierarchyLike]) -> Table:
    """Validate and strip direct identifiers from the input table."""
    schema.validate(table)
    for name in schema.categorical_quasi_identifiers:
        if name not in hierarchies:
            raise InfeasibleError(f"no hierarchy supplied for categorical QI {name!r}")
    if schema.identifying:
        table = table.drop(*schema.identifying)
    return table


def check_models(table: Table, partition: EquivalenceClasses, models: Sequence[PrivacyModel]) -> bool:
    return all(model.check(table, partition) for model in models)


def failing_of_models(
    table: Table, partition: EquivalenceClasses, models: Sequence[PrivacyModel]
) -> list[int]:
    failing: set[int] = set()
    for model in models:
        failing.update(model.failing_groups(table, partition))
    return sorted(failing)


def suppress_failing(
    table: Table,
    qi_names: Sequence[str],
    models: Sequence[PrivacyModel],
    max_suppression: float,
    partition: EquivalenceClasses | None = None,
) -> tuple[Table, np.ndarray, int]:
    """Drop rows of equivalence classes that violate the models.

    Returns ``(kept_table, kept_row_indices, n_suppressed)``. Raises
    :class:`InfeasibleError` if suppression would exceed
    ``max_suppression * n_rows`` or would empty the table.

    Callers that already partitioned ``table`` can pass it via ``partition``
    to avoid partitioning the same candidate twice. (The lattice searches
    go one step further and call :func:`suppress_rows` with the evaluation
    engine's own failing rows, bypassing the model re-check entirely.)
    """
    if partition is None:
        partition = partition_by_qi(table, qi_names)
    failing = failing_of_models(table, partition, models)
    return suppress_rows(table, failing_rows(partition, failing), max_suppression)


def suppress_rows(
    table: Table, drop: np.ndarray, max_suppression: float
) -> tuple[Table, np.ndarray, int]:
    """Drop the given row indices within the suppression budget.

    The mechanics of :func:`suppress_failing` with the failing set supplied
    by the caller — lattice searches pass the evaluation engine's own
    failing rows so the admission verdict and the suppression step cannot
    disagree on borderline float comparisons.
    """
    if drop.size > max_suppression * table.n_rows:
        raise InfeasibleError(
            f"suppressing {drop.size}/{table.n_rows} rows exceeds the "
            f"{max_suppression:.0%} suppression budget"
        )
    if drop.size == table.n_rows:
        raise InfeasibleError("every record would be suppressed")
    keep = np.ones(table.n_rows, dtype=bool)
    keep[drop] = False
    kept_indices = np.flatnonzero(keep)
    return table.take(kept_indices), kept_indices, int(drop.size)
