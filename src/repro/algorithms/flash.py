"""Flash lattice search (Kohlmayer, Prasser, Eckert, Kemper & Kuhn, 2012).

Flash is the generalization-lattice search used by the ARX anonymization
tool. Like Incognito and OLA it walks the full-domain lattice looking for
minimal satisfying nodes, but it does so with a *greedy path / binary check*
strategy that is markedly cheaper in practice:

1. visit the lattice bottom-up, one total-height stratum at a time;
2. from every node whose state is still unknown, greedily build an upward
   **path** (a chain of direct successors, preferring successors with the
   smallest average hierarchy-level ratio — the paper's heuristic keeps
   paths in the "cheap" corner of the lattice);
3. **binary-search** the path for the lowest satisfying node — anonymity is
   monotone along a chain, so a single bisection classifies the whole path;
4. propagate the outcome predictively: a satisfying node tags its entire
   up-set satisfying, a violating node tags its entire down-set violating.

Every lattice node ends up classified, so the minimal satisfying antichain
is exact — Flash and Incognito return the same set of minimal nodes (tested
in ``tests/test_flash.py``); only the number of explicit model checks
differs. Instrumentation mirrors :class:`~repro.algorithms.Incognito`:
``stats`` records nodes checked vs. lattice size (experiment E23).

The release node is chosen among the minimal antichain exactly as Incognito
does (lowest total height, ties broken by most equivalence classes) so the
two algorithms are interchangeable in pipelines.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..core.engine import LatticeEvaluator
from ..core.generalize import HierarchyLike, apply_node
from ..core.lattice import GeneralizationLattice
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input, suppress_rows

__all__ = ["Flash"]

Node = tuple[int, ...]

_UNKNOWN, _SATISFYING, _VIOLATING = 0, 1, 2


class Flash:
    """Greedy-path / binary-check search for all minimal satisfying nodes.

    Parameters
    ----------
    max_suppression:
        fraction of records that may be dropped if the chosen node still
        leaves violating equivalence classes (normally zero — the node
        already satisfies the models).
    score:
        optional ``score(table, node) -> float``; the minimal node with the
        lowest score is released. Defaults to Incognito's key (total height,
        then negated EC count).
    """

    #: ``anonymize`` accepts an external LatticeEvaluator (batch sharing).
    uses_evaluator = True

    def __init__(
        self,
        max_suppression: float = 0.0,
        score: Callable[[Table, Node], float] | None = None,
    ):
        self.max_suppression = float(max_suppression)
        self.score = score
        self.name = "flash"
        self.stats: dict = {}

    # -- public API ----------------------------------------------------------

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        evaluator: LatticeEvaluator | None = None,
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        if evaluator is None:
            evaluator = LatticeEvaluator(original, qi_names, hierarchies)
        minimal = self.find_minimal_nodes(
            original, qi_names, hierarchies, models, evaluator=evaluator
        )
        if not minimal:
            raise InfeasibleError("no full-domain generalization satisfies the models")
        best = self._choose(original, evaluator, minimal)
        candidate = apply_node(original, hierarchies, qi_names, best)

        suppressed, kept = 0, None
        if not evaluator.check(best, models):  # pragma: no cover - safety
            candidate, kept, suppressed = suppress_rows(
                candidate, evaluator.failing_rows(best, models), self.max_suppression
            )
        return Release(
            table=candidate,
            schema=schema,
            algorithm=self.name,
            node=best,
            suppressed=suppressed,
            original_n_rows=original.n_rows,
            kept_rows=kept,
            info={"minimal_nodes": sorted(minimal), "stats": dict(self.stats)},
        )

    # -- search --------------------------------------------------------------

    def find_minimal_nodes(
        self,
        table: Table,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        evaluator: LatticeEvaluator | None = None,
    ) -> list[Node]:
        """Classify every lattice node; return the minimal satisfying antichain.

        Requires generalization-monotone models (every model shipped with the
        library is); non-monotone models make predictive tagging unsound, so
        they are rejected up front.
        """
        non_monotone = [m.name for m in models if not getattr(m, "monotone", False)]
        if non_monotone:
            raise InfeasibleError(
                f"Flash requires monotone privacy models; got {non_monotone}"
            )
        if evaluator is None:
            evaluator = LatticeEvaluator(table, qi_names, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi_names)
        self.stats = {
            "nodes_checked": 0,
            "lattice_size": lattice.size,
            "paths_built": 0,
            "tagged_without_check": 0,
        }
        # Deterministic cache fill: Flash's first stats request is a
        # mid-path bisection pivot, and lower nodes visited later cannot
        # roll up from it — so which nodes came "from rows" depended on the
        # request order, which parallel batch jobs race over. Seeding the
        # lattice bottom first gives every other node a roll-up ancestor,
        # pinning the engine's from_rows/rollups profile at any worker count.
        evaluator.stats(lattice.bottom)
        state: dict[Node, int] = {}

        for stratum in lattice.levels():
            for node in stratum:
                if state.get(node, _UNKNOWN) is not _UNKNOWN:
                    continue
                path = self._build_path(node, lattice, state)
                self.stats["paths_built"] += 1
                self._check_path(path, evaluator, models, lattice, state)

        satisfying = {node for node, s in state.items() if s is _SATISFYING}
        return _minimal_antichain(satisfying)

    def _build_path(
        self,
        start: Node,
        lattice: GeneralizationLattice,
        state: dict[Node, int],
    ) -> list[Node]:
        """Greedy upward chain of unknown nodes starting at ``start``.

        Successor choice follows the Flash heuristic: prefer the successor
        with the lowest average level/height ratio, i.e. stay as specific as
        possible for as long as possible, so the bisection pivot lands near
        the satisfaction frontier.
        """
        path = [start]
        current = start
        while True:
            candidates = [
                succ
                for succ in lattice.successors(current)
                if state.get(succ, _UNKNOWN) is _UNKNOWN
            ]
            if not candidates:
                break
            current = min(candidates, key=lambda n: (_level_ratio(n, lattice.heights), n))
            path.append(current)
        return path

    def _check_path(
        self,
        path: list[Node],
        evaluator: LatticeEvaluator,
        models: Sequence[PrivacyModel],
        lattice: GeneralizationLattice,
        state: dict[Node, int],
    ) -> None:
        """Bisect a chain for its lowest satisfying node; tag both sides."""
        lo, hi = 0, len(path) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._satisfies(path[mid], evaluator, models):
                self._tag_up(path[mid], lattice, state)
                hi = mid - 1
            else:
                self._tag_down(path[mid], lattice, state)
                lo = mid + 1
        # Nodes below the frontier end up tagged violating by the last
        # failing pivot's _tag_down, nodes above by _tag_up — nothing on the
        # path itself is left unknown.

    def _satisfies(
        self,
        node: Node,
        evaluator: LatticeEvaluator,
        models: Sequence[PrivacyModel],
    ) -> bool:
        self.stats["nodes_checked"] += 1
        return evaluator.evaluate(node, models, self.max_suppression)

    def _tag_up(self, node: Node, lattice: GeneralizationLattice, state: dict[Node, int]) -> None:
        for other in lattice.up_set(node):
            if state.get(other, _UNKNOWN) is _UNKNOWN:
                if other != node:
                    self.stats["tagged_without_check"] += 1
                state[other] = _SATISFYING

    def _tag_down(self, node: Node, lattice: GeneralizationLattice, state: dict[Node, int]) -> None:
        for other in _down_set(node):
            if state.get(other, _UNKNOWN) is _UNKNOWN:
                if other != node:
                    self.stats["tagged_without_check"] += 1
                state[other] = _VIOLATING

    def _choose(
        self,
        table: Table,
        evaluator: LatticeEvaluator,
        minimal: list[Node],
    ) -> Node:
        if self.score is not None:
            return min(minimal, key=lambda node: self.score(table, node))
        return min(minimal, key=lambda node: (sum(node), -evaluator.n_groups(node)))

    def __repr__(self) -> str:
        return f"Flash(max_suppression={self.max_suppression})"


def _level_ratio(node: Node, heights: tuple[int, ...]) -> float:
    """Average fraction of each hierarchy consumed by the node."""
    ratios = [lv / h if h else 0.0 for lv, h in zip(node, heights)]
    return sum(ratios) / len(ratios)


def _down_set(node: Node) -> list[Node]:
    """Every node componentwise ≤ ``node`` (inclusive)."""
    from itertools import product

    return [tuple(p) for p in product(*(range(lv + 1) for lv in node))]


def _minimal_antichain(nodes: set[Node]) -> list[Node]:
    minimal = []
    for node in nodes:
        dominated = any(
            other != node and all(o <= n for o, n in zip(other, node))
            for other in nodes
        )
        if not dominated:
            minimal.append(node)
    return sorted(minimal)
