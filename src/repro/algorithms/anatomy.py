"""Anatomy (Xiao & Tao).

Instead of generalizing quasi-identifiers, Anatomy publishes two tables:

* **QIT** — the exact quasi-identifier values plus a group id;
* **ST** — per group, the multiset of sensitive values (value, count).

Groups are formed so that each contains at most one record per dominant
sensitive value ("ℓ-eligible" bucketization): records are bucketed by
sensitive value, then groups of size ℓ are drawn by repeatedly taking one
record from each of the ℓ currently largest buckets. Residual records are
appended to existing groups that do not yet contain their sensitive value.

The published pair supports aggregate analysis with the exact QI values
(hence low query error — experiment E10) while any individual's sensitive
value is hidden among the group's ℓ distinct values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike
from ..core.partition_engine import grouped_histograms
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Column, Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["Anatomy", "AnatomizedRelease"]


@dataclass
class AnatomizedRelease:
    """The (QIT, ST) pair plus group membership."""

    qit: Table
    st: list[dict]
    groups: list[np.ndarray]

    def group_sensitive_counts(self, group_id: int) -> dict:
        return self.st[group_id]


class Anatomy:
    """ℓ-eligible bucketization publishing exact QIs with a separated ST."""

    def __init__(self, l: int, seed: int | None = 0):
        if l < 2:
            raise ValueError(f"l must be >= 2, got {l}")
        self.l = int(l)
        self.seed = seed
        self.name = f"anatomy[l={l}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel] = (),
    ) -> Release:
        """Standard interface; the anatomized pair rides in ``info``."""
        anatomized, kept = self.anatomize(table, schema)
        return Release(
            table=anatomized.qit,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=table.n_rows - int(kept.size),
            original_n_rows=table.n_rows,
            kept_rows=kept,
            info={"anatomized": anatomized, "l": self.l},
        )

    def anatomize(self, table: Table, schema: Schema) -> tuple[AnatomizedRelease, np.ndarray]:
        """Build the (QIT, ST) pair. Returns (release, kept_row_indices)."""
        original = prepare_input(table, schema, hierarchies={} if not schema.categorical_quasi_identifiers else {n: _DUMMY for n in schema.categorical_quasi_identifiers})
        sensitive = schema.sensitive
        if len(sensitive) != 1:
            raise InfeasibleError("Anatomy needs exactly one sensitive attribute")
        s_name = sensitive[0]
        codes = original.codes(s_name)
        n_cats = len(original.column(s_name).categories)

        # Check eligibility: the most frequent sensitive value may occupy at
        # most 1/l of the records (otherwise perfect l-eligibility fails).
        counts = np.bincount(codes, minlength=n_cats)
        if counts.max() * self.l > original.n_rows + (self.l - 1) * counts.max():
            pass  # residual assignment below handles mild skew
        buckets: list[list[int]] = [list(np.flatnonzero(codes == c)) for c in range(n_cats)]
        rng = np.random.default_rng(self.seed)
        for bucket in buckets:
            rng.shuffle(bucket)

        # group_cats[gid] mirrors groups[gid]'s distinct sensitive values so
        # residual placement tests membership in O(1) per group instead of
        # rescanning every member (a group drawn from buckets ``largest``
        # holds exactly those sensitive codes).
        groups: list[list[int]] = []
        group_cats: list[set[int]] = []
        while True:
            sizes = np.array([len(b) for b in buckets])
            if np.count_nonzero(sizes) < self.l:
                break
            largest = np.argsort(sizes)[::-1][: self.l]
            group = [buckets[b].pop() for b in largest]
            groups.append(group)
            group_cats.append({int(b) for b in largest})

        # Residual records: append to a group lacking their sensitive value.
        dropped: list[int] = []
        for cat, bucket in enumerate(buckets):
            for row in bucket:
                home = next(
                    (gid for gid, cats in enumerate(group_cats) if cat not in cats),
                    None,
                )
                if home is None:
                    dropped.append(row)
                else:
                    groups[home].append(row)
                    group_cats[home].add(cat)

        if not groups:
            raise InfeasibleError(
                f"fewer than l={self.l} distinct sensitive values; cannot anatomize"
            )

        kept = np.sort(np.array([row for group in groups for row in group], dtype=np.int64))
        position = {row: i for i, row in enumerate(kept)}
        remapped_groups = [
            np.array(sorted(position[row] for row in group), dtype=np.int64)
            for group in groups
        ]

        kept_table = original.take(kept)
        group_ids = np.empty(kept.size, dtype=np.int32)
        for gid, group in enumerate(remapped_groups):
            group_ids[group] = gid

        qit = (
            kept_table.drop(s_name)
            .with_column(Column.numeric("group_id", group_ids))
        )
        s_categories = original.column(s_name).categories
        kept_codes = codes[kept]
        # One flattened bincount covers every group's sensitive histogram.
        histograms = grouped_histograms(
            group_ids, kept_codes, len(remapped_groups), n_cats
        )
        st: list[dict] = [
            {s_categories[c]: int(n) for c, n in enumerate(histogram) if n}
            for histogram in histograms
        ]

        release = AnatomizedRelease(qit=qit, st=st, groups=remapped_groups)
        return release, kept

    def __repr__(self) -> str:
        return f"Anatomy(l={self.l})"


class _Dummy:
    """Placeholder hierarchy: Anatomy never generalizes, but prepare_input
    insists every categorical QI has a hierarchy entry."""

    height = 0


_DUMMY = _Dummy()
