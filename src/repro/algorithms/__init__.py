"""Anonymization algorithms."""

from .anatomy import AnatomizedRelease, Anatomy
from .bug import BottomUpGeneralization
from .base import AnonymizationAlgorithm, prepare_input, suppress_failing
from .datafly import Datafly
from .flash import Flash
from .incognito import Incognito
from .kmember import KMemberClustering
from .microaggregation import MDAVMicroaggregation, within_group_sse
from .mondrian import Mondrian
from .ola import OLA
from .slicing import SlicedRelease, Slicing
from .topdown import TopDownSpecialization

__all__ = [
    "AnatomizedRelease",
    "Anatomy",
    "AnonymizationAlgorithm",
    "BottomUpGeneralization",
    "Datafly",
    "Flash",
    "Incognito",
    "KMemberClustering",
    "MDAVMicroaggregation",
    "Mondrian",
    "OLA",
    "SlicedRelease",
    "Slicing",
    "TopDownSpecialization",
    "prepare_input",
    "suppress_failing",
    "within_group_sse",
]
