"""Anonymization algorithms.

Two execution substrates back the family:

* The **lattice** algorithms (Datafly, Incognito, OLA, Flash, and
  BottomUpGeneralization in ``bug.py``) enumerate full-domain
  generalization nodes through :class:`~repro.core.engine.LatticeEvaluator`
  and its ``GroupStats`` cache.
* The **local-recoding** algorithms (Mondrian, TopDownSpecialization,
  MDAVMicroaggregation, KMemberClustering, Anatomy, Slicing) refine explicit
  row partitions; those with per-candidate feasibility checks run on
  :class:`~repro.core.partition_engine.PartitionEngine` (selectable per
  instance via ``engine="partition" | "legacy"``), the rest share its
  flattened grouped-histogram kernel.

BottomUpGeneralization stays on the lattice/legacy full-domain path by
design: it walks generalization *nodes* bottom-up (no per-row partition to
refine incrementally), so ``PartitionStats`` offers it nothing the
``GroupStats`` roll-up does not already provide. It is registered in
``repro.api.registry`` as ``"bottom-up"`` like the rest of the family.
"""

from .anatomy import AnatomizedRelease, Anatomy
from .bug import BottomUpGeneralization
from .base import AnonymizationAlgorithm, prepare_input, suppress_failing
from .datafly import Datafly
from .flash import Flash
from .incognito import Incognito
from .kmember import KMemberClustering
from .microaggregation import MDAVMicroaggregation, within_group_sse
from .mondrian import Mondrian
from .ola import OLA
from .slicing import SlicedRelease, Slicing
from .topdown import TopDownSpecialization

__all__ = [
    "AnatomizedRelease",
    "Anatomy",
    "AnonymizationAlgorithm",
    "BottomUpGeneralization",
    "Datafly",
    "Flash",
    "Incognito",
    "KMemberClustering",
    "MDAVMicroaggregation",
    "Mondrian",
    "OLA",
    "SlicedRelease",
    "Slicing",
    "TopDownSpecialization",
    "prepare_input",
    "suppress_failing",
    "within_group_sse",
]
