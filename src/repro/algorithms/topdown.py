"""Top-Down Specialization (Fung, Wang & Yu).

Starts from the fully-generalized table (every QI at the top of its
hierarchy) and greedily *specializes* one attribute at a time — the one with
the best information-gain-per-privacy-cost score — as long as the privacy
models keep holding. The classic score trades classification information
gain against anonymity loss; this implementation scores a candidate
specialization by

    score = information_gain / (anonymity_loss + 1)

where information gain is the reduction in class-label entropy over the
affected records and anonymity loss is the drop in the minimum
equivalence-class size. A ``target`` label column drives the gain term; when
no target is supplied the gain term falls back to the number of distinct
values exposed (pure utility refinement).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_node
from ..core.partition import partition_by_qi
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import check_models, prepare_input

__all__ = ["TopDownSpecialization"]


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


class TopDownSpecialization:
    """Greedy top-down specialization guided by information gain."""

    def __init__(self, target: str | None = None, max_steps: int = 10_000):
        self.target = target
        self.max_steps = int(max_steps)
        self.name = "tds"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        heights = [hierarchies[name].height for name in qi_names]
        node = list(heights)  # start fully generalized

        top_table = apply_node(original, hierarchies, qi_names, node)
        if not check_models(top_table, partition_by_qi(top_table, qi_names), models):
            raise InfeasibleError("even the fully-generalized table violates the models")

        label_codes = None
        if self.target is not None:
            label_codes = original.codes(self.target)

        for _ in range(self.max_steps):
            best = self._best_specialization(
                original, qi_names, node, hierarchies, models, label_codes
            )
            if best is None:
                break
            node[best] -= 1

        final = apply_node(original, hierarchies, qi_names, node)
        return Release(
            table=final,
            schema=schema,
            algorithm=self.name,
            node=tuple(node),
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"target": self.target},
        )

    def _best_specialization(
        self,
        original: Table,
        qi_names: Sequence[str],
        node: list[int],
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        label_codes: np.ndarray | None,
    ) -> int | None:
        """Index of the best feasible one-step specialization, or None."""
        current = apply_node(original, hierarchies, qi_names, node)
        current_partition = partition_by_qi(current, qi_names)
        current_min = current_partition.min_size()

        best_index, best_score = None, -np.inf
        for i, name in enumerate(qi_names):
            if node[i] == 0:
                continue
            trial = list(node)
            trial[i] -= 1
            candidate = apply_node(original, hierarchies, qi_names, trial)
            partition = partition_by_qi(candidate, qi_names)
            if not check_models(candidate, partition, models):
                continue
            gain = self._information_gain(candidate, current, name, label_codes)
            anonymity_loss = max(current_min - partition.min_size(), 0)
            score = gain / (anonymity_loss + 1.0)
            if score > best_score:
                best_index, best_score = i, score
        return best_index

    def _information_gain(
        self,
        candidate: Table,
        current: Table,
        name: str,
        label_codes: np.ndarray | None,
    ) -> float:
        """Entropy reduction of the label when ``name`` is specialized."""
        fine = candidate.codes(name)
        if label_codes is None:
            # Utility-only fallback: prefer exposing more distinct values.
            return float(np.unique(fine).size)
        coarse = current.codes(name)
        n_labels = int(label_codes.max()) + 1

        def conditional_entropy(group_codes: np.ndarray) -> float:
            total = 0.0
            for code in np.unique(group_codes):
                mask = group_codes == code
                counts = np.bincount(label_codes[mask], minlength=n_labels)
                total += (mask.sum() / group_codes.size) * _entropy(counts)
            return total

        return conditional_entropy(coarse) - conditional_entropy(fine)

    def __repr__(self) -> str:
        return f"TopDownSpecialization(target={self.target!r})"
