"""Top-Down Specialization (Fung, Wang & Yu).

Starts from the fully-generalized table (every QI at the top of its
hierarchy) and greedily *specializes* one attribute at a time — the one with
the best information-gain-per-privacy-cost score — as long as the privacy
models keep holding. The classic score trades classification information
gain against anonymity loss; this implementation scores a candidate
specialization by

    score = information_gain / (anonymity_loss + 1)

where information gain is the reduction in class-label entropy over the
affected records and anonymity loss is the drop in the minimum
equivalence-class size. A ``target`` label column drives the gain term; when
no target is supplied the gain term falls back to the number of distinct
values exposed (pure utility refinement).

Two execution engines produce byte-identical releases. ``engine="legacy"``
re-materializes the candidate table and its EC partition for every trial
specialization at every step (``apply_node`` + ``partition_by_qi`` +
``model.check``). ``engine="partition"`` (default) keeps the current
partition as live :class:`~repro.core.partition_engine.PartitionGroup` sets
and *refines* them: a candidate is a multiway split of each group by the
QI's next-level codes (memoized per level through the engine), feasibility
goes through the models' stats fast path, and per-level conditional label
entropies are computed once from a joint flattened bincount and cached for
the whole run. The fast path also handles a case the legacy one cannot:
scoring a numeric QI at hierarchy level 0 (the raw column), which
``Table.codes`` rejects — level-0 numeric candidates are rank-encoded
instead of crashing.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_node
from ..core.partition import partition_by_qi
from ..core.partition_engine import PartitionEngine, grouped_histograms
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import check_models, prepare_input

__all__ = ["TopDownSpecialization"]

_INFEASIBLE_MSG = "even the fully-generalized table violates the models"


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


class TopDownSpecialization:
    """Greedy top-down specialization guided by information gain."""

    def __init__(self, target: str | None = None, max_steps: int = 10_000,
                 engine: str = "partition"):
        if engine not in ("partition", "legacy"):
            raise ValueError(
                f"engine must be 'partition' or 'legacy', got {engine!r}"
            )
        self.target = target
        self.max_steps = int(max_steps)
        self.engine = engine
        self.name = "tds"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        qi_names = schema.quasi_identifiers
        heights = [hierarchies[name].height for name in qi_names]

        cache_info = None
        if self.engine == "partition":
            node, cache_info = self._specialize_fast(
                original, qi_names, heights, hierarchies, models
            )
        else:
            node = self._specialize_legacy(
                original, qi_names, heights, hierarchies, models
            )

        final = apply_node(original, hierarchies, qi_names, node)
        info = {"target": self.target}
        if cache_info is not None:
            info["partition_cache"] = cache_info
        return Release(
            table=final,
            schema=schema,
            algorithm=self.name,
            node=tuple(node),
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info=info,
        )

    # -- partition-engine path ----------------------------------------------

    def _specialize_fast(self, original, qi_names, heights, hierarchies, models):
        engine = PartitionEngine(original, hierarchies)
        node = list(heights)
        groups = [engine.root()]
        for i, name in enumerate(qi_names):
            groups = self._refine(engine, groups, name, node[i])
        stats = engine.stats(groups)
        if not engine.check(stats, models):
            raise InfeasibleError(_INFEASIBLE_MSG)

        label_codes = None
        n_labels = 0
        if self.target is not None:
            label_codes = original.codes(self.target)
            n_labels = int(label_codes.max()) + 1
        gain_cache: dict[tuple[str, int], float] = {}

        current_min = stats.min_size()
        for _ in range(self.max_steps):
            best_index, best_score, best_state = None, -np.inf, None
            for i, name in enumerate(qi_names):
                if node[i] == 0:
                    continue
                cand_groups = self._refine(engine, groups, name, node[i] - 1)
                cand_stats = engine.stats(cand_groups)
                if not engine.check(cand_stats, models):
                    continue
                gain = self._gain_fast(
                    engine, name, node[i], label_codes, n_labels, gain_cache
                )
                anonymity_loss = max(current_min - cand_stats.min_size(), 0)
                score = gain / (anonymity_loss + 1.0)
                if score > best_score:
                    best_index, best_score = i, score
                    best_state = (cand_groups, cand_stats)
            if best_index is None:
                break
            node[best_index] -= 1
            groups, stats = best_state
            current_min = stats.min_size()
        return node, engine.cache_info()

    @staticmethod
    def _refine(engine, groups, name, level):
        """Split every group by QI ``name`` generalized to ``level``.

        Valid because hierarchy levels are refinements: rows sharing a
        level-``l`` value also share every coarser value, so splitting the
        current partition reproduces the full EC partition at the new node.
        """
        codes, _ = engine.level_codes(name, level)
        refined = []
        for group in groups:
            refined.extend(engine.split_by_codes(group, codes[group.rows]))
        return refined

    def _gain_fast(self, engine, name, level, label_codes, n_labels, gain_cache):
        """Gain of specializing ``name`` from ``level`` to ``level - 1``.

        Matches :meth:`_information_gain` float-for-float: the per-value
        label counts come from one joint flattened bincount instead of a
        mask per distinct value, and each (name, level) conditional entropy
        is computed once per run instead of once per step.
        """
        if label_codes is None:
            key = (name, level - 1)
            gain = gain_cache.get(key)
            if gain is None:
                codes, _ = engine.level_codes(name, level - 1)
                gain = float(np.unique(codes).size)
                gain_cache[key] = gain
            return gain
        return (
            self._conditional_entropy(engine, name, level, label_codes, n_labels, gain_cache)
            - self._conditional_entropy(engine, name, level - 1, label_codes, n_labels, gain_cache)
        )

    @staticmethod
    def _conditional_entropy(engine, name, level, label_codes, n_labels, gain_cache):
        key = (name, level)
        value = gain_cache.get(key)
        if value is None:
            codes, n_values = engine.level_codes(name, level)
            joint = grouped_histograms(codes, label_codes, n_values, n_labels)
            sizes = joint.sum(axis=1)
            total = 0.0
            for v in np.flatnonzero(sizes):
                total += (sizes[v] / codes.size) * _entropy(joint[v])
            value = total
            gain_cache[key] = value
        return value

    # -- legacy path ---------------------------------------------------------

    def _specialize_legacy(self, original, qi_names, heights, hierarchies, models):
        node = list(heights)  # start fully generalized

        top_table = apply_node(original, hierarchies, qi_names, node)
        if not check_models(top_table, partition_by_qi(top_table, qi_names), models):
            raise InfeasibleError(_INFEASIBLE_MSG)

        label_codes = None
        if self.target is not None:
            label_codes = original.codes(self.target)

        for _ in range(self.max_steps):
            best = self._best_specialization(
                original, qi_names, node, hierarchies, models, label_codes
            )
            if best is None:
                break
            node[best] -= 1
        return node

    def _best_specialization(
        self,
        original: Table,
        qi_names: Sequence[str],
        node: list[int],
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel],
        label_codes: np.ndarray | None,
    ) -> int | None:
        """Index of the best feasible one-step specialization, or None."""
        current = apply_node(original, hierarchies, qi_names, node)
        current_partition = partition_by_qi(current, qi_names)
        current_min = current_partition.min_size()

        best_index, best_score = None, -np.inf
        for i, name in enumerate(qi_names):
            if node[i] == 0:
                continue
            trial = list(node)
            trial[i] -= 1
            candidate = apply_node(original, hierarchies, qi_names, trial)
            partition = partition_by_qi(candidate, qi_names)
            if not check_models(candidate, partition, models):
                continue
            gain = self._information_gain(candidate, current, name, label_codes)
            anonymity_loss = max(current_min - partition.min_size(), 0)
            score = gain / (anonymity_loss + 1.0)
            if score > best_score:
                best_index, best_score = i, score
        return best_index

    def _information_gain(
        self,
        candidate: Table,
        current: Table,
        name: str,
        label_codes: np.ndarray | None,
    ) -> float:
        """Entropy reduction of the label when ``name`` is specialized."""
        fine = candidate.codes(name)
        if label_codes is None:
            # Utility-only fallback: prefer exposing more distinct values.
            return float(np.unique(fine).size)
        coarse = current.codes(name)
        n_labels = int(label_codes.max()) + 1

        def conditional_entropy(group_codes: np.ndarray) -> float:
            total = 0.0
            for code in np.unique(group_codes):
                mask = group_codes == code
                counts = np.bincount(label_codes[mask], minlength=n_labels)
                total += (mask.sum() / group_codes.size) * _entropy(counts)
            return total

        return conditional_entropy(coarse) - conditional_entropy(fine)

    def __repr__(self) -> str:
        return f"TopDownSpecialization(target={self.target!r})"
