"""Greedy k-member clustering (Byun et al.).

A clustering-based anonymizer for mixed categorical+numeric QIs: build
clusters of exactly ``k`` records by repeatedly picking the record farthest
from the previous cluster and greedily adding the record whose inclusion
minimizes the cluster's information loss; leftover records join the cluster
whose loss they increase least. Clusters become equivalence classes via
local recoding (hierarchy covers for categorical QIs, min-max intervals for
numeric).

Distance/loss follows the paper: for numeric attributes, range/span; for
categorical attributes, (subtree-height of the minimal covering node) /
(hierarchy height).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_partition_recoding
from ..core.hierarchy import Hierarchy
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["KMemberClustering"]


class KMemberClustering:
    """Greedy loss-minimizing clusters of exactly k records."""

    def __init__(self, k: int, sample_candidates: int = 64, seed: int = 0,
                 engine: str = "partition"):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if engine not in ("partition", "legacy"):
            raise ValueError(
                f"engine must be 'partition' or 'legacy', got {engine!r}"
            )
        self.k = int(k)
        # Evaluating every remaining record per addition is O(n^2 k); we
        # evaluate a random sample of candidates instead, which preserves
        # the greedy quality on real data at a fraction of the cost.
        self.sample_candidates = int(sample_candidates)
        self.seed = seed
        # "partition": marginal losses come from cached per-cluster running
        # aggregates (min/max, sorted distinct codes + covering level)
        # instead of rescanning the cluster per candidate — same floats,
        # same rng call sequence, byte-identical releases.
        self.engine = engine
        self.name = f"kmember[k={k}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel] = (),
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        if original.n_rows < self.k:
            raise InfeasibleError(f"table has fewer than k={self.k} rows")

        loss_cls = _CachedLossModel if self.engine == "partition" else _LossModel
        loss_model = loss_cls(original, schema, hierarchies)
        rng = np.random.default_rng(self.seed)

        remaining = list(range(original.n_rows))
        rng.shuffle(remaining)
        remaining_set = set(remaining)
        clusters: list[list[int]] = []
        anchor = remaining[0]

        while len(remaining_set) >= self.k:
            anchor = loss_model.farthest_from(anchor, remaining_set, rng, self.sample_candidates)
            cluster = [anchor]
            remaining_set.discard(anchor)
            while len(cluster) < self.k:
                best = loss_model.cheapest_addition(
                    cluster, remaining_set, rng, self.sample_candidates
                )
                cluster.append(best)
                remaining_set.discard(best)
            clusters.append(cluster)

        for row in list(remaining_set):
            best_cluster = min(
                range(len(clusters)),
                key=lambda ci: loss_model.marginal_loss(clusters[ci], row),
            )
            clusters[best_cluster].append(row)
        groups = [np.sort(np.array(c, dtype=np.int64)) for c in clusters]

        categorical = {
            name: hierarchies[name] for name in schema.categorical_quasi_identifiers
        }
        recoded = apply_partition_recoding(
            original,
            groups,
            categorical_qis=categorical,  # type: ignore[arg-type]
            numeric_qis=schema.numeric_quasi_identifiers,
        )
        return Release(
            table=recoded,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"n_clusters": len(groups), "total_loss": loss_model.total(groups)},
        )

    def __repr__(self) -> str:
        return f"KMemberClustering(k={self.k})"


class _LossModel:
    """Cluster information loss over mixed QIs (Byun et al.'s IL)."""

    def __init__(self, table: Table, schema: Schema, hierarchies: Mapping[str, HierarchyLike]):
        self.numeric: dict[str, np.ndarray] = {}
        self.spans: dict[str, float] = {}
        for name in schema.numeric_quasi_identifiers:
            values = table.values(name).astype(np.float64)
            self.numeric[name] = values
            span = float(values.max() - values.min())
            self.spans[name] = span if span > 0 else 1.0
        self.categorical: dict[str, tuple[np.ndarray, Hierarchy]] = {}
        for name in schema.categorical_quasi_identifiers:
            hierarchy = hierarchies[name]
            assert isinstance(hierarchy, Hierarchy)
            # Remap column codes into hierarchy ground codes once.
            col = table.column(name)
            index = {value: code for code, value in enumerate(hierarchy.ground)}
            translate = np.array([index[v] for v in col.categories], dtype=np.int64)
            self.categorical[name] = (translate[col.codes], hierarchy)

    def cluster_loss(self, rows: Sequence[int]) -> float:
        rows_arr = np.asarray(rows, dtype=np.int64)
        loss = 0.0
        for name, values in self.numeric.items():
            subset = values[rows_arr]
            loss += float(subset.max() - subset.min()) / self.spans[name]
        for name, (codes, hierarchy) in self.categorical.items():
            distinct = np.unique(codes[rows_arr])
            loss += _covering_level(hierarchy, distinct) / max(hierarchy.height, 1)
        return loss

    def marginal_loss(self, cluster: Sequence[int], candidate: int) -> float:
        return self.cluster_loss(list(cluster) + [candidate]) - self.cluster_loss(cluster)

    def cheapest_addition(self, cluster, remaining_set, rng, sample_size) -> int:
        candidates = _sample(remaining_set, rng, sample_size)
        return min(candidates, key=lambda row: self.marginal_loss(cluster, row))

    def farthest_from(self, anchor: int, remaining_set, rng, sample_size) -> int:
        candidates = _sample(remaining_set, rng, sample_size)
        return max(candidates, key=lambda row: self.cluster_loss([anchor, row]))

    def total(self, groups: Sequence[np.ndarray]) -> float:
        return sum(self.cluster_loss(list(g)) * len(g) for g in groups)


class _CachedLossModel(_LossModel):
    """Drop-in :class:`_LossModel` with per-cluster running aggregates.

    ``marginal_loss`` (the inner loop of cluster growth) degrades from
    O(cluster × attributes) rescans to O(attributes) updates: each live
    cluster list carries running numeric min/max, a sorted distinct-code
    array per categorical QI, and its cached covering level. Losses are
    recomputed from the aggregates in the same accumulation order as
    :meth:`_LossModel.cluster_loss`, and running min/max equals
    ``subset.min()``/``subset.max()`` exactly, so every float — and thus
    every greedy choice — is identical to the uncached model's.

    Aggregates are keyed by ``id(cluster)``: safe because every cluster
    list the algorithm passes here stays alive in ``clusters`` for the
    whole run (no id reuse), and clusters only ever grow (missing rows are
    folded in from ``cluster[seen:]``).
    """

    def __init__(self, table: Table, schema: Schema, hierarchies: Mapping[str, HierarchyLike]):
        super().__init__(table, schema, hierarchies)
        self._stats: dict[int, "_ClusterAggregates"] = {}

    def _aggregates(self, cluster: Sequence[int]) -> "_ClusterAggregates":
        stats = self._stats.get(id(cluster))
        if stats is None or stats.n > len(cluster):
            stats = _ClusterAggregates(self)
            self._stats[id(cluster)] = stats
        for row in cluster[stats.n:]:
            stats.add(row)
        return stats

    def marginal_loss(self, cluster: Sequence[int], candidate: int) -> float:
        stats = self._aggregates(cluster)
        return stats.loss_with(candidate) - stats.loss()


class _ClusterAggregates:
    """Running per-attribute aggregates of one growing cluster."""

    __slots__ = ("model", "n", "mins", "maxs", "distincts", "levels", "_loss")

    def __init__(self, model: _LossModel):
        self.model = model
        self.n = 0
        self.mins: dict[str, np.floating] = {}
        self.maxs: dict[str, np.floating] = {}
        self.distincts: dict[str, np.ndarray] = {}
        self.levels: dict[str, int] = {}
        self._loss: float | None = None

    def add(self, row: int) -> None:
        first = self.n == 0
        for name, values in self.model.numeric.items():
            value = values[row]
            if first:
                self.mins[name] = value
                self.maxs[name] = value
            else:
                if value < self.mins[name]:
                    self.mins[name] = value
                if value > self.maxs[name]:
                    self.maxs[name] = value
        for name, (codes, hierarchy) in self.model.categorical.items():
            code = codes[row]
            if first:
                self.distincts[name] = np.array([code], dtype=np.int64)
                self.levels[name] = 0
            else:
                distinct = self.distincts[name]
                at = int(np.searchsorted(distinct, code))
                if at == distinct.size or distinct[at] != code:
                    grown = np.insert(distinct, at, code)
                    self.distincts[name] = grown
                    self.levels[name] = _covering_level(
                        hierarchy, grown, start=self.levels[name]
                    )
        self.n += 1
        self._loss = None

    def loss(self) -> float:
        """Same accumulation order as ``_LossModel.cluster_loss``."""
        if self._loss is None:
            total = 0.0
            for name in self.model.numeric:
                total += float(self.maxs[name] - self.mins[name]) / self.model.spans[name]
            for name, (codes, hierarchy) in self.model.categorical.items():
                total += self.levels[name] / max(hierarchy.height, 1)
            self._loss = total
        return self._loss

    def loss_with(self, row: int) -> float:
        """Loss if ``row`` joined, without mutating the aggregates."""
        total = 0.0
        for name, values in self.model.numeric.items():
            value = values[row]
            low = self.mins[name] if self.mins[name] <= value else value
            high = self.maxs[name] if self.maxs[name] >= value else value
            total += float(high - low) / self.model.spans[name]
        for name, (codes, hierarchy) in self.model.categorical.items():
            code = codes[row]
            distinct = self.distincts[name]
            at = int(np.searchsorted(distinct, code))
            if at < distinct.size and distinct[at] == code:
                level = self.levels[name]
            else:
                level = _covering_level(
                    hierarchy, np.insert(distinct, at, code), start=self.levels[name]
                )
            total += level / max(hierarchy.height, 1)
        return total


def _covering_level(hierarchy: Hierarchy, distinct_codes: np.ndarray, start: int = 0) -> int:
    """Lowest level whose mapping unifies the distinct ground codes.

    ``start`` skips levels already known not to unify a *subset* of the
    codes — sound because a level failing to unify fewer codes cannot unify
    more.
    """
    if distinct_codes.size <= 1:
        return 0
    for level in range(max(start, 1), hierarchy.height + 1):
        if np.unique(hierarchy.map_codes(distinct_codes.astype(np.int32), level)).size == 1:
            return level
    return hierarchy.height


def _sample(remaining_set: set, rng: np.random.Generator, size: int) -> list[int]:
    if len(remaining_set) <= size:
        return list(remaining_set)
    as_list = list(remaining_set)
    picks = rng.choice(len(as_list), size=size, replace=False)
    return [as_list[i] for i in picks]
