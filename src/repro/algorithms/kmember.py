"""Greedy k-member clustering (Byun et al.).

A clustering-based anonymizer for mixed categorical+numeric QIs: build
clusters of exactly ``k`` records by repeatedly picking the record farthest
from the previous cluster and greedily adding the record whose inclusion
minimizes the cluster's information loss; leftover records join the cluster
whose loss they increase least. Clusters become equivalence classes via
local recoding (hierarchy covers for categorical QIs, min-max intervals for
numeric).

Distance/loss follows the paper: for numeric attributes, range/span; for
categorical attributes, (subtree-height of the minimal covering node) /
(hierarchy height).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.generalize import HierarchyLike, apply_partition_recoding
from ..core.hierarchy import Hierarchy
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import InfeasibleError
from ..privacy.base import PrivacyModel
from .base import prepare_input

__all__ = ["KMemberClustering"]


class KMemberClustering:
    """Greedy loss-minimizing clusters of exactly k records."""

    def __init__(self, k: int, sample_candidates: int = 64, seed: int = 0):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = int(k)
        # Evaluating every remaining record per addition is O(n^2 k); we
        # evaluate a random sample of candidates instead, which preserves
        # the greedy quality on real data at a fraction of the cost.
        self.sample_candidates = int(sample_candidates)
        self.seed = seed
        self.name = f"kmember[k={k}]"

    def anonymize(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike],
        models: Sequence[PrivacyModel] = (),
    ) -> Release:
        original = prepare_input(table, schema, hierarchies)
        if original.n_rows < self.k:
            raise InfeasibleError(f"table has fewer than k={self.k} rows")

        loss_model = _LossModel(original, schema, hierarchies)
        rng = np.random.default_rng(self.seed)

        remaining = list(range(original.n_rows))
        rng.shuffle(remaining)
        remaining_set = set(remaining)
        clusters: list[list[int]] = []
        anchor = remaining[0]

        while len(remaining_set) >= self.k:
            anchor = loss_model.farthest_from(anchor, remaining_set, rng, self.sample_candidates)
            cluster = [anchor]
            remaining_set.discard(anchor)
            while len(cluster) < self.k:
                best = loss_model.cheapest_addition(
                    cluster, remaining_set, rng, self.sample_candidates
                )
                cluster.append(best)
                remaining_set.discard(best)
            clusters.append(cluster)

        for row in list(remaining_set):
            best_cluster = min(
                range(len(clusters)),
                key=lambda ci: loss_model.marginal_loss(clusters[ci], row),
            )
            clusters[best_cluster].append(row)
        groups = [np.sort(np.array(c, dtype=np.int64)) for c in clusters]

        categorical = {
            name: hierarchies[name] for name in schema.categorical_quasi_identifiers
        }
        recoded = apply_partition_recoding(
            original,
            groups,
            categorical_qis=categorical,  # type: ignore[arg-type]
            numeric_qis=schema.numeric_quasi_identifiers,
        )
        return Release(
            table=recoded,
            schema=schema,
            algorithm=self.name,
            node=None,
            suppressed=0,
            original_n_rows=original.n_rows,
            kept_rows=None,
            info={"n_clusters": len(groups), "total_loss": loss_model.total(groups)},
        )

    def __repr__(self) -> str:
        return f"KMemberClustering(k={self.k})"


class _LossModel:
    """Cluster information loss over mixed QIs (Byun et al.'s IL)."""

    def __init__(self, table: Table, schema: Schema, hierarchies: Mapping[str, HierarchyLike]):
        self.numeric: dict[str, np.ndarray] = {}
        self.spans: dict[str, float] = {}
        for name in schema.numeric_quasi_identifiers:
            values = table.values(name).astype(np.float64)
            self.numeric[name] = values
            span = float(values.max() - values.min())
            self.spans[name] = span if span > 0 else 1.0
        self.categorical: dict[str, tuple[np.ndarray, Hierarchy]] = {}
        for name in schema.categorical_quasi_identifiers:
            hierarchy = hierarchies[name]
            assert isinstance(hierarchy, Hierarchy)
            # Remap column codes into hierarchy ground codes once.
            col = table.column(name)
            index = {value: code for code, value in enumerate(hierarchy.ground)}
            translate = np.array([index[v] for v in col.categories], dtype=np.int64)
            self.categorical[name] = (translate[col.codes], hierarchy)

    def cluster_loss(self, rows: Sequence[int]) -> float:
        rows_arr = np.asarray(rows, dtype=np.int64)
        loss = 0.0
        for name, values in self.numeric.items():
            subset = values[rows_arr]
            loss += float(subset.max() - subset.min()) / self.spans[name]
        for name, (codes, hierarchy) in self.categorical.items():
            distinct = np.unique(codes[rows_arr])
            loss += _covering_level(hierarchy, distinct) / max(hierarchy.height, 1)
        return loss

    def marginal_loss(self, cluster: Sequence[int], candidate: int) -> float:
        return self.cluster_loss(list(cluster) + [candidate]) - self.cluster_loss(cluster)

    def cheapest_addition(self, cluster, remaining_set, rng, sample_size) -> int:
        candidates = _sample(remaining_set, rng, sample_size)
        return min(candidates, key=lambda row: self.marginal_loss(cluster, row))

    def farthest_from(self, anchor: int, remaining_set, rng, sample_size) -> int:
        candidates = _sample(remaining_set, rng, sample_size)
        return max(candidates, key=lambda row: self.cluster_loss([anchor, row]))

    def total(self, groups: Sequence[np.ndarray]) -> float:
        return sum(self.cluster_loss(list(g)) * len(g) for g in groups)


def _covering_level(hierarchy: Hierarchy, distinct_codes: np.ndarray) -> int:
    """Lowest level whose mapping unifies the distinct ground codes."""
    if distinct_codes.size <= 1:
        return 0
    for level in range(1, hierarchy.height + 1):
        if np.unique(hierarchy.map_codes(distinct_codes.astype(np.int32), level)).size == 1:
            return level
    return hierarchy.height


def _sample(remaining_set: set, rng: np.random.Generator, size: int) -> list[int]:
    if len(remaining_set) <= size:
        return list(remaining_set)
    as_list = list(remaining_set)
    picks = rng.choice(len(as_list), size=size, replace=False)
    return [as_list[i] for i in picks]
