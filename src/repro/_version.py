"""Single source of the package version.

Kept in a dependency-free module so ``setup.py`` can read it without
importing the package (and its numpy/scipy requirements). Everything else
imports it from here: ``repro.__version__``,
:meth:`repro.api.AnonymizationResult.to_dict` (so archived job reports name
the code that produced them), and the service ``/healthz`` payload (so a
deployment's version is one HTTP GET away).
"""

__version__ = "1.1.0"
