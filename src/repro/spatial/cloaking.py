"""Spatial cloaking for location-based services (Gruteser & Grunwald 2003;
Mokbel et al.'s Casper, 2006).

A location-based service (LBS) learns a user's position with every query.
The PPDP answer is *spatial k-anonymity*: instead of the exact position, the
anonymizer forwards a **cloaking region** guaranteed to contain at least k
users, so the LBS (or anyone watching its logs) cannot pin the query on one
person. Two classic anonymizers:

* :class:`QuadTreeCloak` — the Casper-style adaptive structure: recursively
  quarter the map; answer a query with the *smallest* ancestor cell of the
  user's leaf that holds ≥ k users. Dense downtowns get street-block-sized
  regions, rural users get large ones — area adapts to density.
* :class:`GridCloak` — the fixed-resolution baseline: uniform cells, the
  user's cell is enlarged by whole rings until ≥ k users are covered.

Both return a :class:`CloakedQuery` carrying the region and its anonymity
set. The audit side is :func:`location_linkage_attack`: an adversary with
the full user-location snapshot intersects it with the region — spatial
k-anonymity holds iff every candidate set has ≥ k users, and the attacker's
pin-down probability is 1/|candidates|.

Experiment E30 reproduces the canonical comparison: the quadtree's average
region area undercuts the fixed grid's on clustered populations, both areas
grow with k, and the linkage attack confirms the ≥ k bound everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import InfeasibleError, SchemaError

__all__ = [
    "BoundingBox",
    "CloakedQuery",
    "QuadTreeCloak",
    "GridCloak",
    "location_linkage_attack",
    "LinkageAudit",
]


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[x_lo, x_hi) × [y_lo, y_hi)``."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_hi <= self.x_lo or self.y_hi <= self.y_lo:
            raise SchemaError(f"degenerate bounding box {self}")

    @property
    def area(self) -> float:
        return (self.x_hi - self.x_lo) * (self.y_hi - self.y_lo)

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized membership (closed on the upper edge of the root)."""
        return (x >= self.x_lo) & (x <= self.x_hi) & (y >= self.y_lo) & (y <= self.y_hi)

    def quadrants(self) -> list["BoundingBox"]:
        mx = 0.5 * (self.x_lo + self.x_hi)
        my = 0.5 * (self.y_lo + self.y_hi)
        return [
            BoundingBox(self.x_lo, mx, self.y_lo, my),
            BoundingBox(mx, self.x_hi, self.y_lo, my),
            BoundingBox(self.x_lo, mx, my, self.y_hi),
            BoundingBox(mx, self.x_hi, my, self.y_hi),
        ]


@dataclass(frozen=True)
class CloakedQuery:
    """What the anonymizer forwards to the LBS instead of an exact point."""

    user: int
    region: BoundingBox
    anonymity_set: tuple[int, ...]   # user ids inside the region
    depth: int                       # tree depth / ring count used

    @property
    def k_achieved(self) -> int:
        return len(self.anonymity_set)


def _validate_positions(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise SchemaError("x and y must be parallel 1-D arrays")
    if x.size == 0:
        raise SchemaError("need at least one user position")
    return x, y


class QuadTreeCloak:
    """Adaptive Casper-style cloaking over a quadtree of user positions.

    Parameters
    ----------
    x, y:
        user positions (index = user id) — the anonymizer's snapshot.
    k:
        spatial anonymity requirement.
    max_depth:
        finest subdivision level (leaf cells are ``4^-max_depth`` of the map).
    bounds:
        map extent; defaults to the tight bounding box of the positions.
    """

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        k: int,
        max_depth: int = 8,
        bounds: BoundingBox | None = None,
    ):
        self.x, self.y = _validate_positions(np.asarray(x), np.asarray(y))
        if k < 1:
            raise SchemaError(f"k must be >= 1, got {k}")
        if k > self.x.size:
            raise InfeasibleError(f"k={k} exceeds the {self.x.size}-user population")
        if max_depth < 0:
            raise SchemaError("max_depth must be non-negative")
        self.k = int(k)
        self.max_depth = int(max_depth)
        self.bounds = bounds or BoundingBox(
            float(self.x.min()), float(self.x.max()) + 1e-9,
            float(self.y.min()), float(self.y.max()) + 1e-9,
        )
        if not bool(self.bounds.contains(self.x, self.y).all()):
            raise SchemaError("some user positions fall outside the map bounds")

    def cloak(self, user: int) -> CloakedQuery:
        """Smallest ancestor cell of the user's leaf with ≥ k users."""
        if not 0 <= user < self.x.size:
            raise SchemaError(f"unknown user id {user}")
        # Descend toward the user's leaf, remembering the path of cells.
        path = [self.bounds]
        cell = self.bounds
        for _ in range(self.max_depth):
            for quadrant in cell.quadrants():
                if bool(quadrant.contains(
                    np.array([self.x[user]]), np.array([self.y[user]])
                )[0]):
                    cell = quadrant
                    break
            path.append(cell)
        # Ascend from the leaf to the first cell with enough company.
        for depth in range(len(path) - 1, -1, -1):
            inside = path[depth].contains(self.x, self.y)
            if int(inside.sum()) >= self.k:
                return CloakedQuery(
                    user=user,
                    region=path[depth],
                    anonymity_set=tuple(np.flatnonzero(inside).tolist()),
                    depth=depth,
                )
        raise InfeasibleError("population smaller than k at the root")  # pragma: no cover

    def cloak_all(self) -> list[CloakedQuery]:
        """Cloak a query from every user (the experiment workload)."""
        return [self.cloak(u) for u in range(self.x.size)]

    def __repr__(self) -> str:
        return f"QuadTreeCloak(n={self.x.size}, k={self.k}, max_depth={self.max_depth})"


class GridCloak:
    """Fixed-resolution baseline: uniform cells enlarged ring by ring."""

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        k: int,
        resolution: int = 32,
        bounds: BoundingBox | None = None,
    ):
        self.x, self.y = _validate_positions(np.asarray(x), np.asarray(y))
        if k < 1:
            raise SchemaError(f"k must be >= 1, got {k}")
        if k > self.x.size:
            raise InfeasibleError(f"k={k} exceeds the {self.x.size}-user population")
        if resolution < 1:
            raise SchemaError("resolution must be >= 1")
        self.k = int(k)
        self.resolution = int(resolution)
        self.bounds = bounds or BoundingBox(
            float(self.x.min()), float(self.x.max()) + 1e-9,
            float(self.y.min()), float(self.y.max()) + 1e-9,
        )
        self._cell_w = (self.bounds.x_hi - self.bounds.x_lo) / self.resolution
        self._cell_h = (self.bounds.y_hi - self.bounds.y_lo) / self.resolution
        self._col = np.clip(
            ((self.x - self.bounds.x_lo) / self._cell_w).astype(int), 0, self.resolution - 1
        )
        self._row = np.clip(
            ((self.y - self.bounds.y_lo) / self._cell_h).astype(int), 0, self.resolution - 1
        )

    def cloak(self, user: int) -> CloakedQuery:
        if not 0 <= user < self.x.size:
            raise SchemaError(f"unknown user id {user}")
        col, row = int(self._col[user]), int(self._row[user])
        for ring in range(self.resolution):
            c_lo, c_hi = max(col - ring, 0), min(col + ring, self.resolution - 1)
            r_lo, r_hi = max(row - ring, 0), min(row + ring, self.resolution - 1)
            inside = (
                (self._col >= c_lo) & (self._col <= c_hi)
                & (self._row >= r_lo) & (self._row <= r_hi)
            )
            if int(inside.sum()) >= self.k:
                region = BoundingBox(
                    self.bounds.x_lo + c_lo * self._cell_w,
                    self.bounds.x_lo + (c_hi + 1) * self._cell_w,
                    self.bounds.y_lo + r_lo * self._cell_h,
                    self.bounds.y_lo + (r_hi + 1) * self._cell_h,
                )
                return CloakedQuery(
                    user=user,
                    region=region,
                    anonymity_set=tuple(np.flatnonzero(inside).tolist()),
                    depth=ring,
                )
        raise InfeasibleError("population smaller than k on the whole grid")  # pragma: no cover

    def cloak_all(self) -> list[CloakedQuery]:
        return [self.cloak(u) for u in range(self.x.size)]

    def __repr__(self) -> str:
        return f"GridCloak(n={self.x.size}, k={self.k}, resolution={self.resolution})"


@dataclass(frozen=True)
class LinkageAudit:
    """Adversary-side summary of a batch of cloaked queries."""

    n_queries: int
    min_candidates: int
    avg_candidates: float
    max_pin_probability: float      # 1 / min_candidates
    avg_area_fraction: float        # mean region area / map area
    violations: int                 # queries with < k candidates

    @property
    def k_anonymous(self) -> bool:
        return self.violations == 0


def location_linkage_attack(
    queries: Sequence[CloakedQuery],
    x: Sequence[float],
    y: Sequence[float],
    k: int,
    map_bounds: BoundingBox | None = None,
) -> LinkageAudit:
    """Intersect each cloaking region with the public location snapshot.

    The adversary recomputes the candidate set independently (they do not
    trust the anonymizer's claim), so this audits the *geometry*, not the
    bookkeeping. Returns the pin-down risk profile over the batch.
    """
    x, y = _validate_positions(np.asarray(x), np.asarray(y))
    if not queries:
        raise SchemaError("no queries to audit")
    candidate_counts = []
    areas = []
    violations = 0
    for q in queries:
        inside = q.region.contains(x, y)
        count = int(inside.sum())
        candidate_counts.append(count)
        areas.append(q.region.area)
        if count < k:
            violations += 1
    total_area = (map_bounds or queries[0].region).area if map_bounds else None
    if map_bounds is None:
        # Use the hull of the snapshot as the reference map.
        map_bounds = BoundingBox(
            float(x.min()), float(x.max()) + 1e-9, float(y.min()), float(y.max()) + 1e-9
        )
        total_area = map_bounds.area
    counts = np.array(candidate_counts)
    return LinkageAudit(
        n_queries=len(queries),
        min_candidates=int(counts.min()),
        avg_candidates=float(counts.mean()),
        max_pin_probability=1.0 / max(int(counts.min()), 1),
        avg_area_fraction=float(np.mean(areas) / total_area),
        violations=violations,
    )
