"""Location privacy: spatial k-anonymity cloaking for location-based services."""

from .cloaking import (
    BoundingBox,
    CloakedQuery,
    GridCloak,
    LinkageAudit,
    QuadTreeCloak,
    location_linkage_attack,
)

__all__ = [
    "BoundingBox",
    "CloakedQuery",
    "GridCloak",
    "LinkageAudit",
    "QuadTreeCloak",
    "location_linkage_attack",
]
