"""Declarative job API: serializable configs, registries, one executor.

The service-shaped entry point to the library. A job is described once as
plain data — roles, hierarchy builders, model/algorithm specs, metrics —
and executed by :func:`run`; batches share lattice evaluation through
:func:`run_batch`::

    from repro.api import AnonymizationConfig, run

    config = AnonymizationConfig.from_dict({
        "quasi_identifiers": ["zipcode", "job"],
        "numeric_quasi_identifiers": ["age"],
        "sensitive": ["disease"],
        "models": [
            {"model": "k-anonymity", "k": 5},
            {"model": "distinct-l-diversity", "l": 2, "sensitive": "disease"},
        ],
        "algorithm": {"algorithm": "flash"},
        "metrics": ["gcp", "linkage"],
    })
    result = run(config, table)
    result.release          # the published Release
    result.to_dict()        # JSON-safe report for logs / API responses

Because configs are JSON-safe both ways (``to_dict``/``from_dict``), a job
can be queued, replayed, or shipped over the wire — the precondition for
serving anonymization as a multi-tenant service.
"""

from .config import AnonymizationConfig, build_hierarchies, build_schema
from .executor import (
    BACKENDS,
    ON_ERROR,
    PLANS,
    AnonymizationResult,
    BatchPlan,
    BatchPlanner,
    FailurePolicy,
    JobFailure,
    execute,
    jsonable,
    run,
    run_batch,
)
from .registry import (
    MetricContext,
    MetricRegistry,
    Registry,
    algorithm_registry,
    metric_registry,
    model_registry,
)

__all__ = [
    "AnonymizationConfig",
    "AnonymizationResult",
    "BACKENDS",
    "BatchPlan",
    "BatchPlanner",
    "FailurePolicy",
    "JobFailure",
    "MetricContext",
    "MetricRegistry",
    "ON_ERROR",
    "PLANS",
    "Registry",
    "algorithm_registry",
    "build_hierarchies",
    "build_schema",
    "execute",
    "jsonable",
    "metric_registry",
    "model_registry",
    "run",
    "run_batch",
]
