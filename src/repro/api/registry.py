"""String-keyed registries: the serialization seam of the declarative API.

Every privacy model and algorithm the declarative API can name is registered
here with the list of constructor parameters that fully describe an
instance. A registered class round-trips through plain dicts::

    >>> from repro.api import model_registry
    >>> spec = {"model": "t-closeness", "t": 0.2, "sensitive": "disease"}
    >>> model = model_registry.from_spec(spec)
    >>> model_registry.to_spec(model)["t"]
    0.2

``from_spec`` validates eagerly — unknown names list the registered ones,
unknown keys are named, and constructor rejections are re-raised as
:class:`~repro.errors.ConfigError` carrying the registry name — so a bad
JSON job fails at parse time, not mid-run.

Three registries ship populated:

* :data:`algorithm_registry` — spec key ``"algorithm"``; everything with the
  standard ``anonymize(table, schema, hierarchies, models)`` signature.
* :data:`model_registry` — spec key ``"model"``; every privacy model whose
  constructor arguments are JSON scalars. (δ-presence needs a live
  population :class:`~repro.core.table.Table` and personalized privacy a
  guarding-node mapping, so those remain library-API-only.)
* :data:`metric_registry` — report metrics by name, computed from a
  :class:`MetricContext` by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..algorithms import (
    Anatomy,
    BottomUpGeneralization,
    Datafly,
    Flash,
    Incognito,
    KMemberClustering,
    MDAVMicroaggregation,
    Mondrian,
    OLA,
    Slicing,
    TopDownSpecialization,
)
from ..errors import ConfigError
from ..privacy import (
    AlphaKAnonymity,
    BetaLikeness,
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    KEAnonymity,
    RecursiveCLDiversity,
    TCloseness,
)

__all__ = [
    "Registry",
    "MetricRegistry",
    "MetricContext",
    "algorithm_registry",
    "model_registry",
    "metric_registry",
]

_SCALARS = (bool, int, float, str, type(None))


@dataclass
class _Entry:
    name: str
    cls: type
    params: tuple[str, ...]
    defaults: Mapping[str, Any]
    validate: Callable[[Mapping[str, Any]], None] | None


class Registry:
    """Bidirectional name ↔ class mapping with declarative param specs.

    ``params`` double as both constructor keyword names and instance
    attribute names (every registered class stores its arguments verbatim),
    which is what makes ``to_spec``/``from_spec`` symmetric without
    per-class glue code.
    """

    def __init__(self, kind: str, spec_key: str):
        self.kind = kind
        self.spec_key = spec_key
        self._entries: dict[str, _Entry] = {}

    def register(
        self,
        name: str,
        cls: type,
        params: Sequence[str] = (),
        defaults: Mapping[str, Any] | None = None,
        validate: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> None:
        """Register ``cls`` under ``name``.

        ``defaults`` marks optional params (omitted from a spec, the default
        applies); all other params are required keys. ``validate`` may
        reject resolved kwargs before construction (e.g. a param value that
        is only reachable through the programmatic API).
        """
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._entries[name] = _Entry(
            name, cls, tuple(params), dict(defaults or {}), validate
        )

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def _entry(self, name: str) -> _Entry:
        entry = self._entries.get(name)
        if entry is None:
            raise ConfigError(
                f"unknown {self.kind} {name!r}; registered: {', '.join(self.names())}"
            )
        return entry

    def _entry_for(self, obj: Any) -> _Entry:
        for entry in self._entries.values():
            if type(obj) is entry.cls:
                return entry
        raise ConfigError(
            f"{type(obj).__name__} is not a registered {self.kind}; "
            f"registered: {', '.join(self.names())}"
        )

    def from_spec(self, spec: Mapping[str, Any]) -> Any:
        """Instantiate from a plain dict like ``{"model": "k-anonymity", "k": 5}``."""
        if not isinstance(spec, Mapping):
            raise ConfigError(
                f"a {self.kind} spec must be a mapping with a {self.spec_key!r} "
                f"key, got {type(spec).__name__}"
            )
        if self.spec_key not in spec:
            raise ConfigError(
                f"{self.kind} spec {dict(spec)!r} is missing the {self.spec_key!r} key"
            )
        entry = self._entry(spec[self.spec_key])
        unknown = sorted(set(spec) - {self.spec_key} - set(entry.params))
        if unknown:
            raise ConfigError(
                f"unknown key {unknown[0]!r} in {self.kind} spec for "
                f"{entry.name!r}; accepted keys: {', '.join(entry.params) or '(none)'}"
            )
        kwargs: dict[str, Any] = {}
        for param in entry.params:
            if param in spec:
                kwargs[param] = spec[param]
            elif param in entry.defaults:
                kwargs[param] = entry.defaults[param]
            else:
                raise ConfigError(
                    f"{self.kind} spec for {entry.name!r} is missing the "
                    f"required key {param!r}"
                )
        if entry.validate is not None:
            entry.validate(kwargs)
        try:
            return entry.cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid {self.kind} spec for {entry.name!r}: {exc}") from exc

    def to_spec(self, obj: Any) -> dict[str, Any]:
        """Serialize a registered instance back to a plain JSON-safe dict."""
        entry = self._entry_for(obj)
        spec: dict[str, Any] = {self.spec_key: entry.name}
        for param in entry.params:
            value = getattr(obj, param)
            if not isinstance(value, _SCALARS):
                raise ConfigError(
                    f"{self.kind} {entry.name!r} holds a non-serializable value "
                    f"for {param!r} ({type(value).__name__}); construct it "
                    "through the library API instead of a spec"
                )
            spec[param] = value
        return spec

    def name_of(self, obj: Any) -> str:
        return self._entry_for(obj).name


@dataclass
class MetricContext:
    """Everything a report metric may consume, bundled by the executor."""

    original: Any  # Table
    release: Any  # Release
    hierarchies: Mapping[str, Any]
    sensitive: tuple[str, ...] = ()
    extras: dict = field(default_factory=dict)


class MetricRegistry:
    """Named report metrics: ``name -> fn(MetricContext) -> JSON-able value``."""

    def __init__(self):
        self._metrics: dict[str, Callable[[MetricContext], Any]] = {}

    def register(self, name: str, fn: Callable[[MetricContext], Any]) -> None:
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        self._metrics[name] = fn

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def compute(self, name: str, context: MetricContext) -> Any:
        fn = self._metrics.get(name)
        if fn is None:
            raise ConfigError(
                f"unknown metric {name!r}; registered: {', '.join(self.names())}"
            )
        return fn(context)


# -- the stock registries ----------------------------------------------------

algorithm_registry = Registry("algorithm", "algorithm")
model_registry = Registry("privacy model", "model")
metric_registry = MetricRegistry()


def _no_hierarchical_ground(kwargs: Mapping[str, Any]) -> None:
    if kwargs.get("ground_distance") == "hierarchical":
        raise ConfigError(
            "key 'ground_distance' may not be 'hierarchical' in a t-closeness "
            "spec (it needs a live sensitive-attribute Hierarchy); construct "
            "TCloseness programmatically instead"
        )


model_registry.register("k-anonymity", KAnonymity, params=("k",))
model_registry.register(
    "distinct-l-diversity", DistinctLDiversity, params=("l", "sensitive")
)
model_registry.register(
    "entropy-l-diversity", EntropyLDiversity, params=("l", "sensitive")
)
model_registry.register(
    "recursive-l-diversity", RecursiveCLDiversity, params=("c", "l", "sensitive")
)
model_registry.register(
    "t-closeness",
    TCloseness,
    params=("t", "sensitive", "ground_distance"),
    defaults={"ground_distance": "equal"},
    validate=_no_hierarchical_ground,
)
model_registry.register(
    "alpha-k-anonymity", AlphaKAnonymity, params=("alpha", "k", "sensitive")
)
model_registry.register("beta-likeness", BetaLikeness, params=("beta", "sensitive"))
model_registry.register("ke-anonymity", KEAnonymity, params=("k", "e", "sensitive"))

algorithm_registry.register(
    "mondrian",
    Mondrian,
    params=("mode", "target", "engine"),
    defaults={"mode": "strict", "target": None, "engine": "partition"},
)
algorithm_registry.register(
    "datafly",
    Datafly,
    params=("max_suppression", "heuristic"),
    defaults={"max_suppression": 0.05, "heuristic": "distinct"},
)
algorithm_registry.register(
    "incognito", Incognito, params=("max_suppression",), defaults={"max_suppression": 0.0}
)
algorithm_registry.register(
    "ola", OLA, params=("max_suppression",), defaults={"max_suppression": 0.05}
)
algorithm_registry.register(
    "flash", Flash, params=("max_suppression",), defaults={"max_suppression": 0.0}
)
algorithm_registry.register(
    "bottom-up",
    BottomUpGeneralization,
    params=("max_suppression",),
    defaults={"max_suppression": 0.0},
)
algorithm_registry.register(
    "tds",
    TopDownSpecialization,
    params=("target", "max_steps", "engine"),
    defaults={"target": None, "max_steps": 10_000, "engine": "partition"},
)
algorithm_registry.register(
    "mdav",
    MDAVMicroaggregation,
    params=("k", "engine"),
    defaults={"engine": "partition"},
)
algorithm_registry.register(
    "kmember",
    KMemberClustering,
    params=("k", "sample_candidates", "seed", "engine"),
    defaults={"sample_candidates": 64, "seed": 0, "engine": "partition"},
)
algorithm_registry.register(
    "anatomy",
    Anatomy,
    params=("l", "seed"),
    defaults={"seed": 0},
)
algorithm_registry.register(
    "slicing",
    Slicing,
    params=("k", "max_column_width", "seed"),
    defaults={"max_column_width": 2, "seed": 0},
)


def _register_stock_metrics() -> None:
    from ..attacks.linkage import linkage_risks
    from ..metrics.discernibility import c_avg, discernibility_of_release
    from ..metrics.entropy_loss import non_uniform_entropy
    from ..metrics.loss import gcp
    from ..metrics.precision import precision

    metric_registry.register(
        "gcp", lambda ctx: gcp(ctx.original, ctx.release, ctx.hierarchies)
    )
    metric_registry.register("precision", lambda ctx: precision(ctx.release, ctx.hierarchies))
    metric_registry.register(
        "non_uniform_entropy",
        lambda ctx: non_uniform_entropy(ctx.original, ctx.release, ctx.hierarchies),
    )
    metric_registry.register(
        "discernibility", lambda ctx: discernibility_of_release(ctx.release)
    )
    metric_registry.register(
        "c_avg",
        # Normalized by the job's requested k (C_AVG's definition); only a
        # job with no k-bearing model falls back to the observed minimum.
        lambda ctx: c_avg(
            ctx.release.partition(),
            k=int(
                ctx.extras.get("target_k")
                or max(int(ctx.release.equivalence_class_sizes().min()), 1)
            ),
        ),
    )
    metric_registry.register("linkage", lambda ctx: linkage_risks(ctx.release))
    metric_registry.register("homogeneity", _homogeneity)


def _homogeneity(ctx: MetricContext) -> dict:
    if not ctx.sensitive:
        raise ConfigError(
            "metric 'homogeneity' needs a sensitive attribute; declare one "
            "under the 'sensitive' key"
        )
    from ..attacks.attribute import homogeneity_attack

    return homogeneity_attack(ctx.release, ctx.sensitive[0])


_register_stock_metrics()
