"""The declarative job description: :class:`AnonymizationConfig`.

A config captures everything :func:`repro.api.run` needs apart from the
data itself — attribute roles, hierarchy builders, privacy-model specs, the
algorithm spec, a suppression budget, and the report metrics — as plain
JSON-safe values. One job written as JSON runs identically through
``run(AnonymizationConfig.from_dict(...))``, the CLI ``--config`` flag, and
(indirectly) the legacy :meth:`~repro.core.anonymizer.Anonymizer.apply`
shim, because all three funnel into the same executor.

Hierarchy specs name a builder instead of carrying a live object::

    {"builder": "auto"}                      # pick per column type (default)
    {"builder": "flat"}                      # one level: value -> "*"
    {"builder": "prefix"}                    # digit-string prefix masking
    {"builder": "interval", "bins": 16}      # uniform numeric intervals
    {"builder": "interval", "cuts": [0, 18, 40, 65, 120]}
    {"builder": "levels", "rows": {"a": ["ab", "*"], "b": ["ab", "*"]}}
    {"builder": "tree", "tree": {"EU": ["fr", "es"], "AS": ["jp"]}}

``flat``/``prefix``/bin-count ``interval`` builders derive the domain from
the table at run time, so one config replays against fresh extracts of the
same shape; ``cuts``/``levels``/``tree`` pin the domain explicitly.
Validation errors always name the offending key.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from ..core.cache import check_cache_bytes
from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.schema import Schema
from ..core.table import Table, check_chunk_rows
from ..errors import ConfigError
from .registry import algorithm_registry, metric_registry, model_registry

__all__ = ["AnonymizationConfig", "build_hierarchies", "build_schema"]

_BUILDERS = ("auto", "flat", "prefix", "interval", "levels", "tree")


@dataclass(frozen=True)
class AnonymizationConfig:
    """Declarative, serializable description of one anonymization job.

    Construct directly, or from plain data via :meth:`from_dict` /
    :meth:`from_json`; both validate eagerly and raise
    :class:`~repro.errors.ConfigError` naming the offending key.

    Example (doctested)::

        >>> config = AnonymizationConfig.from_dict({
        ...     "quasi_identifiers": ["zipcode"],
        ...     "models": [{"model": "k-anonymity", "k": 5}],
        ... })
        >>> config.algorithm                     # defaults are filled in
        {'algorithm': 'mondrian'}
        >>> AnonymizationConfig.from_json(config.to_json()) == config
        True
        >>> AnonymizationConfig.from_dict(
        ...     {"quasi_identifiers": ["zipcode"],
        ...      "models": [{"model": "k-anon"}]})  # doctest: +ELLIPSIS
        Traceback (most recent call last):
            ...
        repro.errors.ConfigError: unknown privacy model 'k-anon'; registered: ...
    """

    #: Categorical quasi-identifier columns.
    quasi_identifiers: tuple[str, ...] = ()
    #: Numeric quasi-identifier columns.
    numeric_quasi_identifiers: tuple[str, ...] = ()
    #: Sensitive columns (first one feeds sensitive-attribute metrics).
    sensitive: tuple[str, ...] = ()
    #: Direct identifiers, removed before anonymization.
    drop: tuple[str, ...] = ()
    #: Hierarchy spec per QI; QIs without an entry get ``{"builder": "auto"}``.
    hierarchies: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    #: Privacy-model specs (see :data:`repro.api.model_registry`).
    models: tuple[Mapping[str, Any], ...] = ()
    #: Algorithm spec (see :data:`repro.api.algorithm_registry`).
    algorithm: Mapping[str, Any] = field(
        default_factory=lambda: {"algorithm": "mondrian"}
    )
    #: Suppression budget override; None keeps the algorithm's own default.
    max_suppression: float | None = None
    #: Report metrics computed into the result (see metric registry).
    metrics: tuple[str, ...] = ()
    #: Base bin count for ``auto``/bin-count ``interval`` hierarchies.
    bins: int = 16
    #: Engine-cache byte budget for this job's lattice evaluator; None
    #: keeps the engine default (256 MiB). Batch planning may slice a
    #: global ``run_batch(cache_bytes=...)`` budget further, but never
    #: above this cap.
    cache_bytes: int | None = None
    #: Batch execution backend this job asks for: "thread" (shared-engine
    #: thread pool), "process" (shared-memory worker processes), or None to
    #: accept the batch default. A ``run_batch(backend=...)`` argument
    #: overrides; jobs in one batch must agree.
    backend: str | None = None
    #: Row-slice size for streaming node evaluation (and chunked packing);
    #: None evaluates in one shot. Bounds the engine's per-QI intermediate
    #: arrays to ``chunk_rows`` elements without changing any result.
    chunk_rows: int | None = None
    #: Cooperative per-job time budget in seconds; None means unbounded.
    #: Enforced at node-evaluation checkpoints (engine algorithms), so an
    #: overrunning job is interrupted with
    #: :class:`~repro.errors.JobTimeoutError` at the next node boundary.
    #: In a batch, the tighter of this and ``run_batch(job_timeout=...)``
    #: wins per job.
    job_timeout: float | None = None

    def __post_init__(self):
        # Normalize sequence fields to tuples so configs hash/compare sanely
        # even when constructed with lists (e.g. straight from JSON).
        for name in ("quasi_identifiers", "numeric_quasi_identifiers", "sensitive",
                     "drop", "metrics"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        object.__setattr__(
            self, "models", tuple(dict(m) for m in self.models)
        )
        object.__setattr__(self, "algorithm", dict(self.algorithm))
        object.__setattr__(
            self, "hierarchies", {k: dict(v) for k, v in dict(self.hierarchies).items()}
        )
        self.validate()

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if not self.quasi_identifiers and not self.numeric_quasi_identifiers:
            raise ConfigError(
                "config needs at least one entry under 'quasi_identifiers' or "
                "'numeric_quasi_identifiers'"
            )
        seen: dict[str, str] = {}
        for key in ("quasi_identifiers", "numeric_quasi_identifiers", "sensitive", "drop"):
            for name in getattr(self, key):
                if name in seen:
                    raise ConfigError(
                        f"column {name!r} appears under both {seen[name]!r} and {key!r}"
                    )
                seen[name] = key
        qi_set = set(self.quasi_identifiers) | set(self.numeric_quasi_identifiers)
        for name, spec in self.hierarchies.items():
            if name not in qi_set:
                raise ConfigError(
                    f"key {name!r} under 'hierarchies' is not a declared quasi-identifier"
                )
            self._validate_hierarchy_spec(name, spec)
        # Model/algorithm specs are built (and discarded) to surface bad
        # names, keys, and parameter values at config-construction time.
        for spec in self.models:
            model_registry.from_spec(spec)
        algorithm = algorithm_registry.from_spec(self.algorithm)
        if self.max_suppression is not None and not hasattr(algorithm, "max_suppression"):
            raise ConfigError(
                f"key 'max_suppression' does not apply to algorithm "
                f"{algorithm_registry.name_of(algorithm)!r} (no suppression "
                "budget); remove the key or pick a budgeted algorithm"
            )
        # Structural needs knowable at config time fail at parse time, not
        # mid-run: MDAV clusters numeric QIs; Anatomy separates exactly one
        # sensitive column.
        algorithm_name = algorithm_registry.name_of(algorithm)
        if algorithm_name == "mdav" and not self.numeric_quasi_identifiers:
            raise ConfigError(
                "algorithm 'mdav' needs at least one entry under "
                "'numeric_quasi_identifiers'"
            )
        if algorithm_name == "anatomy" and len(self.sensitive) != 1:
            raise ConfigError(
                f"algorithm 'anatomy' needs exactly one 'sensitive' column, "
                f"got {len(self.sensitive)}"
            )
        for name in self.metrics:
            if name not in metric_registry:
                raise ConfigError(
                    f"unknown metric {name!r} under 'metrics'; registered: "
                    f"{', '.join(metric_registry.names())}"
                )
        if self.max_suppression is not None and not 0 <= self.max_suppression < 1:
            raise ConfigError(
                f"key 'max_suppression' must lie in [0, 1), got {self.max_suppression}"
            )
        if self.bins < 1:
            raise ConfigError(f"key 'bins' must be >= 1, got {self.bins}")
        if self.cache_bytes is not None:
            # Rejected here, not when the engine is finally built: a bad
            # budget in a queued job file should fail at parse time.
            try:
                check_cache_bytes(self.cache_bytes)
            except ValueError as exc:
                raise ConfigError(f"key 'cache_bytes' {exc}") from None
            if not getattr(type(algorithm), "uses_evaluator", False):
                # Same silent-knob guard as max_suppression above: a memory
                # bound the algorithm can never consume must not validate.
                raise ConfigError(
                    f"key 'cache_bytes' does not apply to algorithm "
                    f"{algorithm_registry.name_of(algorithm)!r} (no lattice "
                    "engine); remove the key or pick a full-domain algorithm"
                )
        if self.backend is not None:
            if self.backend not in ("thread", "process"):
                raise ConfigError(
                    f"key 'backend' must be one of thread, process; "
                    f"got {self.backend!r}"
                )
            if self.backend == "process" and not getattr(
                type(algorithm), "uses_evaluator", False
            ):
                # The process tier exists to parallelize lattice-engine
                # work; an engine-less job asking for it is a silent knob.
                raise ConfigError(
                    f"key 'backend' = 'process' does not apply to algorithm "
                    f"{algorithm_registry.name_of(algorithm)!r} (no lattice "
                    "engine); remove the key or pick a full-domain algorithm"
                )
        if self.job_timeout is not None:
            value = self.job_timeout
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not math.isfinite(value)
                or value <= 0
            ):
                raise ConfigError(
                    f"key 'job_timeout' must be a positive number of seconds, "
                    f"got {value!r}"
                )
        if self.chunk_rows is not None:
            try:
                check_chunk_rows(self.chunk_rows)
            except ValueError as exc:
                raise ConfigError(f"key 'chunk_rows' {exc}") from None
            if not getattr(type(algorithm), "uses_evaluator", False):
                raise ConfigError(
                    f"key 'chunk_rows' does not apply to algorithm "
                    f"{algorithm_registry.name_of(algorithm)!r} (no lattice "
                    "engine); remove the key or pick a full-domain algorithm"
                )

    def _validate_hierarchy_spec(self, name: str, spec: Mapping[str, Any]) -> None:
        builder = spec.get("builder")
        if builder not in _BUILDERS:
            raise ConfigError(
                f"hierarchy spec for {name!r} names unknown builder {builder!r}; "
                f"one of: {', '.join(_BUILDERS)}"
            )
        numeric = name in self.numeric_quasi_identifiers
        if builder == "interval" and not numeric:
            raise ConfigError(
                f"hierarchy builder 'interval' for {name!r} needs a numeric QI; "
                "declare it under 'numeric_quasi_identifiers'"
            )
        if builder in ("flat", "prefix", "levels", "tree") and numeric:
            raise ConfigError(
                f"hierarchy builder {builder!r} for {name!r} needs a categorical "
                "QI; numeric QIs take 'interval' (or 'auto')"
            )
        if builder == "levels" and not isinstance(spec.get("rows"), Mapping):
            raise ConfigError(
                f"hierarchy builder 'levels' for {name!r} needs a 'rows' mapping "
                "of ground value -> level labels"
            )
        if builder == "tree" and not isinstance(spec.get("tree"), Mapping):
            raise ConfigError(
                f"hierarchy builder 'tree' for {name!r} needs a 'tree' mapping"
            )
        allowed = {
            "auto": {"builder"},
            "flat": {"builder", "root"},
            "prefix": {"builder"},
            "interval": {"builder", "bins", "cuts", "merge_factor"},
            "levels": {"builder", "rows"},
            "tree": {"builder", "tree", "root"},
        }[builder]
        unknown = sorted(set(spec) - allowed)
        if unknown:
            raise ConfigError(
                f"unknown key {unknown[0]!r} in hierarchy spec for {name!r} "
                f"(builder {builder!r} accepts: {', '.join(sorted(allowed))})"
            )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-safe dict; ``from_dict`` round-trips it exactly."""
        out = asdict(self)
        for key in ("quasi_identifiers", "numeric_quasi_identifiers", "sensitive",
                    "drop", "metrics"):
            out[key] = list(out[key])
        out["models"] = [dict(m) for m in self.models]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnonymizationConfig":
        if not isinstance(data, Mapping):
            raise ConfigError(f"config must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown key {unknown[0]!r} in config; accepted keys: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "AnonymizationConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


# -- materialization against a concrete table --------------------------------


def build_schema(config: AnonymizationConfig, table: Table) -> Schema:
    """Schema from the config's roles; undeclared columns are insensitive."""
    declared = (
        set(config.quasi_identifiers)
        | set(config.numeric_quasi_identifiers)
        | set(config.sensitive)
        | set(config.drop)
    )
    missing = [name for name in declared if name not in table.column_names]
    if missing:
        raise ConfigError(f"config names column {missing[0]!r} not present in the table")
    return Schema.build(
        quasi_identifiers=config.quasi_identifiers,
        numeric_quasi_identifiers=config.numeric_quasi_identifiers,
        sensitive=config.sensitive,
        identifying=config.drop,
        insensitive=[
            name for name in table.column_names if name not in declared
        ],
    )


def build_hierarchies(config: AnonymizationConfig, table: Table) -> dict:
    """Materialize every QI's hierarchy spec against the concrete table."""
    hierarchies: dict = {}
    for name in config.quasi_identifiers:
        spec = config.hierarchies.get(name, {"builder": "auto"})
        hierarchies[name] = _build_categorical(name, spec, table, config)
    for name in config.numeric_quasi_identifiers:
        spec = config.hierarchies.get(name, {"builder": "auto"})
        hierarchies[name] = _build_interval(name, spec, table, config)
    return hierarchies


def _build_categorical(
    name: str, spec: Mapping[str, Any], table: Table, config: AnonymizationConfig
) -> Hierarchy:
    builder = spec["builder"] if "builder" in spec else "auto"
    values = sorted(set(table.column(name).decode()), key=str)
    if builder == "auto":
        return _prefix_or_flat(values)
    if builder == "flat":
        return Hierarchy.flat(values, root=spec.get("root", "*"))
    if builder == "prefix":
        hierarchy = _prefix_hierarchy(values)
        if hierarchy is None:
            raise ConfigError(
                f"hierarchy builder 'prefix' for {name!r} needs fixed-width "
                "digit-string values (e.g. zip codes); use 'flat' or 'levels'"
            )
        return hierarchy
    if builder == "levels":
        try:
            return Hierarchy.from_levels(spec["rows"])
        except Exception as exc:
            raise ConfigError(
                f"hierarchy spec 'rows' for {name!r} is malformed: {exc}"
            ) from exc
    try:
        return Hierarchy.from_tree(spec["tree"], root=spec.get("root", "*"))
    except Exception as exc:
        raise ConfigError(f"hierarchy spec 'tree' for {name!r} is malformed: {exc}") from exc


def _build_interval(
    name: str, spec: Mapping[str, Any], table: Table, config: AnonymizationConfig
) -> IntervalHierarchy:
    merge_factor = int(spec.get("merge_factor", 2))
    if "cuts" in spec:
        try:
            return IntervalHierarchy(list(spec["cuts"]), merge_factor=merge_factor)
        except Exception as exc:
            raise ConfigError(f"hierarchy spec 'cuts' for {name!r} is malformed: {exc}") from exc
    data = table.values(name)
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    n_bins = int(spec.get("bins", config.bins))
    return IntervalHierarchy.uniform(
        lo - 0.001 * span, hi + 0.001 * span, n_bins=n_bins, merge_factor=merge_factor
    )


def _prefix_or_flat(values: list) -> Hierarchy:
    """Digit-string domains get prefix-masking levels; others get flat."""
    return _prefix_hierarchy(values) or Hierarchy.flat(values)


def _prefix_hierarchy(values: list) -> Hierarchy | None:
    """Prefix-masking hierarchy for fixed-width digit strings, else None."""
    texts = [str(v) for v in values]
    if not texts:
        return None
    if all(t.isdigit() and len(t) == len(texts[0]) for t in texts) and len(texts[0]) > 1:
        width = len(texts[0])
        rows = {
            v: [str(v)[: width - i] + "*" * i for i in range(1, width)] + ["*"]
            for v in values
        }
        return Hierarchy.from_levels(rows)
    return None
