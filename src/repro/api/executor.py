"""The job executor: one entry point that every public surface funnels into.

:func:`execute` is the single code path that turns (table, schema,
hierarchies, models, algorithm) into a :class:`AnonymizationResult`; the
declarative :func:`run`, the batch :func:`run_batch`, the CLI, and the
legacy :meth:`Anonymizer.apply <repro.core.anonymizer.Anonymizer.apply>`
shim all call it, which is what makes a job expressed once produce
byte-identical releases no matter which door it enters through.

:func:`run_batch` additionally shares one
:class:`~repro.core.engine.LatticeEvaluator` across all jobs that agree on
roles and hierarchy specs, so a multi-config sweep (an algorithm shootout, a
k-sweep) evaluates each lattice node once — the engine's memoized
``GroupStats`` serve every job; ``LatticeEvaluator.cache_info()`` shows the
sharing (``hits`` grow, ``from_rows`` do not). With ``workers > 1`` the
jobs of a batch run on a thread pool against the same shared evaluator,
whose cache is thread-safe and single-flight — two workers never evaluate
the same lattice node twice, and results are byte-identical to sequential
execution (see ``docs/architecture.md``).

Batches are laid out by the cache-aware :class:`BatchPlanner`. It estimates
each environment's engine-cache footprint from the hierarchy LUTs and the
lattice size (:func:`repro.core.cache.estimate_cache_footprint`), and —
when a global ``cache_bytes`` budget is set and the sweep's combined
working set overflows it — schedules environments in **waves**: each wave's
evaluators get budget slices large enough to hold their working sets, and a
finished wave's caches are released before the next fills. That keeps an
over-budget sweep byte-identical to sequential execution with zero
``recomputed_after_evict`` thrash, instead of silently re-computing evicted
nodes mid-run. ``run_batch(plan="auto"|"waves"|"shared", cache_bytes=...)``
are the knobs; the planner can also shard a wave into per-worker evaluator
clones whose memos merge back between waves (``BatchPlanner(shard=True)``).
"""

from __future__ import annotations

import math
import signal
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .._version import __version__
from ..core import faults
from ..core.cache import (
    DEFAULT_CACHE_BYTES,
    EngineCacheStore,
    check_cache_bytes,
    estimate_cache_footprint,
)
from ..core.deadline import Deadline, current_deadline, deadline_scope, tightest
from ..core.engine import LatticeEvaluator
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from ..errors import (
    BatchDeadlineError,
    ConfigError,
    HierarchyError,
    SchemaError,
    classify_error,
)
from .config import AnonymizationConfig, build_hierarchies, build_schema
from .registry import (
    MetricContext,
    algorithm_registry,
    metric_registry,
    model_registry,
)

__all__ = [
    "AnonymizationResult",
    "BACKENDS",
    "BatchPlan",
    "BatchPlanner",
    "FailurePolicy",
    "JobFailure",
    "ON_ERROR",
    "PLANS",
    "execute",
    "run",
    "run_batch",
    "jsonable",
]

#: Recognized ``plan=`` values for :func:`run_batch`.
PLANS = ("auto", "waves", "shared")

#: Recognized ``backend=`` values for :func:`run_batch`.
BACKENDS = ("thread", "process")

#: Recognized ``on_error=`` values for :func:`run_batch`.
ON_ERROR = ("raise", "collect")

#: Deterministic input errors that a retry can never fix (same config, same
#: table, same verdict), plus the batch deadline — once it has passed, every
#: further attempt is born expired.
_NON_RETRYABLE = (ConfigError, SchemaError, HierarchyError, BatchDeadlineError)

#: Seam for tests: the backoff sleeper (monkeypatch to assert the schedule
#: without actually waiting).
_sleep = time.sleep


def _check_seconds(key: str, value: Any) -> None:
    """Reject non-positive / non-finite time budgets with the key-naming style."""
    if value is None:
        return
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
        or value <= 0
    ):
        raise ConfigError(
            f"key {key!r} must be a positive number of seconds, got {value!r}"
        )


@dataclass(frozen=True)
class FailurePolicy:
    """Validated failure-handling policy of one batch.

    ``on_error="raise"`` (default) preserves the historic contract: the
    first failing job aborts the whole batch with its original exception.
    ``"collect"`` turns each failing job into a :class:`JobFailure` record
    in the results list instead, optionally after ``retries`` extra
    attempts spaced by exponential backoff (``retry_backoff * 2**(attempt-1)``
    seconds). ``job_timeout`` and ``batch_deadline`` are cooperative
    budgets enforced at the engine's node-evaluation checkpoints.
    Validation happens at construction — nonsense combinations fail before
    any job runs.
    """

    on_error: str = "raise"
    job_timeout: float | None = None
    batch_deadline: float | None = None
    retries: int = 0
    retry_backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR:
            raise ConfigError(
                f"key 'on_error' must be one of {', '.join(ON_ERROR)}; "
                f"got {self.on_error!r}"
            )
        _check_seconds("job_timeout", self.job_timeout)
        _check_seconds("batch_deadline", self.batch_deadline)
        if (
            isinstance(self.retries, bool)
            or not isinstance(self.retries, int)
            or self.retries < 0
        ):
            raise ConfigError(
                f"key 'retries' must be a non-negative integer, got {self.retries!r}"
            )
        if (
            isinstance(self.retry_backoff, bool)
            or not isinstance(self.retry_backoff, (int, float))
            or not math.isfinite(self.retry_backoff)
            or self.retry_backoff < 0
        ):
            raise ConfigError(
                f"key 'retry_backoff' must be a non-negative number of seconds, "
                f"got {self.retry_backoff!r}"
            )
        if self.retries and self.on_error == "raise":
            raise ConfigError(
                "key 'retries' only applies with on_error='collect'; under "
                "'raise' the first failure aborts the batch, so a retry "
                "budget could never be spent"
            )
        if self.retry_backoff and not self.retries:
            raise ConfigError(
                "key 'retry_backoff' without 'retries' is a silent knob; "
                "set 'retries' >= 1 or drop 'retry_backoff'"
            )


@dataclass
class JobFailure:
    """Structured record of one job's failure inside a collected batch.

    Takes a failed job's slot in the :func:`run_batch` results list under
    ``on_error="collect"``. ``error`` is ``{"type", "message", "traceback"}``
    — ``type`` being the :data:`repro.errors.ERROR_TAXONOMY` label of the
    final attempt's exception — and ``attempts`` holds one record per
    attempt (``attempt``, ``seconds``, ``error``, and ``backoff`` when a
    retry followed). ``release``/``engine`` are always ``None`` and
    ``status`` is ``"failed"``, so result-shaped consumers can branch on
    the same attributes they read from :class:`AnonymizationResult`.
    """

    config: AnonymizationConfig | None
    error: dict[str, Any]
    attempts: list[dict[str, Any]] = field(default_factory=list)
    status: str = "failed"

    # Result-shaped accessors (class attributes, not fields: a failure
    # never carries a release or an engine).
    release = None
    engine = None

    @property
    def error_type(self) -> str:
        return str(self.error.get("type", "runtime"))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "status": self.status,
            "algorithm": (
                self.config.algorithm.get("algorithm")
                if self.config is not None
                else None
            ),
            "error": self.error,
            "attempts": self.attempts,
        }
        if self.config is not None:
            out["config"] = self.config.to_dict()
        return jsonable(out)


def _failure_record(exc: BaseException) -> dict[str, Any]:
    """The picklable ``{"type", "message", "traceback"}`` view of an error."""
    return {
        "type": classify_error(exc),
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays and tuples into JSON types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (bool, int, float, str, type(None))):
        return value
    return str(value)


@dataclass
class AnonymizationResult:
    """The executor's bundled output: release + audit trail + reports.

    ``to_dict()`` is JSON-safe end to end — what a service logs or returns
    as an API response; the :class:`~repro.core.release.Release` itself
    (with the published table) stays on the object for library callers.
    """

    release: Release
    models: tuple = ()
    config: AnonymizationConfig | None = None
    timings: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    engine: LatticeEvaluator | None = None
    #: ``"ok"`` always — the failed counterpart is a :class:`JobFailure`
    #: (``status="failed"``); the shared field lets result consumers branch
    #: without isinstance checks.
    status: str = "ok"
    #: Error record of the *last failed attempt* when the job only
    #: succeeded after retries; ``None`` for a first-attempt success.
    error: dict[str, Any] | None = None
    #: Number of attempts it took to produce this result (1 = no retries).
    attempts: int = 1

    @property
    def table(self) -> Table:
        return self.release.table

    @property
    def node(self) -> tuple | None:
        """Chosen lattice node (full-domain algorithms only)."""
        return self.release.node

    @property
    def suppressed(self) -> int:
        return self.release.suppressed

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "status": self.status,
            "version": __version__,
            "algorithm": self.release.algorithm,
            "models": [getattr(m, "name", str(m)) for m in self.models],
            "summary": self.release.summary(),
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
            "metrics": self.metrics,
            "attempts": self.attempts,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.engine is not None:
            out["engine_cache"] = self.engine.cache_info()
        partition_cache = (self.release.info or {}).get("partition_cache")
        if partition_cache is not None:
            # Local-recoding algorithms report their PartitionEngine
            # counters the same way lattice jobs report engine_cache.
            out["partition_cache"] = dict(partition_cache)
        if self.config is not None:
            out["config"] = self.config.to_dict()
        return jsonable(out)


def execute(
    table: Table,
    schema: Schema,
    hierarchies: Mapping[str, Any],
    models: Sequence,
    algorithm=None,
    metrics: Sequence[str] = (),
    evaluator: LatticeEvaluator | None = None,
    config: AnonymizationConfig | None = None,
) -> AnonymizationResult:
    """Run one job from resolved (live) objects.

    The lowest-level entry point — :func:`run`, :func:`run_batch`, the CLI,
    and ``Anonymizer.apply`` are wrappers over it. ``evaluator`` is handed
    to lattice-search algorithms that advertise ``uses_evaluator`` so batch
    callers can share memoized node statistics across jobs.
    """
    if algorithm is None:
        from ..algorithms.mondrian import Mondrian

        algorithm = Mondrian(mode="strict")
    timings: dict[str, float] = {}
    start = time.perf_counter()
    uses_evaluator = evaluator is not None and getattr(
        type(algorithm), "uses_evaluator", False
    )
    if uses_evaluator:
        release = algorithm.anonymize(
            table, schema, hierarchies, list(models), evaluator=evaluator
        )
    else:
        release = algorithm.anonymize(table, schema, hierarchies, list(models))
    timings["anonymize"] = time.perf_counter() - start

    start = time.perf_counter()
    # Metrics defined against the job's target k (e.g. C_AVG) must see the
    # requested k, not whatever minimum class size the release happens to have.
    target_ks = [int(m.k) for m in models if hasattr(m, "k")]
    context = MetricContext(
        original=table,
        release=release,
        hierarchies=hierarchies,
        sensitive=tuple(schema.sensitive),
        extras={"target_k": max(target_ks)} if target_ks else {},
    )
    computed = {name: metric_registry.compute(name, context) for name in metrics}
    if metrics:
        timings["metrics"] = time.perf_counter() - start
    return AnonymizationResult(
        release=release,
        models=tuple(models),
        config=config,
        timings=timings,
        metrics=computed,
        # Only algorithms that consumed the evaluator report its cache —
        # attaching it to e.g. a Mondrian run would imply sharing that
        # never happened.
        engine=evaluator if uses_evaluator else None,
    )


def _build_environment(
    config: AnonymizationConfig,
    table: Table,
    hierarchy_overrides: Mapping[str, Any] | None = None,
) -> tuple[Schema, dict]:
    """(schema, hierarchies) materialized from a config against a table."""
    schema = build_schema(config, table)
    hierarchies = build_hierarchies(config, table)
    if hierarchy_overrides:
        hierarchies.update(hierarchy_overrides)
    return schema, hierarchies


def _resolve(
    config: AnonymizationConfig,
    table: Table,
    hierarchy_overrides: Mapping[str, Any] | None = None,
    environment: tuple[Schema, dict] | None = None,
):
    """(schema, hierarchies, models, algorithm) from a config + table.

    ``environment`` lets batch callers reuse one (schema, hierarchies)
    build across jobs — hierarchy building decodes every categorical QI
    (O(n_rows) each), which is pure waste to repeat per job.
    """
    if environment is None:
        environment = _build_environment(config, table, hierarchy_overrides)
    schema, hierarchies = environment
    models = [model_registry.from_spec(spec) for spec in config.models]
    algorithm = algorithm_registry.from_spec(config.algorithm)
    if config.max_suppression is not None and hasattr(algorithm, "max_suppression"):
        algorithm.max_suppression = float(config.max_suppression)
    return schema, hierarchies, models, algorithm


def run(
    config: AnonymizationConfig,
    table: Table,
    evaluator: LatticeEvaluator | None = None,
    hierarchies: Mapping[str, Any] | None = None,
    environment: tuple[Schema, dict] | None = None,
) -> AnonymizationResult:
    """Execute one declarative job against a table.

    ``hierarchies`` optionally overrides spec-built hierarchies with live
    objects (curated domain trees that have no JSON spec form); everything
    else still comes from the config. ``environment`` is a prebuilt
    (schema, hierarchies) pair — :func:`run_batch` passes it so a sweep
    materializes each distinct environment once.

    Example (doctested)::

        >>> from repro.core.table import Table
        >>> table = Table.from_dict(
        ...     {"zip": ["130", "130", "148", "148"]}, categorical=["zip"])
        >>> result = run(AnonymizationConfig.from_dict({
        ...     "quasi_identifiers": ["zip"],
        ...     "models": [{"model": "k-anonymity", "k": 2}],
        ...     "algorithm": {"algorithm": "flash"},
        ... }), table)
        >>> result.node       # level 0 already satisfies k=2 here
        (0,)
        >>> result.release.table.column("zip").decode()
        ['130', '130', '148', '148']
        >>> sorted(result.to_dict())  # JSON-safe report for logs/services
        ['algorithm', 'attempts', 'config', 'metrics', 'models', 'status', 'summary', 'timings', 'version']
    """
    if config.job_timeout is not None and current_deadline() is None:
        # Single-job entry: arm the config's own budget here. Batch
        # execution arms the effective (config + policy + batch) deadline
        # itself before calling in, signalled by an already-active scope.
        with deadline_scope(Deadline(config.job_timeout, kind="job-timeout")):
            return run(
                config,
                table,
                evaluator=evaluator,
                hierarchies=hierarchies,
                environment=environment,
            )
    timings: dict[str, float] = {}
    start = time.perf_counter()
    schema, built, models, algorithm = _resolve(
        config, table, hierarchies, environment
    )
    if (
        evaluator is None
        and (config.cache_bytes is not None or config.chunk_rows is not None)
        and getattr(type(algorithm), "uses_evaluator", False)
    ):
        # A config-level engine budget (or chunking request) only binds if
        # the evaluator is built out here — the algorithm's own fallback
        # evaluator would use the library defaults. Budgeted evaluators get
        # the stratum-aware eviction policy: pressure is expected, so shed
        # nodes that roll back up in O(n_groups) instead of O(n_rows)
        # recomputations.
        evaluator = _make_evaluator(
            table,
            schema,
            built,
            cache_bytes=config.cache_bytes,
            cache_policy="stratum" if config.cache_bytes is not None else "lru",
            chunk_rows=config.chunk_rows,
        )
    timings["prepare"] = time.perf_counter() - start
    result = execute(
        table,
        schema,
        built,
        models,
        algorithm,
        metrics=config.metrics,
        evaluator=evaluator,
        config=config,
    )
    result.timings = {**timings, **result.timings}
    return result


def _effective_deadline(
    config: AnonymizationConfig,
    policy: FailurePolicy,
    batch_deadline: Deadline | None,
) -> Deadline | None:
    """Tightest of the job's own timeout(s) and the batch deadline.

    Per-job timeouts restart on every attempt (a fresh :class:`Deadline`
    each call); the batch deadline is one shared absolute instant.
    """
    job_seconds = [
        s for s in (config.job_timeout, policy.job_timeout) if s is not None
    ]
    job = Deadline(min(job_seconds), kind="job-timeout") if job_seconds else None
    return tightest(job, batch_deadline)


def _attempt_job(
    config: AnonymizationConfig,
    table: Table,
    policy: FailurePolicy,
    batch_deadline: Deadline | None,
    evaluator: LatticeEvaluator | None = None,
    environment: tuple[Schema, dict] | None = None,
) -> "AnonymizationResult | JobFailure":
    """Run one batch job under the failure policy: deadlines, retries, backoff.

    The shared job runner of every execution tier — the in-parent
    sequential loop, the thread pool, and the process-backend worker all
    funnel through it, so retry/timeout semantics cannot drift between
    backends. Under ``on_error="raise"`` the first failure propagates
    unchanged (the historic contract); under ``"collect"`` the job's final
    failure comes back as a :class:`JobFailure` carrying every attempt's
    timing and error record.
    """
    attempts: list[dict[str, Any]] = []
    total = policy.retries + 1
    for attempt in range(1, total + 1):
        started = time.perf_counter()
        try:
            if batch_deadline is not None:
                batch_deadline.check()
            with deadline_scope(
                _effective_deadline(config, policy, batch_deadline)
            ):
                result = run(config, table, evaluator=evaluator, environment=environment)
        except Exception as exc:  # noqa: BLE001 - isolating a bad job is the point
            record: dict[str, Any] = {
                "attempt": attempt,
                "seconds": round(time.perf_counter() - started, 6),
                "error": _failure_record(exc),
            }
            attempts.append(record)
            if policy.on_error == "raise":
                raise
            if attempt < total and not isinstance(exc, _NON_RETRYABLE):
                backoff = policy.retry_backoff * (2 ** (attempt - 1))
                if batch_deadline is not None:
                    # Sleeping past the batch deadline would only convert
                    # this failure into a less informative "deadline" one.
                    backoff = min(backoff, max(batch_deadline.remaining(), 0.0))
                record["backoff"] = round(backoff, 6)
                if backoff > 0:
                    _sleep(backoff)
                continue
            return JobFailure(config=config, error=record["error"], attempts=attempts)
        result.attempts = attempt
        if attempts:
            # Succeeded after retries: keep the last failed attempt's error
            # on the result for the audit trail.
            result.error = attempts[-1]["error"]
        return result
    raise AssertionError("unreachable: every attempt returns or raises")


def _environment_key(config: AnonymizationConfig) -> tuple[str, str]:
    """(evaluator_key, schema_key) for batch sharing.

    Jobs with equal evaluator keys see the same hierarchies and lattice
    evaluator — node statistics only depend on QI roles, hierarchy specs,
    and dropped columns; an explicit per-job ``cache_bytes`` is part of the
    key too, since jobs demanding different budgets cannot share one store.
    The schema key additionally pins the sensitive roles: two jobs may
    share an evaluator yet need different schemas, and collapsing them
    would hand job B job A's sensitive column (metrics, release schema)
    without any error.
    """
    import json

    evaluator_key = json.dumps(
        {
            "qi": config.quasi_identifiers,
            "num": config.numeric_quasi_identifiers,
            "drop": config.drop,
            "hier": config.hierarchies,
            "bins": config.bins,
            "cache_bytes": config.cache_bytes,
            # chunk_rows changes no result, but an evaluator streams or
            # doesn't — jobs demanding different chunking can't share one.
            "chunk_rows": config.chunk_rows,
        },
        sort_keys=True,
        default=list,
    )
    schema_key = evaluator_key + json.dumps(
        {"sensitive": config.sensitive}, sort_keys=True, default=list
    )
    return evaluator_key, schema_key


def run_batch(
    configs: Iterable[AnonymizationConfig],
    table: Table,
    hierarchies: Mapping[str, Any] | None = None,
    workers: int = 1,
    plan: str = "auto",
    cache_bytes: int | None = None,
    backend: str | None = None,
    on_error: str = "raise",
    job_timeout: float | None = None,
    batch_deadline: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    cache_stores: Mapping[str, EngineCacheStore] | None = None,
) -> "list[AnonymizationResult | JobFailure]":
    """Execute many jobs on one table, sharing lattice evaluation.

    Configs that agree on QI roles and hierarchy specs (the typical sweep:
    same data scenario, varying models/algorithms/budgets) are served by a
    single shared :class:`LatticeEvaluator`, so a node evaluated by one
    job's search is a memo hit for every later job. Results come back in
    input order, each carrying the shared engine on ``.engine``.
    ``hierarchies`` overrides spec-built hierarchies with live objects for
    the whole batch, exactly as in :func:`run`.

    ``workers > 1`` dispatches the jobs across a worker pool. With the
    default ``backend="thread"`` jobs still share evaluators exactly as in
    sequential mode — the engine's cache is thread-safe with single-flight
    computation, so concurrent searches never evaluate one lattice node
    twice (the ``coalesced`` counter of
    :meth:`LatticeEvaluator.cache_info` shows how often a worker waited on
    another's in-flight node instead). Every job's computation is
    deterministic and isolated apart from that cache, so the returned
    releases are byte-identical to ``workers=1`` regardless of scheduling.

    ``backend="process"`` sidesteps the GIL entirely: the table's code
    columns and every environment's hierarchy LUTs are published once into
    shared memory (:mod:`repro.core.shm`), each environment group's jobs
    run sequentially inside one worker process against zero-copy views,
    and the per-process memo stores merge back into the parent's canonical
    evaluators between waves. Releases and per-environment ``cache_info``
    profiles stay byte-identical to sequential at any worker count (only
    ``merged`` — the adopted-entry tally — and the approximate ``bytes``
    occupancy reflect the merge itself). Parallelism is across environment
    groups, so the process backend pays off on multi-environment sweeps;
    it requires every job's algorithm to use the lattice engine, and jobs
    may also request it declaratively via ``AnonymizationConfig.backend``
    (an explicit ``backend=`` argument overrides; jobs must agree).

    ``cache_bytes`` sets a *global* engine-cache budget for the whole
    batch, and ``plan`` chooses how the :class:`BatchPlanner` spends it:
    ``"shared"`` keeps every environment's evaluator alive at once (each
    gets a budget slice proportional to its estimated footprint);
    ``"waves"`` schedules environments in budget-sized waves, releasing a
    finished wave's caches before the next fills, so each working set gets
    a slice it actually fits in; ``"auto"`` (default) picks waves exactly
    when the estimated combined footprint overflows the budget. Releases
    are byte-identical across all three plans at any worker count — the
    plan only decides how much silent recomputation an over-budget sweep
    pays (``cache_info()["recomputed_after_evict"]``).

    The failure-policy arguments make a batch survive bad jobs (see
    :class:`FailurePolicy` and ``docs/architecture.md`` — *Fault tolerance
    & the degradation ladder*). ``on_error="raise"`` (default) keeps the
    historic all-or-nothing contract; ``on_error="collect"`` returns a
    structured :class:`JobFailure` in the failed job's slot instead of
    aborting its siblings, optionally retrying each failed job
    ``retries`` times with exponential ``retry_backoff``. ``job_timeout``
    and ``batch_deadline`` are cooperative budgets (seconds) enforced
    between node evaluations; the tighter of ``job_timeout`` and a job's
    own ``AnonymizationConfig.job_timeout`` wins. On the process backend a
    crashed worker does not kill the batch either way: its group's
    unfinished jobs are requeued down the degradation ladder (fresh
    process pool → thread tier → in-parent sequential) and completed
    releases stay byte-identical to sequential execution.

    Example (doctested)::

        >>> from repro.core.table import Table
        >>> table = Table.from_dict(
        ...     {"zip": ["130", "130", "148", "148", "130", "148"],
        ...      "disease": ["flu", "hiv", "flu", "flu", "flu", "hiv"]},
        ...     categorical=["zip", "disease"],
        ... )
        >>> jobs = [
        ...     AnonymizationConfig.from_dict({
        ...         "quasi_identifiers": ["zip"], "sensitive": ["disease"],
        ...         "models": [{"model": "k-anonymity", "k": k}],
        ...         "algorithm": {"algorithm": "flash"},
        ...     })
        ...     for k in (2, 3)
        ... ]
        >>> results = run_batch(jobs, table, workers=2)
        >>> [r.node for r in results]           # input order is preserved
        [(0,), (0,)]
        >>> results[0].engine is results[1].engine  # one shared evaluator
        True

    ``cache_stores`` is the cross-batch warm-start seam: a mapping from
    environment evaluator keys (:func:`_environment_key`) to long-lived
    :class:`~repro.core.cache.EngineCacheStore` objects. An environment
    whose key appears in the mapping uses the given store as its canonical
    memo store instead of building a fresh one — entries cached by an
    earlier batch over a byte-identical table are memo hits here
    (``hits`` grow, ``from_rows`` stays put), and this batch's entries stay
    behind in the store for the next. Injected stores keep their own byte
    budgets (the planner never re-slices them) and are never cleared
    between waves; the caller owns their lifecycle. This is the hook the
    multi-tenant service (:mod:`repro.service`) keeps per-tenant caches
    warm through.
    """
    planner = BatchPlanner(
        configs,
        table,
        hierarchies=hierarchies,
        workers=workers,
        plan=plan,
        cache_bytes=cache_bytes,
        backend=backend,
        on_error=on_error,
        job_timeout=job_timeout,
        batch_deadline=batch_deadline,
        retries=retries,
        retry_backoff=retry_backoff,
        cache_stores=cache_stores,
    )
    return planner.execute()


def _uses_evaluator(config: AnonymizationConfig) -> bool:
    """True if the config's algorithm class consumes a shared evaluator."""
    entry = algorithm_registry._entry(config.algorithm["algorithm"])
    return bool(getattr(entry.cls, "uses_evaluator", False))


def _make_evaluator(
    table: Table,
    schema: Schema,
    hierarchies: Mapping[str, Any],
    cache: EngineCacheStore | None = None,
    cache_bytes: int | None = None,
    cache_policy: str = "lru",
    chunk_rows: int | None = None,
) -> LatticeEvaluator:
    """Evaluator over the identifier-stripped table, with an optional store."""
    prepared = table.drop(*schema.identifying) if schema.identifying else table
    if cache is not None:
        return LatticeEvaluator(
            prepared,
            schema.quasi_identifiers,
            hierarchies,
            cache=cache,
            chunk_rows=chunk_rows,
        )
    if cache_bytes is not None:
        # An explicit byte budget is the whole contract — no entry cap.
        return LatticeEvaluator(
            prepared,
            schema.quasi_identifiers,
            hierarchies,
            cache=EngineCacheStore(
                cache_limit=None, cache_bytes=int(cache_bytes), policy=cache_policy
            ),
            chunk_rows=chunk_rows,
        )
    return LatticeEvaluator(
        prepared,
        schema.quasi_identifiers,
        hierarchies,
        cache_policy=cache_policy,
        chunk_rows=chunk_rows,
    )


@dataclass(eq=False)  # identity semantics: groups key shard maps
class _EnvGroup:
    """One shared-evaluator environment inside a batch plan."""

    evaluator_key: str
    schema: Schema
    hierarchies: dict
    job_indices: list[int] = field(default_factory=list)
    uses_evaluator: bool = False
    includes_incognito: bool = False
    sensitive_categories: tuple[int, ...] = ()
    base_budget: int = DEFAULT_CACHE_BYTES
    footprint: int = 0
    demand: int = 0
    budget: int = 0
    chunk_rows: int | None = None
    evaluator: LatticeEvaluator | None = None
    #: True when the canonical store was injected via ``cache_stores`` —
    #: the store is externally owned: its budget is not re-sliced and it is
    #: never cleared between waves (its warmth is the whole point).
    external_store: bool = False


@dataclass(frozen=True)
class BatchPlan:
    """The planner's resolved layout, inspectable before execution.

    ``waves`` holds job indices per wave (input order within a wave);
    ``footprints`` and ``budgets`` map evaluator keys to estimated working
    sets and resolved store budgets. ``mode`` is ``"shared"`` or
    ``"waves"`` — what ``plan="auto"`` resolved to.
    """

    mode: str
    waves: tuple[tuple[int, ...], ...]
    footprints: Mapping[str, int]
    budgets: Mapping[str, int]
    cache_bytes: int | None

    def to_dict(self) -> dict[str, Any]:
        return jsonable(
            {
                "mode": self.mode,
                "waves": [list(wave) for wave in self.waves],
                "footprints": dict(self.footprints),
                "budgets": dict(self.budgets),
                "cache_bytes": self.cache_bytes,
            }
        )


class BatchPlanner:
    """Cache-aware layout and dispatch of a job batch.

    The planner groups jobs into shared-evaluator environments (same QI
    roles + hierarchy specs), estimates each environment's engine-cache
    footprint from its hierarchy LUT label counts and lattice size
    (:func:`repro.core.cache.estimate_cache_footprint` — Incognito jobs add
    their projected sub-lattices), and lays the batch out against the
    global ``cache_bytes`` budget:

    * ``plan="shared"`` — every environment's evaluator is alive for the
      whole batch; with a global budget, each gets a slice proportional to
      its estimated footprint (capped at its configured per-job budget).
    * ``plan="waves"`` — environments are next-fit packed, in first-
      appearance order, into waves whose combined demand fits the budget;
      a finished wave's caches are released (entries dropped, counters
      kept) before the next wave fills. Each evaluator's slice therefore
      covers its estimated working set, which is what drives
      ``recomputed_after_evict`` to zero on sweeps whose *combined*
      working set overflows the budget.
    * ``plan="auto"`` — ``"waves"`` exactly when a global budget is set
      and the summed demand overflows it, else ``"shared"``.

    Planner-built evaluators use the stratum-aware eviction policy: under
    pressure the store sheds nodes reconstructible by O(n_groups) roll-up
    before the O(n_rows) roots.

    ``shard=True`` additionally splits each wave's same-environment jobs
    across per-worker evaluator clones (no cache-lock contention at all)
    and merges the shard memos back into the environment's canonical store
    between waves (:meth:`LatticeEvaluator.adopt`); results then report
    the canonical engine. Every shard — the canonical store included, for
    the wave's duration — gets an equal slice of the environment's budget,
    so the mid-wave total stays inside the planned ceiling. Sharding
    trades duplicate node evaluations across shards for zero contention,
    so the single-flight accounting identity ``from_rows + rollups ==
    entries`` does not hold for merged stores (``merged`` counts the
    adopted entries).

    Releases are byte-identical across every plan/shard/worker combination
    — job outputs are pure functions of (config, table, hierarchies); the
    planner only decides cache residency and scheduling.
    """

    def __init__(
        self,
        configs: Iterable[AnonymizationConfig],
        table: Table,
        hierarchies: Mapping[str, Any] | None = None,
        workers: int = 1,
        plan: str = "auto",
        cache_bytes: int | None = None,
        shard: bool = False,
        backend: str | None = None,
        on_error: str = "raise",
        job_timeout: float | None = None,
        batch_deadline: float | None = None,
        retries: int = 0,
        retry_backoff: float = 0.0,
        cache_stores: Mapping[str, EngineCacheStore] | None = None,
    ):
        # FailurePolicy validates the whole failure-handling surface at
        # construction time: bad combinations fail before any job runs.
        self.policy = FailurePolicy(
            on_error=on_error,
            job_timeout=job_timeout,
            batch_deadline=batch_deadline,
            retries=retries,
            retry_backoff=retry_backoff,
        )
        if plan not in PLANS:
            raise ConfigError(
                f"key 'plan' must be one of {', '.join(PLANS)}; got {plan!r}"
            )
        if cache_bytes is not None:
            try:
                check_cache_bytes(cache_bytes)
            except ValueError as exc:
                raise ConfigError(f"key 'cache_bytes' {exc}") from None
        if backend is not None and backend not in BACKENDS:
            raise ConfigError(
                f"key 'backend' must be one of {', '.join(BACKENDS)}; got {backend!r}"
            )
        self.configs = list(configs)
        self.table = table
        self.hierarchy_overrides = hierarchies
        self.workers = int(workers)
        self.requested_plan = plan
        self.cache_bytes = cache_bytes
        self.shard = bool(shard)
        self.cache_stores = dict(cache_stores) if cache_stores else {}
        self.backend = self._resolve_backend(backend)
        self._plan: BatchPlan | None = None
        self._groups: list[_EnvGroup] = []
        self._wave_groups: list[list[_EnvGroup]] = []
        self._jobs: list[tuple[AnonymizationConfig, tuple[Schema, dict], _EnvGroup]] = []
        self._batch_deadline: Deadline | None = None
        #: Supervision audit trail of the last :meth:`execute` — one dict
        #: per recovery action the process tier took (worker crash detected,
        #: rung changes). Empty on a healthy run.
        self.supervision_events: list[dict[str, Any]] = []

    def _resolve_backend(self, backend: str | None) -> str:
        """One backend for the whole batch, argument over declarations.

        Jobs may each declare ``AnonymizationConfig.backend``; a batch runs
        on exactly one, so conflicting declarations are an error unless the
        ``run_batch(backend=...)`` argument settles it. The process backend
        only parallelizes lattice-engine work — config validation already
        rejects ``backend="process"`` on engine-less jobs, and the same
        guard here catches the argument-level override.
        """
        declared = {c.backend for c in self.configs if c.backend is not None}
        if backend is not None:
            resolved = backend
        elif len(declared) > 1:
            raise ConfigError(
                f"jobs disagree on key 'backend' ({', '.join(sorted(declared))}); "
                "pass run_batch(backend=...) to settle it"
            )
        else:
            resolved = next(iter(declared)) if declared else "thread"
        if resolved == "process":
            for config in self.configs:
                if not _uses_evaluator(config):
                    raise ConfigError(
                        f"key 'backend' = 'process' does not apply to algorithm "
                        f"{config.algorithm['algorithm']!r} (no lattice engine); "
                        "remove the key or pick a full-domain algorithm"
                    )
        return resolved

    # -- planning --------------------------------------------------------------

    def plan(self) -> BatchPlan:
        """Resolve (and memoize) the batch layout without executing it."""
        if self._plan is None:
            self._analyze()
            self._plan = self._layout()
        return self._plan

    def _analyze(self) -> None:
        """Group jobs into environments and estimate their cache demand."""
        hierarchy_builds: dict[str, dict] = {}
        environments: dict[str, tuple[Schema, dict]] = {}
        groups: dict[str, _EnvGroup] = {}
        for index, config in enumerate(self.configs):
            evaluator_key, schema_key = _environment_key(config)
            environment = environments.get(schema_key)
            if environment is None:
                built = hierarchy_builds.get(evaluator_key)
                if built is None:
                    built = build_hierarchies(config, self.table)
                    if self.hierarchy_overrides:
                        built.update(self.hierarchy_overrides)
                    hierarchy_builds[evaluator_key] = built
                environment = (build_schema(config, self.table), built)
                environments[schema_key] = environment
            group = groups.get(evaluator_key)
            if group is None:
                schema, built = environment
                group = _EnvGroup(
                    evaluator_key=evaluator_key, schema=schema, hierarchies=built
                )
                if config.cache_bytes is not None:
                    group.base_budget = config.cache_bytes
                if evaluator_key in self.cache_stores:
                    # An injected warm store brings its own budget contract.
                    group.external_store = True
                    group.base_budget = self.cache_stores[evaluator_key].cache_bytes
                group.chunk_rows = config.chunk_rows  # part of the env key
                groups[evaluator_key] = group
                self._groups.append(group)
            group.job_indices.append(index)
            if _uses_evaluator(config):
                group.uses_evaluator = True
            if config.algorithm.get("algorithm") == "incognito":
                group.includes_incognito = True
            if config.sensitive:
                cats = set(group.sensitive_categories)
                for name in config.sensitive:
                    column = self.table.column(name)
                    if column.is_categorical:
                        cats.add(len(column.categories))
                group.sensitive_categories = tuple(sorted(cats))
            self._jobs.append((config, environment, group))
        for group in self._groups:
            if not group.uses_evaluator:
                continue
            group.footprint = estimate_cache_footprint(
                group.hierarchies,
                group.schema.quasi_identifiers,
                self.table.n_rows,
                sensitive_categories=group.sensitive_categories,
                include_subsets=group.includes_incognito,
            )
            group.demand = min(group.footprint, group.base_budget)

    def _layout(self) -> BatchPlan:
        """Pick the mode, pack waves, and slice budgets."""
        budget = self.cache_bytes
        total_demand = sum(group.demand for group in self._groups)
        if self.requested_plan == "auto":
            mode = "waves" if budget is not None and total_demand > budget else "shared"
        else:
            mode = self.requested_plan
        if mode == "waves" and budget is None:
            # Without a global budget every environment already gets its
            # full base budget, so "waves" would be shared execution with a
            # misleading label — resolve to the truth rather than report a
            # wave plan that never releases anything.
            mode = "shared"

        if mode == "shared":
            wave_groups = [list(self._groups)] if self._groups else []
        else:
            # Next-fit packing in first-appearance order (a group that
            # does not fit closes the current wave): deterministic, order-
            # preserving, and same-environment jobs always land in one
            # wave together. First-fit could sometimes pack tighter, but
            # it would pull later environments into earlier waves.
            wave_groups = []
            current: list[_EnvGroup] = []
            current_demand = 0
            for group in self._groups:
                demand = min(group.demand, budget)
                if current and current_demand + demand > budget:
                    wave_groups.append(current)
                    current, current_demand = [], 0
                current.append(group)
                current_demand += demand
            if current:
                wave_groups.append(current)

        for wave in wave_groups:
            wave_demand = sum(min(g.demand, budget or g.demand) for g in wave)
            for group in wave:
                if not group.uses_evaluator:
                    continue
                if group.external_store:
                    # Externally-owned stores are budgeted by their owner
                    # (the tenant cache ladder); the planner reports but
                    # never re-slices them.
                    group.budget = self.cache_stores[group.evaluator_key].cache_bytes
                elif budget is None:
                    group.budget = group.base_budget
                else:
                    # Scale the wave's leftover budget out proportionally,
                    # never exceeding the per-job configured cap.
                    share = (
                        budget * min(group.demand, budget) // wave_demand
                        if wave_demand
                        else budget
                    )
                    group.budget = min(group.base_budget, max(1, share))

        self._wave_groups = wave_groups
        return BatchPlan(
            mode=mode,
            waves=tuple(
                tuple(sorted(i for g in wave for i in g.job_indices))
                for wave in wave_groups
            ),
            footprints={g.evaluator_key: g.footprint for g in self._groups},
            budgets={
                g.evaluator_key: g.budget
                for g in self._groups
                if g.uses_evaluator
            },
            cache_bytes=budget,
        )

    # -- execution -------------------------------------------------------------

    def _ensure_evaluator(self, group: _EnvGroup) -> None:
        """Build the group's canonical evaluator on its planned budget."""
        if group.uses_evaluator and group.evaluator is None:
            if group.external_store:
                # Warm start: the injected store is the canonical store.
                # Its entries were filled through a previous evaluator over
                # a byte-identical table, so they are re-homed onto this
                # batch's evaluator (lazy growth accounting and column
                # lookups must not pin the retired request's objects).
                store = self.cache_stores[group.evaluator_key]
                group.evaluator = _make_evaluator(
                    self.table,
                    group.schema,
                    group.hierarchies,
                    cache=store,
                    chunk_rows=group.chunk_rows,
                )
                store.rebind(group.evaluator)
                return
            # Bytes are the planner's contract: no entry cap, so an
            # ample byte budget can never thrash on a huge lattice.
            store = EngineCacheStore(
                cache_limit=None,
                cache_bytes=max(group.budget, 1),
                policy="stratum",
            )
            group.evaluator = _make_evaluator(
                self.table,
                group.schema,
                group.hierarchies,
                cache=store,
                chunk_rows=group.chunk_rows,
            )

    def _run_job(
        self, index: int, evaluator: LatticeEvaluator | None
    ) -> "AnonymizationResult | JobFailure":
        """One in-parent job under the batch's failure policy."""
        config, environment, _ = self._jobs[index]
        return _attempt_job(
            config,
            self.table,
            self.policy,
            self._batch_deadline,
            evaluator=evaluator,
            environment=environment,
        )

    def execute(self) -> "list[AnonymizationResult | JobFailure]":
        """Run the batch per the plan; results come back in input order."""
        plan = self.plan()
        self.supervision_events = []
        self._batch_deadline = (
            Deadline(
                walltime=time.time() + self.policy.batch_deadline,
                kind="batch-deadline",
            )
            if self.policy.batch_deadline is not None
            else None
        )
        if self.backend == "process" and self.workers > 1 and len(self._groups) > 1:
            return self._execute_process(plan)
        # Process requests that cannot parallelize anything (one worker, or
        # a single environment whose jobs must run in order anyway) take
        # the in-parent path below — byte-identical by construction, minus
        # a pool and a shared-memory block that would buy nothing.
        results: list[AnonymizationResult | JobFailure | None] = [None] * len(
            self.configs
        )
        last_wave = len(self._wave_groups) - 1
        for wave_index, wave in enumerate(self._wave_groups):
            for group in wave:
                self._ensure_evaluator(group)
            jobs = sorted(
                (index for g in wave for index in g.job_indices)
            )
            assignments, shards = self._assign_evaluators(jobs, wave)
            # A process request that fell back to in-parent execution runs
            # sequentially: the process tier's contract includes sequential
            # per-environment cache profiles, which thread scheduling of a
            # shared store would scramble.
            if self.workers <= 1 or len(jobs) <= 1 or self.backend == "process":
                for index in jobs:
                    results[index] = self._run_job(index, assignments[index])
            else:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(jobs))
                ) as pool:
                    futures = {
                        index: pool.submit(self._run_job, index, assignments[index])
                        for index in jobs
                    }
                    for index, future in futures.items():
                        results[index] = future.result()
            # Memo merge step: shard caches empty into the canonical store,
            # and sharded results report the canonical engine.
            for group, clones in shards.items():
                assert group.evaluator is not None
                # The wave is over: the merged union may occupy the full
                # slice again.
                group.evaluator.cache.cache_bytes = max(group.budget, 1)
                for clone in clones:
                    group.evaluator.adopt(clone)
                for index in group.job_indices:
                    result = results[index]
                    if result is not None and result.engine is not None:
                        result.engine = group.evaluator
            if plan.mode == "waves" and wave_index != last_wave:
                # Release the finished wave's working sets so the next
                # wave's evaluators fill into a freed budget (counters and
                # result.engine telemetry survive the clear). Injected warm
                # stores are exempt: they are budgeted by their owner and
                # their residency is the next request's warm start.
                for group in wave:
                    if group.evaluator is not None and not group.external_store:
                        group.evaluator.cache.clear()
        return results  # type: ignore[return-value]

    def _assign_evaluators(
        self, jobs: list[int], wave: list[_EnvGroup]
    ) -> tuple[dict[int, LatticeEvaluator | None], dict[_EnvGroup, list[LatticeEvaluator]]]:
        """Per-job evaluator map, with optional per-worker shard clones."""
        assignments: dict[int, LatticeEvaluator | None] = {
            index: self._jobs[index][2].evaluator for index in jobs
        }
        shards: dict[_EnvGroup, list[LatticeEvaluator]] = {}
        if not self.shard or self.workers <= 1:
            return assignments, shards
        for group in wave:
            if group.evaluator is None or len(group.job_indices) <= 1:
                continue
            n_shards = min(self.workers, len(group.job_indices))
            # The group's budget covers the whole environment, shards
            # included: each shard (the canonical store too, for the wave's
            # duration) gets an equal slice so the mid-wave total never
            # exceeds the ceiling the planner promised. The canonical
            # budget is restored before the merge step.
            slice_budget = max(1, group.evaluator.cache.cache_bytes // n_shards)
            clones = [
                group.evaluator.clone(
                    cache=EngineCacheStore(
                        cache_limit=group.evaluator.cache.cache_limit,
                        cache_bytes=slice_budget,
                        policy=group.evaluator.cache.policy,
                    )
                )
                for _ in range(n_shards - 1)
            ]
            group.evaluator.cache.cache_bytes = slice_budget
            shards[group] = clones
            pool = [group.evaluator, *clones]
            for slot, index in enumerate(sorted(group.job_indices)):
                assignments[index] = pool[slot % n_shards]
        return assignments, shards

    # -- the process tier ------------------------------------------------------

    def _note_supervision(self, event: str, **details: Any) -> None:
        self.supervision_events.append({"event": event, **jsonable(details)})

    def _deliver_group_payload(
        self,
        group: _EnvGroup,
        payload: Mapping[str, Any],
        results: "list[AnonymizationResult | JobFailure | None]",
    ) -> None:
        """Fold one worker's payload into the batch: merge memos, re-point
        engines, and reassemble releases around this process's arrays."""
        self._ensure_evaluator(group)
        if payload["snapshot"] is not None:
            assert group.evaluator is not None
            group.evaluator.import_cache(payload["snapshot"])
        for index, result, used_engine, order, shipped in payload["results"]:
            if isinstance(result, JobFailure):
                results[index] = result
                continue
            if used_engine:
                result.engine = group.evaluator
            # Reassemble the release around this process's own arrays for
            # passthrough columns (the worker shipped only rewritten ones).
            have = {col.name: col for col in shipped}
            result.release.table = Table(
                [
                    self.table.column(name) if passthrough else have[name]
                    for name, passthrough in order
                ]
            )
            results[index] = result

    def _run_group_in_parent(
        self,
        group: _EnvGroup,
        results: "list[AnonymizationResult | JobFailure | None]",
    ) -> None:
        """Run one environment group in this process, jobs in ascending order.

        The bottom rungs of the degradation ladder. Idempotent per job —
        each result slot is simply rewritten — so a group interrupted
        halfway down one rung can be re-run whole on the next.
        """
        self._ensure_evaluator(group)
        for index in sorted(group.job_indices):
            results[index] = self._run_job(index, group.evaluator)

    def _run_groups_degraded(
        self,
        groups: "list[_EnvGroup]",
        results: "list[AnonymizationResult | JobFailure | None]",
    ) -> str:
        """Thread rung of the ladder, in-parent sequential as the last rung.

        Returns the rung that completed the groups (``"thread"`` or
        ``"sequential"``). Job-level errors are the failure policy's domain
        and propagate (under ``on_error="raise"``) — only infrastructure
        trouble inside the thread tier drops to the sequential rung.
        """
        from ..errors import ReproError

        if self.workers > 1 and len(groups) > 1:
            try:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(groups))
                ) as pool:
                    futures = [
                        pool.submit(self._run_group_in_parent, group, results)
                        for group in groups
                    ]
                    for future in futures:
                        future.result()
                return "thread"
            except ReproError:
                raise  # a job's own verdict, not a crash — don't degrade
            except Exception as exc:  # pragma: no cover - thread-tier failure
                self._note_supervision(
                    "thread-rung-failed", error=_failure_record(exc)["message"]
                )
        for group in groups:
            self._run_group_in_parent(group, results)
        return "sequential"

    def _execute_process(
        self, plan: BatchPlan
    ) -> "list[AnonymizationResult | JobFailure]":
        """Dispatch environment groups across supervised worker processes.

        Determinism comes from the dispatch granularity: one worker runs a
        whole environment group's jobs **sequentially in ascending job
        order** — exactly the per-environment subsequence the in-parent
        path executes — so each group's store sees the identical request
        stream and its ``cache_info()`` profile (hits, misses, from_rows,
        rollups, evictions, entries) matches sequential execution
        byte-for-byte. Parallelism is across groups within a wave.

        Data travels once: the table's code columns and every group's
        hierarchy LUTs are published to shared memory before any pool
        starts, and the ``try``/``finally`` guarantees the block is
        unlinked on every exit — worker crashes included. Workers ship
        back pickled results plus an :meth:`LatticeEvaluator.export_cache`
        snapshot; the parent rebuilds each group's canonical evaluator,
        adopts the snapshot (``merge_from`` semantics, counters folded),
        and re-points ``result.engine`` so batch callers see the same
        object graph as every other execution mode.

        **Supervision.** A crashed worker (``BrokenProcessPool`` / dead
        pipe) cannot be told apart from its pool-mates' fates, so the
        whole broken pool is retired and every group whose payload had not
        yet arrived is requeued down the degradation ladder: once more on
        a **fresh process pool**, then the **thread tier**, then
        **in-parent sequential**. Completed groups keep their delivered
        results; requeued groups re-run whole (their jobs are pure
        functions of config + table, so re-execution is byte-identical —
        only cache *counters* can differ after recovery, since the dead
        worker's memo snapshot died with it). Each recovery action is
        recorded in :attr:`supervision_events`.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from ..core.shm import SharedDataset

        crash_types = (BrokenProcessPool, BrokenPipeError, EOFError, OSError)
        results: list[AnonymizationResult | JobFailure | None] = [None] * len(
            self.configs
        )
        group_ids = {id(group): i for i, group in enumerate(self._groups)}
        dataset: SharedDataset | None = None
        last_wave = len(self._wave_groups) - 1
        max_workers = min(self.workers, max(len(wave) for wave in self._wave_groups))
        pool: ProcessPoolExecutor | None = None
        deadline_walltime = (
            self._batch_deadline.walltime if self._batch_deadline is not None else None
        )

        def ensure_pool() -> ProcessPoolExecutor:
            nonlocal pool
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=max_workers,
                    initializer=_process_worker_init,
                    # Forward the armed fault plan so chaos drills reach
                    # workers under any start method, not just fork.
                    initargs=(dataset.descriptor(), faults.export_plan()),
                )
            return pool

        def retire_pool(kill: bool = False) -> None:
            nonlocal pool
            if pool is not None:
                if kill:
                    # Abnormal exit: live workers may be mid-job with no
                    # one left to collect their results. shutdown(wait=
                    # False) alone would leave them running (and holding
                    # shm mappings) after the parent returns — terminate
                    # them so a SIGTERM'd batch leaves no orphans behind.
                    for proc in list(getattr(pool, "_processes", {}).values()):
                        try:
                            proc.terminate()
                        except Exception:  # pragma: no cover - already dead
                            pass
                # The pool may be broken: don't wait on dead workers, and
                # drop anything still queued — requeued groups re-run on a
                # lower rung instead.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None

        def submit_group(group: _EnvGroup):
            jobs = [
                (index, self.configs[index]) for index in sorted(group.job_indices)
            ]
            return ensure_pool().submit(
                _process_worker_run,
                group_ids[id(group)],
                jobs,
                max(group.budget, 1),
                group.chunk_rows,
                self.policy,
                deadline_walltime,
            )

        interrupted = False
        # Arm before publishing: a SIGTERM landing between the arena
        # publish and the arming would take the default disposition, skip
        # the ``finally`` below, and leak the segment in /dev/shm.
        restore_signals = _arm_signal_conversion()
        try:
            dataset = SharedDataset(
                self.table,
                {i: group.hierarchies for i, group in enumerate(self._groups)},
            )
            for wave_index, wave in enumerate(self._wave_groups):
                pending = list(wave)
                # Process rungs: the planned pool, then one fresh pool for
                # groups orphaned by a crash.
                for rung in ("process", "process-retry"):
                    if not pending:
                        break
                    survivors: list[_EnvGroup] = []
                    try:
                        futures = [(group, submit_group(group)) for group in pending]
                    except crash_types as exc:
                        # The pool broke before/while submitting (e.g. an
                        # initializer crash): every pending group survives
                        # to the next rung.
                        self._note_supervision(
                            "worker-pool-broken",
                            rung=rung,
                            wave=wave_index,
                            phase="submit",
                            error=str(exc) or type(exc).__name__,
                        )
                        retire_pool()
                        continue
                    # Submitting may have forked pool workers; a signal
                    # converted inside an at-fork callback is latched, not
                    # raised — re-check before blocking on results.
                    _raise_if_signalled()
                    for group, future in futures:
                        try:
                            payload = future.result()
                        except crash_types as exc:
                            survivors.append(group)
                            self._note_supervision(
                                "worker-crashed",
                                rung=rung,
                                wave=wave_index,
                                group=group_ids[id(group)],
                                jobs=sorted(group.job_indices),
                                error=str(exc) or type(exc).__name__,
                            )
                            continue
                        # Any other exception is a job's own error escaping
                        # under on_error="raise" (workers collect failures
                        # otherwise) — the historic abort contract; the
                        # finally below still unlinks the arena.
                        self._deliver_group_payload(group, payload, results)
                        _raise_if_signalled()
                    pending = survivors
                    if pending:
                        retire_pool()
                if pending:
                    _raise_if_signalled()
                    rung = self._run_groups_degraded(pending, results)
                    self._note_supervision(
                        "groups-recovered",
                        rung=rung,
                        wave=wave_index,
                        groups=[group_ids[id(g)] for g in pending],
                    )
                if plan.mode == "waves" and wave_index != last_wave:
                    for group in wave:
                        if group.evaluator is not None and not group.external_store:
                            group.evaluator.cache.clear()
        except BaseException:
            # Abnormal exit (a job error escaping under on_error="raise",
            # KeyboardInterrupt, or SIGTERM converted by the armed handler):
            # the batch is aborted, so don't leave orphaned workers running
            # jobs nobody will collect — terminate them before unlinking.
            interrupted = True
            raise
        finally:
            restore_signals()
            retire_pool(kill=interrupted)
            if dataset is not None:
                dataset.unlink()
        return results  # type: ignore[return-value]


def _arm_signal_conversion() -> "Callable[[], None]":
    """Convert SIGTERM/SIGINT into exceptions for the process tier's scope.

    ``_execute_process`` guarantees cleanup (pool retirement, shm unlink)
    through a ``finally`` — which only runs if termination arrives as an
    exception. SIGINT already does (``KeyboardInterrupt``); SIGTERM's
    default disposition kills the interpreter outright, skipping every
    ``finally`` and leaking the arena in ``/dev/shm``. While a process
    batch is running, both signals raise ``KeyboardInterrupt`` in the main
    thread instead, so a terminated batch walks the same abort path as ^C:
    workers killed, arena unlinked, exception propagated.

    Raising from the handler alone is not enough: Python may invoke it
    inside a context that cannot propagate exceptions — most notably
    ``os.register_at_fork`` callbacks while the pool is forking workers
    (logging's after-fork hook, for instance), where CPython prints
    "Exception ignored in" and drops the ``KeyboardInterrupt`` on the
    floor. The handler therefore *also* latches the signal number in
    ``_SIGNAL_TRIPPED``; :func:`_raise_if_signalled` re-checks the latch
    at safe points in the dispatch loop so a swallowed conversion still
    aborts the batch.

    Returns a restore callable (idempotent) that reinstates the previous
    handlers. Off the main thread — where Python forbids ``signal.signal``
    — this is a no-op and the embedding application (e.g. the service,
    which runs batches on queue worker threads) owns signal handling.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    _SIGNAL_TRIPPED.clear()

    def _raise(signum: int, frame: Any) -> None:
        _SIGNAL_TRIPPED.append(signum)
        raise KeyboardInterrupt(f"terminated by signal {signum}")

    previous: dict[int, Any] = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _raise)
        except (ValueError, OSError):  # pragma: no cover - exotic embeddings
            pass

    def restore() -> None:
        while previous:
            sig, handler = previous.popitem()
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    return restore


#: Signal numbers latched by the armed conversion handler (main thread
#: only; cleared on each arming).
_SIGNAL_TRIPPED: "list[int]" = []


def _raise_if_signalled() -> None:
    """Re-raise a converted signal whose ``KeyboardInterrupt`` was lost.

    See :func:`_arm_signal_conversion`: when the armed handler fires in an
    unraisable context (an at-fork callback during worker spawn), the
    exception is discarded but the latch survives. The process-tier
    dispatch loop calls this between blocking stretches so the batch still
    walks the abort path.
    """
    if _SIGNAL_TRIPPED:
        raise KeyboardInterrupt(f"terminated by signal {_SIGNAL_TRIPPED[-1]}")


# -- process-tier worker half (module level: importable under any start method)

_WORKER_DATASET = None


def _process_worker_init(
    descriptor: Mapping[str, Any], fault_plan: Mapping[str, Any] | None = None
) -> None:
    """Pool initializer: arm any forwarded fault plan, then attach the
    shared dataset once. Arming comes first so ``shm-attach`` drills hit
    the attach below; an initializer crash surfaces in the parent as a
    broken pool and rides the degradation ladder like any worker crash."""
    global _WORKER_DATASET
    from ..core.shm import attach_dataset

    if fault_plan is not None:
        faults.arm(fault_plan)  # fresh per-process counters, by design
    _WORKER_DATASET = attach_dataset(descriptor)


def _process_worker_run(
    env_id: int,
    jobs: Sequence[tuple[int, AnonymizationConfig]],
    cache_budget: int,
    chunk_rows: int | None,
    policy: FailurePolicy | None = None,
    deadline_walltime: float | None = None,
) -> dict[str, Any]:
    """Run one environment group's jobs sequentially against shared arrays.

    Builds the group's evaluator over zero-copy views (same store shape as
    the parent's canonical one: byte-bounded, stratum policy), executes the
    jobs in ascending index order, and returns a picklable payload: the
    results (engines stripped — the parent re-points them at the canonical
    evaluator) plus the memo-store snapshot for the parent-side merge.

    The failure policy runs *inside* the worker through the same
    :func:`_attempt_job` path as every other tier: under ``"collect"`` a
    bad job becomes a :class:`JobFailure` entry in the payload and its
    siblings keep running, so only genuine crashes break the future.
    ``deadline_walltime`` is the batch deadline as an absolute
    ``time.time()`` instant — the one clock both sides of the process
    boundary agree on.
    """
    dataset = _WORKER_DATASET
    assert dataset is not None, "worker pool initializer must run first"
    if policy is None:
        policy = FailurePolicy()
    batch_deadline = (
        Deadline(walltime=deadline_walltime, kind="batch-deadline")
        if deadline_walltime is not None
        else None
    )
    table = dataset.table
    hierarchies = dataset.hierarchies(env_id)
    evaluator: LatticeEvaluator | None = None
    out = []
    for ordinal, (index, config) in enumerate(jobs, start=1):
        # Chaos drills kill workers here — "at the Nth job", per process.
        if faults.any_armed():
            faults.fire("worker-kill", env=env_id, job=index, ordinal=ordinal)
        schema = build_schema(config, table)
        if evaluator is None and _uses_evaluator(config):
            store = EngineCacheStore(
                cache_limit=None, cache_bytes=cache_budget, policy="stratum"
            )
            evaluator = _make_evaluator(
                table, schema, hierarchies, cache=store, chunk_rows=chunk_rows
            )
        result = _attempt_job(
            config,
            table,
            policy,
            batch_deadline,
            evaluator=evaluator,
            environment=(schema, hierarchies),
        )
        if isinstance(result, JobFailure):
            out.append((index, result, False, None, None))
            continue
        used_engine = result.engine is not None
        result.engine = None  # engines don't pickle; the parent re-points
        # Ship only the columns this job actually rewrote. Columns that
        # pass through an algorithm untouched are the *same objects* as the
        # shared table's (generalization replaces columns, suppression
        # masks into fresh ones), so pickling them would push the arena's
        # arrays back through the result pipe — per job. The parent holds
        # identical arrays and splices them back in by name.
        order = []
        shipped = []
        for col in result.release.table:
            passthrough = col.name in table and col is table.column(col.name)
            order.append((col.name, passthrough))
            if not passthrough:
                shipped.append(col)
        result.release.table = None  # type: ignore[assignment] # rebuilt by parent
        result.release._partition = None  # lazily recomputable; don't pickle
        out.append((index, result, used_engine, order, shipped))
    snapshot = evaluator.export_cache() if evaluator is not None else None
    return {"results": out, "snapshot": snapshot}
