"""The job executor: one entry point that every public surface funnels into.

:func:`execute` is the single code path that turns (table, schema,
hierarchies, models, algorithm) into a :class:`AnonymizationResult`; the
declarative :func:`run`, the batch :func:`run_batch`, the CLI, and the
legacy :meth:`Anonymizer.apply <repro.core.anonymizer.Anonymizer.apply>`
shim all call it, which is what makes a job expressed once produce
byte-identical releases no matter which door it enters through.

:func:`run_batch` additionally shares one
:class:`~repro.core.engine.LatticeEvaluator` across all jobs that agree on
roles and hierarchy specs, so a multi-config sweep (an algorithm shootout, a
k-sweep) evaluates each lattice node once — the engine's memoized
``GroupStats`` serve every job; ``LatticeEvaluator.cache_info()`` shows the
sharing (``hits`` grow, ``from_rows`` do not). With ``workers > 1`` the
jobs of a batch run on a thread pool against the same shared evaluator,
whose cache is thread-safe and single-flight — two workers never evaluate
the same lattice node twice, and results are byte-identical to sequential
execution (see ``docs/architecture.md``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..core.engine import LatticeEvaluator
from ..core.release import Release
from ..core.schema import Schema
from ..core.table import Table
from .config import AnonymizationConfig, build_hierarchies, build_schema
from .registry import (
    MetricContext,
    algorithm_registry,
    metric_registry,
    model_registry,
)

__all__ = ["AnonymizationResult", "execute", "run", "run_batch", "jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays and tuples into JSON types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (bool, int, float, str, type(None))):
        return value
    return str(value)


@dataclass
class AnonymizationResult:
    """The executor's bundled output: release + audit trail + reports.

    ``to_dict()`` is JSON-safe end to end — what a service logs or returns
    as an API response; the :class:`~repro.core.release.Release` itself
    (with the published table) stays on the object for library callers.
    """

    release: Release
    models: tuple = ()
    config: AnonymizationConfig | None = None
    timings: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    engine: LatticeEvaluator | None = None

    @property
    def table(self) -> Table:
        return self.release.table

    @property
    def node(self) -> tuple | None:
        """Chosen lattice node (full-domain algorithms only)."""
        return self.release.node

    @property
    def suppressed(self) -> int:
        return self.release.suppressed

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "algorithm": self.release.algorithm,
            "models": [getattr(m, "name", str(m)) for m in self.models],
            "summary": self.release.summary(),
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
            "metrics": self.metrics,
        }
        if self.engine is not None:
            out["engine_cache"] = self.engine.cache_info()
        if self.config is not None:
            out["config"] = self.config.to_dict()
        return jsonable(out)


def execute(
    table: Table,
    schema: Schema,
    hierarchies: Mapping[str, Any],
    models: Sequence,
    algorithm=None,
    metrics: Sequence[str] = (),
    evaluator: LatticeEvaluator | None = None,
    config: AnonymizationConfig | None = None,
) -> AnonymizationResult:
    """Run one job from resolved (live) objects.

    The lowest-level entry point — :func:`run`, :func:`run_batch`, the CLI,
    and ``Anonymizer.apply`` are wrappers over it. ``evaluator`` is handed
    to lattice-search algorithms that advertise ``uses_evaluator`` so batch
    callers can share memoized node statistics across jobs.
    """
    if algorithm is None:
        from ..algorithms.mondrian import Mondrian

        algorithm = Mondrian(mode="strict")
    timings: dict[str, float] = {}
    start = time.perf_counter()
    uses_evaluator = evaluator is not None and getattr(
        type(algorithm), "uses_evaluator", False
    )
    if uses_evaluator:
        release = algorithm.anonymize(
            table, schema, hierarchies, list(models), evaluator=evaluator
        )
    else:
        release = algorithm.anonymize(table, schema, hierarchies, list(models))
    timings["anonymize"] = time.perf_counter() - start

    start = time.perf_counter()
    # Metrics defined against the job's target k (e.g. C_AVG) must see the
    # requested k, not whatever minimum class size the release happens to have.
    target_ks = [int(m.k) for m in models if hasattr(m, "k")]
    context = MetricContext(
        original=table,
        release=release,
        hierarchies=hierarchies,
        sensitive=tuple(schema.sensitive),
        extras={"target_k": max(target_ks)} if target_ks else {},
    )
    computed = {name: metric_registry.compute(name, context) for name in metrics}
    if metrics:
        timings["metrics"] = time.perf_counter() - start
    return AnonymizationResult(
        release=release,
        models=tuple(models),
        config=config,
        timings=timings,
        metrics=computed,
        # Only algorithms that consumed the evaluator report its cache —
        # attaching it to e.g. a Mondrian run would imply sharing that
        # never happened.
        engine=evaluator if uses_evaluator else None,
    )


def _build_environment(
    config: AnonymizationConfig,
    table: Table,
    hierarchy_overrides: Mapping[str, Any] | None = None,
) -> tuple[Schema, dict]:
    """(schema, hierarchies) materialized from a config against a table."""
    schema = build_schema(config, table)
    hierarchies = build_hierarchies(config, table)
    if hierarchy_overrides:
        hierarchies.update(hierarchy_overrides)
    return schema, hierarchies


def _resolve(
    config: AnonymizationConfig,
    table: Table,
    hierarchy_overrides: Mapping[str, Any] | None = None,
    environment: tuple[Schema, dict] | None = None,
):
    """(schema, hierarchies, models, algorithm) from a config + table.

    ``environment`` lets batch callers reuse one (schema, hierarchies)
    build across jobs — hierarchy building decodes every categorical QI
    (O(n_rows) each), which is pure waste to repeat per job.
    """
    if environment is None:
        environment = _build_environment(config, table, hierarchy_overrides)
    schema, hierarchies = environment
    models = [model_registry.from_spec(spec) for spec in config.models]
    algorithm = algorithm_registry.from_spec(config.algorithm)
    if config.max_suppression is not None and hasattr(algorithm, "max_suppression"):
        algorithm.max_suppression = float(config.max_suppression)
    return schema, hierarchies, models, algorithm


def run(
    config: AnonymizationConfig,
    table: Table,
    evaluator: LatticeEvaluator | None = None,
    hierarchies: Mapping[str, Any] | None = None,
    environment: tuple[Schema, dict] | None = None,
) -> AnonymizationResult:
    """Execute one declarative job against a table.

    ``hierarchies`` optionally overrides spec-built hierarchies with live
    objects (curated domain trees that have no JSON spec form); everything
    else still comes from the config. ``environment`` is a prebuilt
    (schema, hierarchies) pair — :func:`run_batch` passes it so a sweep
    materializes each distinct environment once.

    Example (doctested)::

        >>> from repro.core.table import Table
        >>> table = Table.from_dict(
        ...     {"zip": ["130", "130", "148", "148"]}, categorical=["zip"])
        >>> result = run(AnonymizationConfig.from_dict({
        ...     "quasi_identifiers": ["zip"],
        ...     "models": [{"model": "k-anonymity", "k": 2}],
        ...     "algorithm": {"algorithm": "flash"},
        ... }), table)
        >>> result.node       # level 0 already satisfies k=2 here
        (0,)
        >>> result.release.table.column("zip").decode()
        ['130', '130', '148', '148']
        >>> sorted(result.to_dict())  # JSON-safe report for logs/services
        ['algorithm', 'config', 'metrics', 'models', 'summary', 'timings']
    """
    timings: dict[str, float] = {}
    start = time.perf_counter()
    schema, built, models, algorithm = _resolve(
        config, table, hierarchies, environment
    )
    timings["prepare"] = time.perf_counter() - start
    result = execute(
        table,
        schema,
        built,
        models,
        algorithm,
        metrics=config.metrics,
        evaluator=evaluator,
        config=config,
    )
    result.timings = {**timings, **result.timings}
    return result


def _environment_key(config: AnonymizationConfig) -> tuple[str, str]:
    """(evaluator_key, schema_key) for batch sharing.

    Jobs with equal evaluator keys see the same hierarchies and lattice
    evaluator — node statistics only depend on QI roles, hierarchy specs,
    and dropped columns. The schema key additionally pins the sensitive
    roles: two jobs may share an evaluator yet need different schemas, and
    collapsing them would hand job B job A's sensitive column (metrics,
    release schema) without any error.
    """
    import json

    evaluator_key = json.dumps(
        {
            "qi": config.quasi_identifiers,
            "num": config.numeric_quasi_identifiers,
            "drop": config.drop,
            "hier": config.hierarchies,
            "bins": config.bins,
        },
        sort_keys=True,
        default=list,
    )
    schema_key = evaluator_key + json.dumps(
        {"sensitive": config.sensitive}, sort_keys=True, default=list
    )
    return evaluator_key, schema_key


def run_batch(
    configs: Iterable[AnonymizationConfig],
    table: Table,
    hierarchies: Mapping[str, Any] | None = None,
    workers: int = 1,
) -> list[AnonymizationResult]:
    """Execute many jobs on one table, sharing lattice evaluation.

    Configs that agree on QI roles and hierarchy specs (the typical sweep:
    same data scenario, varying models/algorithms/budgets) are served by a
    single shared :class:`LatticeEvaluator`, so a node evaluated by one
    job's search is a memo hit for every later job. Results come back in
    input order, each carrying the shared engine on ``.engine``.
    ``hierarchies`` overrides spec-built hierarchies with live objects for
    the whole batch, exactly as in :func:`run`.

    ``workers > 1`` dispatches the jobs across a thread pool. Jobs still
    share evaluators exactly as in sequential mode — the engine's cache is
    thread-safe with single-flight computation, so concurrent searches
    never evaluate one lattice node twice (the ``coalesced`` counter of
    :meth:`LatticeEvaluator.cache_info` shows how often a worker waited on
    another's in-flight node instead). Every job's computation is
    deterministic and isolated apart from that cache, so the returned
    releases are byte-identical to ``workers=1`` regardless of scheduling.

    Example (doctested)::

        >>> from repro.core.table import Table
        >>> table = Table.from_dict(
        ...     {"zip": ["130", "130", "148", "148", "130", "148"],
        ...      "disease": ["flu", "hiv", "flu", "flu", "flu", "hiv"]},
        ...     categorical=["zip", "disease"],
        ... )
        >>> jobs = [
        ...     AnonymizationConfig.from_dict({
        ...         "quasi_identifiers": ["zip"], "sensitive": ["disease"],
        ...         "models": [{"model": "k-anonymity", "k": k}],
        ...         "algorithm": {"algorithm": "flash"},
        ...     })
        ...     for k in (2, 3)
        ... ]
        >>> results = run_batch(jobs, table, workers=2)
        >>> [r.node for r in results]           # input order is preserved
        [(0,), (0,)]
        >>> results[0].engine is results[1].engine  # one shared evaluator
        True
    """
    configs = list(configs)
    # Planning pass, sequential: hierarchy builds and evaluators are shared
    # per evaluator key (QI roles + hierarchy specs); schemas per schema
    # key, which also pins sensitive roles. An evaluator is only created
    # once a job's algorithm actually consumes one — an all-Mondrian sweep
    # never pays for it.
    hierarchy_builds: dict[str, dict] = {}
    environments: dict[str, tuple[Schema, dict]] = {}
    evaluators: dict[str, LatticeEvaluator] = {}
    plans: list[tuple[AnonymizationConfig, tuple[Schema, dict], LatticeEvaluator | None]] = []
    for config in configs:
        evaluator_key, schema_key = _environment_key(config)
        environment = environments.get(schema_key)
        if environment is None:
            built = hierarchy_builds.get(evaluator_key)
            if built is None:
                built = build_hierarchies(config, table)
                if hierarchies:
                    built.update(hierarchies)
                hierarchy_builds[evaluator_key] = built
            environment = (build_schema(config, table), built)
            environments[schema_key] = environment
        evaluator = evaluators.get(evaluator_key)
        if evaluator is None and _uses_evaluator(config):
            schema, built = environment
            prepared = table.drop(*schema.identifying) if schema.identifying else table
            evaluator = LatticeEvaluator(prepared, schema.quasi_identifiers, built)
            evaluators[evaluator_key] = evaluator
        plans.append((config, environment, evaluator))

    if int(workers) <= 1 or len(plans) <= 1:
        return [
            run(config, table, evaluator=evaluator, environment=environment)
            for config, environment, evaluator in plans
        ]
    # Worker threads share evaluators (thread-safe, single-flight) and the
    # read-only table/schemas/hierarchies; everything else is per-job state.
    with ThreadPoolExecutor(max_workers=min(int(workers), len(plans))) as pool:
        futures = [
            pool.submit(
                run, config, table, evaluator=evaluator, environment=environment
            )
            for config, environment, evaluator in plans
        ]
        return [future.result() for future in futures]


def _uses_evaluator(config: AnonymizationConfig) -> bool:
    """True if the config's algorithm class consumes a shared evaluator."""
    entry = algorithm_registry._entry(config.algorithm["algorithm"])
    return bool(getattr(entry.cls, "uses_evaluator", False))
