"""Attribute-linkage attacks: homogeneity and background knowledge.

* **Homogeneity attack** — the attacker places a target in an equivalence
  class; if (almost) every record in the class shares one sensitive value,
  the attacker learns it without re-identification. We report the fraction
  of records whose class's dominant sensitive value exceeds a confidence
  threshold, and the expected inference confidence.
* **Background-knowledge attack** — the attacker can additionally eliminate
  up to ``b`` sensitive values they know the target does not have; the
  attack succeeds if the class's remaining distribution pins one value above
  the threshold. ℓ-diversity with ℓ > b + 1 defeats this.
* **Skewness/similarity check** — the t-closeness motivation: classes whose
  sensitive distribution diverges from the global one leak *probabilistic*
  information even when diverse; we report the max positive belief change.
"""

from __future__ import annotations

import numpy as np

from ..core.release import Release
from ..privacy.t_closeness import emd_equal

__all__ = ["homogeneity_attack", "background_knowledge_attack", "skewness_gain"]


def homogeneity_attack(release: Release, sensitive: str | None = None, confidence: float = 0.9) -> dict:
    """Fraction of records exposed by (near-)homogeneous classes."""
    sensitive = sensitive or release.schema.sensitive[0]
    partition = release.partition()
    histograms = partition.sensitive_counts(release.table, sensitive)
    exposed = 0
    total = 0
    confidences = []
    for counts in histograms:
        size = counts.sum()
        top = counts.max() / size if size else 0.0
        confidences.append(top)
        total += int(size)
        if top >= confidence:
            exposed += int(size)
    return {
        "exposed_fraction": exposed / total if total else 0.0,
        "avg_inference_confidence": float(np.mean(confidences)) if confidences else 0.0,
        "max_inference_confidence": float(np.max(confidences)) if confidences else 0.0,
    }


def background_knowledge_attack(
    release: Release,
    sensitive: str | None = None,
    eliminated: int = 1,
    confidence: float = 0.9,
) -> dict:
    """Worst-case attacker who rules out ``eliminated`` sensitive values.

    For each class, adversarially eliminate the ``eliminated`` values that
    maximize the top remaining value's share (i.e. drop the largest
    competitors of the runner-up... in fact dropping any values only
    concentrates mass, so the worst case removes the largest values *other
    than* the new winner; equivalently keep the largest value and remove the
    next ``eliminated`` largest from the denominator).
    """
    sensitive = sensitive or release.schema.sensitive[0]
    partition = release.partition()
    histograms = partition.sensitive_counts(release.table, sensitive)
    exposed = 0
    total = 0
    worst_confidences = []
    for counts in histograms:
        size = int(counts.sum())
        total += size
        sorted_counts = np.sort(counts[counts > 0])[::-1].astype(np.float64)
        if sorted_counts.size == 0:
            continue
        # Eliminate the runners-up: indices 1..eliminated.
        removed = sorted_counts[1 : 1 + eliminated].sum()
        remaining = sorted_counts.sum() - removed
        top_share = sorted_counts[0] / remaining if remaining else 1.0
        worst_confidences.append(top_share)
        if top_share >= confidence:
            exposed += size
    return {
        "exposed_fraction": exposed / total if total else 0.0,
        "avg_worst_case_confidence": float(np.mean(worst_confidences)) if worst_confidences else 0.0,
    }


def skewness_gain(release: Release, sensitive: str | None = None) -> dict:
    """Belief change an attacker gains from class-level sensitive skew.

    For each class and each sensitive value, the attacker's posterior is the
    class frequency vs. the global prior. We report the max and average
    per-class EMD (equal ground distance) from the global distribution, and
    the maximum posterior/prior ratio ("belief amplification").
    """
    sensitive = sensitive or release.schema.sensitive[0]
    partition = release.partition()
    global_dist = partition.global_sensitive_distribution(release.table, sensitive)
    amplification = 0.0
    emds = []
    for counts in partition.sensitive_counts(release.table, sensitive):
        size = counts.sum()
        if not size:
            continue
        local = counts / size
        emds.append(emd_equal(local, global_dist))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(global_dist > 0, local / global_dist, 0.0)
        amplification = max(amplification, float(ratio.max()))
    return {
        "max_emd": float(np.max(emds)) if emds else 0.0,
        "avg_emd": float(np.mean(emds)) if emds else 0.0,
        "max_belief_amplification": amplification,
    }
