"""Attack simulators: linkage, attribute disclosure, membership, composition."""

from .attribute import background_knowledge_attack, homogeneity_attack, skewness_gain
from .composition import intersection_attack
from .definetti import definetti_attack
from .linkage import journalist_risks, linkage_risks, simulate_linkage
from .minimality import (
    MergedClass,
    MinimalPublisher,
    attack_lift,
    minimality_posterior,
    naive_posterior,
    violates_simple_l_diversity,
)
from .reconstruction import (
    ReconstructionResult,
    least_squares_reconstruct,
    noisy_answers,
    reconstruction_attack,
    subset_sum_queries,
)
from .probabilistic_linkage import (
    FellegiSunter,
    LinkageResult,
    compare_tables,
    probabilistic_linkage_attack,
)
from .tracing import TracingResult, dp_frequency_release, homer_statistic, trace_membership
from .membership import membership_attack, membership_beliefs
from .uniqueness import (
    poisson_population_uniques,
    sample_uniques,
    uniqueness_report,
    zayatz_population_uniques,
)

__all__ = [
    "background_knowledge_attack",
    "definetti_attack",
    "homogeneity_attack",
    "intersection_attack",
    "journalist_risks",
    "linkage_risks",
    "MergedClass",
    "MinimalPublisher",
    "ReconstructionResult",
    "attack_lift",
    "least_squares_reconstruct",
    "membership_attack",
    "minimality_posterior",
    "naive_posterior",
    "noisy_answers",
    "reconstruction_attack",
    "subset_sum_queries",
    "FellegiSunter",
    "LinkageResult",
    "TracingResult",
    "compare_tables",
    "probabilistic_linkage_attack",
    "dp_frequency_release",
    "homer_statistic",
    "trace_membership",
    "violates_simple_l_diversity",
    "membership_beliefs",
    "poisson_population_uniques",
    "sample_uniques",
    "simulate_linkage",
    "skewness_gain",
    "uniqueness_report",
    "zayatz_population_uniques",
]
