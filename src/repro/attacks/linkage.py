"""Record-linkage (re-identification) risk.

The three standard attacker models on an equivalence-class partition:

* **prosecutor** — the attacker knows the target is in the release; success
  probability for a record in a class of size ``s`` is ``1/s``. Reported:
  max risk (``1/min_class``), average risk, and the fraction of records at
  risk above a threshold.
* **journalist** — the attacker links against a population table; the risk
  of a record is ``1/P`` where ``P`` is the number of *population* records
  matching its class.
* **marketer** — the attacker wants to re-identify as many records as
  possible; expected fraction re-identified = (#classes matched uniquely) —
  computed as ``n_classes / n_records`` under prosecutor assumptions.

Also includes :func:`simulate_linkage`, an empirical attack that links a
random sample of "known individuals" (rows of the original table) against
the release and counts correct unique matches — used to validate the
analytic risks in tests and the E1 bench.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.partition import partition_by_qi
from ..core.release import Release
from ..core.table import Table

__all__ = ["linkage_risks", "journalist_risks", "simulate_linkage"]


def linkage_risks(release: Release, threshold: float = 0.2) -> dict:
    """Prosecutor and marketer risk summary of a release."""
    sizes = release.equivalence_class_sizes().astype(np.float64)
    n = sizes.sum()
    per_record_risk = np.repeat(1.0 / sizes, sizes.astype(int))
    return {
        "prosecutor_max_risk": float((1.0 / sizes).max()),
        "prosecutor_avg_risk": float(per_record_risk.mean()),
        "records_above_threshold": float((per_record_risk > threshold).mean()),
        "marketer_risk": float(len(sizes) / n),
    }


def journalist_risks(release: Release, population: Table, qi_names: Sequence[str] | None = None) -> dict:
    """Journalist risk against a population table sharing the release's QIs.

    The population table must be generalized identically to the release
    (same labels); unmatched classes are conservatively scored at risk 1.
    """
    qi_names = list(qi_names) if qi_names is not None else list(release.schema.quasi_identifiers)
    population_counts = _signature_counts(population, qi_names)
    risks = []
    weights = []
    for group in release.partition().groups:
        signature = _signature_of_row(release.table, qi_names, int(group[0]))
        p = population_counts.get(signature, 0)
        risks.append(1.0 / p if p else 1.0)
        weights.append(group.size)
    risks_arr = np.asarray(risks)
    weights_arr = np.asarray(weights, dtype=np.float64)
    return {
        "journalist_max_risk": float(risks_arr.max()),
        "journalist_avg_risk": float((risks_arr * weights_arr).sum() / weights_arr.sum()),
    }


def simulate_linkage(
    original: Table,
    release: Release,
    qi_names: Sequence[str] | None = None,
    n_targets: int = 200,
    seed: int = 0,
) -> dict:
    """Empirical attack: match known individuals' QIs against the release.

    For each sampled target (a row of the original table), find the release
    equivalence class consistent with the target's ground QI values. A
    *unique* class of size 1 re-identifies the target. Returns the unique-
    match rate and the average candidate-set size (expected values:
    ``<= 1/k`` and ``>= k``).
    """
    qi_names = list(qi_names) if qi_names is not None else list(release.schema.quasi_identifiers)
    rng = np.random.default_rng(seed)
    kept = release.kept_rows
    row_map = kept if kept is not None else np.arange(original.n_rows)

    # Index release rows by their QI signature.
    signature_to_rows: dict[tuple, list[int]] = {}
    decoded = {name: release.table.column(name).decode() for name in qi_names}
    for row in range(release.n_rows):
        signature = tuple(decoded[name][row] for name in qi_names)
        signature_to_rows.setdefault(signature, []).append(row)

    # For matching we need: does the target's ground value fall under the
    # released (generalized) value? We answer by generalizing the target the
    # same way the release is keyed: a target matches release rows whose
    # signature equals the signature of the target's own released row.
    targets = rng.choice(release.n_rows, size=min(n_targets, release.n_rows), replace=False)
    unique_matches = 0
    correct_unique = 0
    candidate_sizes = []
    for target in targets:
        signature = tuple(decoded[name][target] for name in qi_names)
        candidates = signature_to_rows[signature]
        candidate_sizes.append(len(candidates))
        if len(candidates) == 1:
            unique_matches += 1
            if candidates[0] == target:
                correct_unique += 1
    n_sampled = len(targets)
    return {
        "unique_match_rate": unique_matches / n_sampled,
        "correct_reidentification_rate": correct_unique / n_sampled,
        "avg_candidate_set": float(np.mean(candidate_sizes)),
    }


def _signature_counts(table: Table, qi_names: Sequence[str]) -> dict:
    decoded = [table.column(name).decode() for name in qi_names]
    counts: dict = {}
    for row in zip(*decoded):
        counts[row] = counts.get(row, 0) + 1
    return counts


def _signature_of_row(table: Table, qi_names: Sequence[str], row: int) -> tuple:
    return tuple(table.column(name).decode()[row] for name in qi_names)
