"""Linear reconstruction attack (Dinur & Nissim, PODS 2003).

The foundational negative result that motivates differential privacy: if a
curator answers enough random *subset-sum* queries over a database of secret
bits with noise of magnitude ``o(√n)``, an attacker can reconstruct almost
every bit by linear programming / least squares. Conversely, noise of scale
``Ω(√n)`` (what a DP mechanism run ``m ≈ n`` times would add anyway) defeats
reconstruction, collapsing the attacker to baseline guessing.

Implementation notes
--------------------
* Queries are random half-subsets: each row joins a query independently with
  probability ½. ``m`` queries form a 0/1 matrix ``Q`` of shape ``(m, n)``.
* The attacker solves ``min ‖Q·x − answers‖₂`` by least squares and rounds
  to {0, 1} — the polynomial-time variant of the attack; the LP decoder in
  the paper has the same asymptotics.
* Noise models: ``"uniform"`` bounded noise in ``[−E, E]`` (the paper's
  within-E perturbation) and ``"laplace"`` (a DP curator splitting budget
  across queries).

Experiment E25 sweeps noise magnitude and reproduces the phase transition:
near-perfect reconstruction below ``√n`` noise, baseline above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "subset_sum_queries",
    "noisy_answers",
    "least_squares_reconstruct",
    "ReconstructionResult",
    "reconstruction_attack",
]


def subset_sum_queries(
    n_rows: int, n_queries: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Random half-subset query matrix of shape ``(n_queries, n_rows)``."""
    if n_rows < 1 or n_queries < 1:
        raise ValueError("need at least one row and one query")
    rng = rng or np.random.default_rng()
    return (rng.random((n_queries, n_rows)) < 0.5).astype(np.float64)


def noisy_answers(
    secret_bits: np.ndarray,
    queries: np.ndarray,
    noise_scale: float,
    noise: str = "uniform",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Answer every subset-sum query with the chosen perturbation.

    ``noise_scale`` is the bound ``E`` for uniform noise, or the Laplace
    scale ``b`` for a DP curator. Zero means exact answers.
    """
    rng = rng or np.random.default_rng()
    secret_bits = np.asarray(secret_bits, dtype=np.float64)
    exact = queries @ secret_bits
    if noise_scale == 0:
        return exact
    if noise_scale < 0:
        raise ValueError(f"noise_scale must be non-negative, got {noise_scale}")
    if noise == "uniform":
        return exact + rng.uniform(-noise_scale, noise_scale, exact.shape)
    if noise == "laplace":
        return exact + rng.laplace(0.0, noise_scale, exact.shape)
    raise ValueError(f"unknown noise model {noise!r}; use 'uniform' or 'laplace'")


def least_squares_reconstruct(queries: np.ndarray, answers: np.ndarray) -> np.ndarray:
    """Round the least-squares solution of ``Q·x = answers`` to bits."""
    solution, *_ = np.linalg.lstsq(queries, answers, rcond=None)
    return (solution >= 0.5).astype(np.int8)


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of one reconstruction run."""

    n_rows: int
    n_queries: int
    noise_scale: float
    noise_model: str
    accuracy: float          # fraction of bits recovered
    baseline: float          # majority-class guessing accuracy
    n_wrong: int

    @property
    def advantage(self) -> float:
        """Accuracy above blind guessing; ≤ 0 means the attack failed."""
        return self.accuracy - self.baseline

    @property
    def succeeded(self) -> bool:
        """Dinur–Nissim success criterion: all but o(n) bits recovered.

        We use the concrete threshold "fewer than 5% of bits wrong", which
        separates the two regimes cleanly at the experiment's scales.
        """
        return self.n_wrong < 0.05 * self.n_rows


def reconstruction_attack(
    secret_bits: np.ndarray,
    n_queries: int | None = None,
    noise_scale: float = 0.0,
    noise: str = "uniform",
    seed: int | None = 0,
) -> ReconstructionResult:
    """Run the full attack: build queries, answer noisily, decode, score.

    ``n_queries`` defaults to ``4·n`` (enough for the least-squares decoder
    to be overdetermined with margin).
    """
    rng = np.random.default_rng(seed)
    secret_bits = np.asarray(secret_bits).astype(np.int8)
    if set(np.unique(secret_bits)) - {0, 1}:
        raise ValueError("secret_bits must be 0/1")
    n = secret_bits.shape[0]
    m = n_queries if n_queries is not None else 4 * n
    queries = subset_sum_queries(n, m, rng)
    answers = noisy_answers(secret_bits, queries, noise_scale, noise, rng)
    estimate = least_squares_reconstruct(queries, answers)
    n_wrong = int((estimate != secret_bits).sum())
    majority = max(secret_bits.mean(), 1.0 - secret_bits.mean())
    return ReconstructionResult(
        n_rows=n,
        n_queries=m,
        noise_scale=float(noise_scale),
        noise_model=noise if noise_scale else "none",
        accuracy=1.0 - n_wrong / n,
        baseline=float(majority),
        n_wrong=n_wrong,
    )
