"""Population-uniqueness risk estimation from a sample.

A data custodian usually holds a *sample* of the population; a record that
is unique in the sample is only risky if it is also unique in the
population. Two standard estimators of the population-unique count from
sample equivalence-class sizes:

* **Zayatz** — models the probability that a sample unique is a population
  unique via hypergeometric draws, using the observed class-size histogram.
* **Pitman / Poisson-inflation heuristic** — treats class sizes as Poisson:
  a sample class of size f drawn with sampling fraction π comes from a
  population class of estimated size f/π; it is a population unique only if
  f == 1 and the Poisson posterior concentrates at 1.

Both take only the sample's EC-size histogram plus the sampling fraction,
so they run on any release.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core.release import Release

__all__ = ["sample_uniques", "zayatz_population_uniques", "poisson_population_uniques",
           "uniqueness_report"]


def sample_uniques(class_sizes: np.ndarray) -> int:
    """Number of size-1 equivalence classes in the sample."""
    class_sizes = np.asarray(class_sizes)
    return int((class_sizes == 1).sum())


def zayatz_population_uniques(class_sizes: np.ndarray, sampling_fraction: float) -> float:
    """Zayatz estimator of the expected number of population uniques.

    For each observed sample class size f, estimate P(population size = 1 |
    sample size = 1) from the empirical size distribution under binomial
    subsampling, then scale the sample-unique count.
    """
    _check_fraction(sampling_fraction)
    class_sizes = np.asarray(class_sizes, dtype=np.int64)
    n_uniques = sample_uniques(class_sizes)
    if n_uniques == 0:
        return 0.0
    max_size = int(class_sizes.max())
    size_counts = np.bincount(class_sizes, minlength=max_size + 1).astype(np.float64)

    # P(sample size = 1 | population size = j) under binomial thinning.
    population_sizes = np.arange(1, max_size + 1)
    p_observe_one = stats.binom.pmf(1, population_sizes, sampling_fraction)
    # Empirical prior over population sizes approximated by the observed
    # sample-size histogram (the estimator's standard simplification).
    prior = size_counts[1:]
    weights = prior * p_observe_one
    if weights.sum() == 0:
        return 0.0
    p_pop_unique_given_sample_unique = weights[0] / weights.sum()
    return float(n_uniques * p_pop_unique_given_sample_unique)


def poisson_population_uniques(class_sizes: np.ndarray, sampling_fraction: float) -> float:
    """Poisson-model estimate of expected population uniques.

    A population class of size j survives as a sample unique w.p.
    ``j π (1-π)^{j-1}``; with a Poisson(λ) size model fitted by matching the
    observed mean class size / π, the posterior P(j=1 | sample unique)
    follows in closed form.
    """
    _check_fraction(sampling_fraction)
    class_sizes = np.asarray(class_sizes, dtype=np.float64)
    n_uniques = sample_uniques(class_sizes)
    if n_uniques == 0:
        return 0.0
    mean_population_size = max(class_sizes.mean() / sampling_fraction, 1.0)
    lam = mean_population_size
    j = np.arange(1, max(int(lam * 6), 20))
    prior = stats.poisson.pmf(j, lam)
    likelihood = j * sampling_fraction * (1 - sampling_fraction) ** (j - 1)
    posterior = prior * likelihood
    if posterior.sum() == 0:
        return 0.0
    p_unique = posterior[0] / posterior.sum()
    return float(n_uniques * p_unique)


def uniqueness_report(release: Release, sampling_fraction: float) -> dict:
    """Risk summary of a release's sample-unique records."""
    sizes = release.equivalence_class_sizes()
    n_sample_uniques = sample_uniques(sizes)
    return {
        "sample_uniques": n_sample_uniques,
        "sample_unique_fraction": n_sample_uniques / release.n_rows if release.n_rows else 0.0,
        "zayatz_population_uniques": zayatz_population_uniques(sizes, sampling_fraction),
        "poisson_population_uniques": poisson_population_uniques(sizes, sampling_fraction),
    }


def _check_fraction(sampling_fraction: float) -> None:
    if not 0 < sampling_fraction <= 1:
        raise ValueError(
            f"sampling_fraction must lie in (0, 1], got {sampling_fraction}"
        )
