"""Membership tracing from aggregate statistics (Homer et al., 2008).

The attack that made NIH pull GWAS summary statistics offline: publishing
only the per-attribute *frequencies* of a study group still lets an
adversary holding one person's record decide whether that person was in the
study. For each binary attribute j, the attacker compares the target's
distance to the study frequency against their distance to a reference
population frequency:

    T(target) = Σ_j ( |t_j − pop_j| − |t_j − study_j| )

Members lean toward the study frequencies, so T is shifted positive for
in-study targets; the power of the test grows with the number of published
statistics m and shrinks with the study size n and with any noise on the
released frequencies — Laplace noise of DP scale kills the attack, which is
the canonical motivation for DP release of marginals (experiment E32).

API:

* :func:`homer_statistic` — the per-target test statistic.
* :func:`trace_membership` — run the test on in/out target sets, optionally
  through an ε-DP frequency release, and report TPR/FPR/advantage at the
  natural T > 0 threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["homer_statistic", "TracingResult", "trace_membership", "dp_frequency_release"]


def _validate_binary(matrix: np.ndarray, name: str) -> np.ndarray:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-D (records x attributes) 0/1 matrix")
    if matrix.size and set(np.unique(matrix)) - {0, 1}:
        raise ValueError(f"{name} must contain only 0/1 values")
    return matrix.astype(np.float64)


def homer_statistic(
    target: np.ndarray, study_freq: np.ndarray, population_freq: np.ndarray
) -> float:
    """T = Σ_j (|t_j − pop_j| − |t_j − study_j|); positive ⇒ "in study"."""
    target = np.asarray(target, dtype=np.float64)
    study_freq = np.asarray(study_freq, dtype=np.float64)
    population_freq = np.asarray(population_freq, dtype=np.float64)
    if not target.shape == study_freq.shape == population_freq.shape:
        raise ValueError("target and frequency vectors must be parallel")
    return float(np.sum(np.abs(target - population_freq) - np.abs(target - study_freq)))


def dp_frequency_release(
    study: np.ndarray, epsilon: float, rng: np.random.Generator | None = None
) -> np.ndarray:
    """ε-DP release of a study group's attribute frequencies.

    One record changes each of the m frequencies by at most 1/n, so the L1
    sensitivity of the vector is m/n and Laplace(m/(n·ε)) per coordinate
    suffices. Frequencies are clamped back to [0, 1] (free post-processing).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    study = _validate_binary(study, "study")
    rng = rng or np.random.default_rng()
    n, m = study.shape
    freq = study.mean(axis=0)
    noisy = freq + rng.laplace(0.0, m / (n * epsilon), m)
    return np.clip(noisy, 0.0, 1.0)


@dataclass(frozen=True)
class TracingResult:
    """Power of the tracing test at the T > 0 decision threshold."""

    n_statistics: int
    study_size: int
    epsilon: float | None            # None = exact frequencies released
    true_positive_rate: float        # members flagged as members at T > 0
    false_positive_rate: float       # non-members flagged as members at T > 0
    mean_statistic_in: float
    mean_statistic_out: float
    best_advantage: float            # max over thresholds of TPR − FPR

    @property
    def advantage(self) -> float:
        """TPR − FPR at the naive T > 0 threshold.

        Finite study/reference samples shift the null distribution of T away
        from zero, so the naive threshold is biased; :attr:`best_advantage`
        (the membership-inference advantage at the optimal threshold, which
        an attacker calibrates from reference data) is the standard metric.
        """
        return self.true_positive_rate - self.false_positive_rate


def trace_membership(
    study: np.ndarray,
    reference: np.ndarray,
    targets_out: np.ndarray,
    epsilon: float | None = None,
    rng: np.random.Generator | None = None,
) -> TracingResult:
    """Run the tracing test against a (possibly DP) frequency release.

    ``study`` rows are the members (also used as the in-group targets,
    matching the attack's threat model: the adversary holds the victim's
    record). ``reference`` estimates population frequencies; ``targets_out``
    are non-members drawn from the same population.
    """
    study = _validate_binary(study, "study")
    reference = _validate_binary(reference, "reference")
    targets_out = _validate_binary(targets_out, "targets_out")
    if not study.shape[1] == reference.shape[1] == targets_out.shape[1]:
        raise ValueError("all matrices must share the attribute dimension")
    rng = rng or np.random.default_rng()

    if epsilon is None:
        study_freq = study.mean(axis=0)
    else:
        study_freq = dp_frequency_release(study, epsilon, rng)
    population_freq = reference.mean(axis=0)

    stats_in = np.array(
        [homer_statistic(row, study_freq, population_freq) for row in study]
    )
    stats_out = np.array(
        [homer_statistic(row, study_freq, population_freq) for row in targets_out]
    )
    return TracingResult(
        n_statistics=study.shape[1],
        study_size=study.shape[0],
        epsilon=epsilon,
        true_positive_rate=float((stats_in > 0).mean()),
        false_positive_rate=float((stats_out > 0).mean()),
        mean_statistic_in=float(stats_in.mean()),
        mean_statistic_out=float(stats_out.mean()),
        best_advantage=_best_threshold_advantage(stats_in, stats_out),
    )


def _best_threshold_advantage(stats_in: np.ndarray, stats_out: np.ndarray) -> float:
    """Max over decision thresholds of TPR − FPR (flag 'member' iff T ≥ τ)."""
    thresholds = np.unique(np.concatenate([stats_in, stats_out]))
    best = 0.0
    for tau in thresholds:
        tpr = float((stats_in >= tau).mean())
        fpr = float((stats_out >= tau).mean())
        best = max(best, tpr - fpr)
    return best
