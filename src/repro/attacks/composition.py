"""Composition (intersection) attack across multiple releases.

Two independently k-anonymous releases of overlapping record sets are not
jointly k-anonymous: an attacker who knows a target appears in both can
intersect the target's candidate equivalence classes, often shrinking the
candidate set below k (Ganta, Kasiviswanathan & Smith).

:func:`intersection_attack` takes two releases that are row-aligned with the
same original table (via ``kept_rows``) and computes, for each shared
record, the size of the intersection of its two candidate sets and whether
the intersection pins its sensitive value.
"""

from __future__ import annotations

import numpy as np

from ..core.release import Release

__all__ = ["intersection_attack"]


def intersection_attack(release_a: Release, release_b: Release, sensitive: str | None = None) -> dict:
    """Candidate-set shrinkage from intersecting two releases.

    Both releases must descend from the same original table. Rows are
    matched through ``kept_rows`` (identity when no suppression happened).
    Reports the distribution of intersected candidate-set sizes and the
    fraction of shared records whose sensitive value becomes unique.
    """
    sensitive = sensitive or release_a.schema.sensitive[0]
    map_a = _original_row_map(release_a)
    map_b = _original_row_map(release_b)
    shared = np.intersect1d(map_a, map_b)
    if shared.size == 0:
        return {"n_shared": 0, "avg_intersection": 0.0, "below_k_fraction": 0.0,
                "sensitive_pinned_fraction": 0.0, "min_intersection": 0}

    position_a = {int(orig): i for i, orig in enumerate(map_a)}
    position_b = {int(orig): i for i, orig in enumerate(map_b)}

    classes_a = _class_of_rows(release_a)
    classes_b = _class_of_rows(release_b)
    members_a = _class_members(release_a, map_a)
    members_b = _class_members(release_b, map_b)

    sens_a = release_a.table.codes(sensitive)

    sizes = []
    pinned = 0
    for orig in shared:
        row_a, row_b = position_a[int(orig)], position_b[int(orig)]
        candidates = members_a[classes_a[row_a]] & members_b[classes_b[row_b]]
        sizes.append(len(candidates))
        candidate_rows_a = [position_a[c] for c in candidates if c in position_a]
        values = {int(sens_a[r]) for r in candidate_rows_a}
        if len(values) == 1:
            pinned += 1

    sizes_arr = np.asarray(sizes, dtype=np.float64)
    k_a = int(release_a.equivalence_class_sizes().min())
    return {
        "n_shared": int(shared.size),
        "avg_intersection": float(sizes_arr.mean()),
        "min_intersection": int(sizes_arr.min()),
        "below_k_fraction": float((sizes_arr < k_a).mean()),
        "sensitive_pinned_fraction": pinned / shared.size,
    }


def _original_row_map(release: Release) -> np.ndarray:
    if release.kept_rows is not None:
        return np.asarray(release.kept_rows, dtype=np.int64)
    n = release.original_n_rows or release.n_rows
    return np.arange(n, dtype=np.int64)


def _class_of_rows(release: Release) -> np.ndarray:
    """For each release row, the index of its equivalence class."""
    out = np.empty(release.n_rows, dtype=np.int64)
    for class_index, group in enumerate(release.partition().groups):
        out[group] = class_index
    return out


def _class_members(release: Release, row_map: np.ndarray) -> list[set]:
    """Per class: the set of *original-table* row ids it contains."""
    return [
        {int(row_map[r]) for r in group}
        for group in release.partition().groups
    ]
