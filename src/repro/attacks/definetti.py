"""deFinetti (machine-learning) attack on bucketized releases (Kifer).

Anatomy-style releases publish exact quasi-identifiers next to a per-group
bag of sensitive values, arguing each record's value is hidden among the
group's ℓ values. The deFinetti attack breaks the random-worlds assumption:
an attacker trains a classifier *across groups* — learning the global
QI → sensitive correlation — and then, within each group, assigns the
group's sensitive values to its members by predicted affinity.

Implementation: train naive Bayes on (QI features → sensitive value) using
group-level soft labels (every member labelled with every group value,
weighted by count); then, per group, greedily match members to the group's
sensitive multiset by descending predicted probability. Success is measured
against the true assignment.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.anatomy import AnatomizedRelease
from ..core.table import Table
from ..mining.naive_bayes import NaiveBayes
from ..mining.split import encode_features

__all__ = ["definetti_attack"]


def definetti_attack(
    anatomized: AnatomizedRelease,
    original_sensitive_codes: np.ndarray,
    sensitive_categories: tuple,
    feature_names: list[str] | None = None,
) -> dict:
    """Per-record sensitive-value reconstruction on an Anatomy release.

    Parameters
    ----------
    anatomized:
        the (QIT, ST) pair under attack.
    original_sensitive_codes:
        ground-truth sensitive codes aligned with the QIT rows (available to
        the evaluator, not the attacker).
    sensitive_categories:
        category list the codes index into.
    feature_names:
        QIT columns to use as features (default: all except group_id).

    Returns accuracy of the attack and of the random-worlds baseline
    (guessing uniformly within each group).
    """
    qit = anatomized.qit
    feature_names = feature_names or [
        name for name in qit.column_names if name != "group_id"
    ]
    features = encode_features(qit, feature_names)
    category_index = {value: code for code, value in enumerate(sensitive_categories)}

    # Training set: replicate each member once per sensitive value present in
    # its group, weighted by that value's count (soft group labels).
    train_rows, train_labels = [], []
    for gid, group in enumerate(anatomized.groups):
        for value, count in anatomized.st[gid].items():
            code = category_index[value]
            for row in group:
                for _ in range(count):
                    train_rows.append(row)
                    train_labels.append(code)
    model = NaiveBayes().fit(features[np.array(train_rows)], np.array(train_labels))
    log_proba = model.predict_log_proba(features)

    # Within each group, assign the group's sensitive multiset greedily by
    # descending affinity.
    predicted = np.full(qit.n_rows, -1, dtype=np.int64)
    baseline_correct = 0.0
    for gid, group in enumerate(anatomized.groups):
        multiset: list[int] = []
        for value, count in anatomized.st[gid].items():
            multiset.extend([category_index[value]] * count)
        remaining = dict()
        for code in multiset:
            remaining[code] = remaining.get(code, 0) + 1
        # Greedy: order (row, code) pairs by affinity, assign respecting
        # remaining counts and one value per row.
        pairs = [
            (float(log_proba[row, code]), int(row), int(code))
            for row in group
            for code in remaining
        ]
        pairs.sort(reverse=True)
        assigned_rows: set[int] = set()
        for _, row, code in pairs:
            if row in assigned_rows or remaining.get(code, 0) == 0:
                continue
            predicted[row] = code
            assigned_rows.add(row)
            remaining[code] -= 1
        # Random-worlds baseline: P(correct) = count(true value)/|group|.
        group_size = len(group)
        for row in group:
            true_code = int(original_sensitive_codes[row])
            true_count = sum(1 for c in multiset if c == true_code)
            baseline_correct += true_count / group_size

    accuracy = float((predicted == original_sensitive_codes).mean())
    baseline = baseline_correct / qit.n_rows
    return {
        "attack_accuracy": accuracy,
        "random_worlds_baseline": baseline,
        "lift": accuracy / baseline if baseline else float("inf"),
    }
