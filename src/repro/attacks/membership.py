"""Table-linkage (membership-inference) attack.

The attacker holds a population table and a target individual known to be in
the population, and wants to decide whether the target is in the published
research subset. For a target whose generalized QI signature matches a
release class with ``r`` records and ``p`` population records, the optimal
attacker guesses "member" with belief ``r / p``.

:func:`membership_attack` simulates this against a labelled population
(members vs. non-members) and reports the attacker's *advantage*
(true-positive rate minus false-positive rate at the optimal belief
threshold) — the quantity δ-presence bounds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.release import Release
from ..core.table import Table

__all__ = ["membership_attack", "membership_beliefs"]


def membership_beliefs(
    release: Release, population: Table, qi_names: Sequence[str] | None = None
) -> np.ndarray:
    """Per-population-row belief ``r / p`` of being in the release.

    The population table must carry the same generalized QI labels as the
    release (generalize it with the release's node first).
    """
    qi_names = list(qi_names) if qi_names is not None else list(release.schema.quasi_identifiers)
    release_counts = _signature_counts(release.table, qi_names)
    population_signatures = _signatures(population, qi_names)
    population_counts: dict = {}
    for signature in population_signatures:
        population_counts[signature] = population_counts.get(signature, 0) + 1
    beliefs = np.empty(len(population_signatures))
    for i, signature in enumerate(population_signatures):
        r = release_counts.get(signature, 0)
        p = population_counts[signature]
        beliefs[i] = min(r / p, 1.0)
    return beliefs


def membership_attack(
    release: Release,
    population: Table,
    member_mask: np.ndarray,
    qi_names: Sequence[str] | None = None,
) -> dict:
    """Advantage of the optimal-threshold membership attacker.

    ``member_mask[i]`` is True iff population row ``i`` is actually in the
    published subset. Returns attacker advantage (TPR - FPR maximized over
    thresholds), plus the AUC-like mean belief gap.
    """
    beliefs = membership_beliefs(release, population, qi_names)
    member_mask = np.asarray(member_mask, dtype=bool)
    member_beliefs = beliefs[member_mask]
    non_member_beliefs = beliefs[~member_mask]
    if member_beliefs.size == 0 or non_member_beliefs.size == 0:
        return {"advantage": 0.0, "mean_belief_gap": 0.0}

    thresholds = np.unique(beliefs)
    best_advantage = 0.0
    for threshold in thresholds:
        tpr = float((member_beliefs >= threshold).mean())
        fpr = float((non_member_beliefs >= threshold).mean())
        best_advantage = max(best_advantage, tpr - fpr)
    return {
        "advantage": best_advantage,
        "mean_belief_gap": float(member_beliefs.mean() - non_member_beliefs.mean()),
    }


def _signatures(table: Table, qi_names: Sequence[str]) -> list[tuple]:
    decoded = [table.column(name).decode() for name in qi_names]
    return list(zip(*decoded))


def _signature_counts(table: Table, qi_names: Sequence[str]) -> dict:
    counts: dict = {}
    for signature in _signatures(table, qi_names):
        counts[signature] = counts.get(signature, 0) + 1
    return counts
