"""Minimality attack (Wong, Fu, Wang & Pei, VLDB 2007).

Anonymization algorithms advertise *minimality*: they generalize no more
than needed to meet the privacy model. That very guarantee leaks. If an
adversary (who knows every individual's quasi-identifier — the standard
assumption) sees two QI groups merged in the release, minimality tells them
**at least one of the constituent groups must have violated the model on its
own** — otherwise the publisher would not have merged. Conditioning on that
event skews the posterior over sensitive values well past the bound the
model claims.

This module implements the attack against *simple ℓ-diversity* (each EC may
contain at most a ``1/ℓ`` fraction of the sensitive value), the setting of
the original paper:

* :class:`MinimalPublisher` — a deliberately minimal global-recoding
  publisher: partitions by the QI, then merges sibling groups (per a fixed
  pairing) only where the model fails.
* :func:`minimality_posterior` — the adversary's exact posterior, computed
  by enumerating pre-merge sensitive splits weighted hypergeometrically and
  conditioning on "some side violated".
* :func:`naive_posterior` — what a minimality-unaware adversary concludes
  (the EC's sensitive fraction, ≤ 1/ℓ by construction).

The attack "lift" — max posterior over the naive 1/ℓ bound — is what
experiment E27 reports; the paper's fix (don't be minimal: randomize or
over-generalize) is demonstrated by the ``randomize_merges`` publisher
option, which kills the inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Sequence

import numpy as np

__all__ = [
    "MergedClass",
    "MinimalPublisher",
    "violates_simple_l_diversity",
    "minimality_posterior",
    "naive_posterior",
]


def violates_simple_l_diversity(n_sensitive: int, n_total: int, ell: int) -> bool:
    """Simple ℓ-diversity: the sensitive fraction must not exceed 1/ℓ."""
    if n_total == 0:
        return False
    return n_sensitive * ell > n_total


@dataclass(frozen=True)
class MergedClass:
    """One published equivalence class: constituent group sizes + counts.

    ``group_sizes[j]`` is the number of individuals from original QI group
    ``j``; ``sensitive_total`` is the published count of the sensitive value
    in the merged class; ``merged`` is False for classes published as-is.
    """

    group_sizes: tuple[int, ...]
    sensitive_total: int
    merged: bool
    label: str = ""

    @property
    def n_total(self) -> int:
        return sum(self.group_sizes)


class MinimalPublisher:
    """A minimal simple-ℓ-diversity publisher over a single categorical QI.

    Groups are paired as siblings ``(0,1), (2,3), …`` in QI-code order
    (standing in for a two-level generalization hierarchy). A pair is merged
    only if at least one side violates the model; a merged pair that *still*
    violates is suppressed. With ``randomize_merges`` the publisher also
    merges non-violating pairs with probability ½ — the paper's randomness
    countermeasure, which breaks the "merge ⇒ violation" implication.
    """

    def __init__(self, ell: int, randomize_merges: bool = False, seed: int | None = 0):
        if ell < 2:
            raise ValueError(f"ell must be >= 2, got {ell}")
        self.ell = int(ell)
        self.randomize_merges = bool(randomize_merges)
        self.seed = seed

    def publish(
        self, qi_codes: np.ndarray, sensitive: np.ndarray
    ) -> list[MergedClass]:
        """Anonymize and return the published classes (suppressing failures)."""
        qi_codes = np.asarray(qi_codes)
        sensitive = np.asarray(sensitive).astype(bool)
        if qi_codes.shape != sensitive.shape:
            raise ValueError("qi_codes and sensitive must be parallel arrays")
        rng = np.random.default_rng(self.seed)
        n_groups = int(qi_codes.max()) + 1 if qi_codes.size else 0
        sizes = np.bincount(qi_codes, minlength=n_groups)
        s_counts = np.bincount(qi_codes, weights=sensitive, minlength=n_groups).astype(int)

        published: list[MergedClass] = []
        for left in range(0, n_groups, 2):
            right = left + 1
            if right >= n_groups or sizes[right] == 0:
                if sizes[left] and not violates_simple_l_diversity(
                    s_counts[left], sizes[left], self.ell
                ):
                    published.append(
                        MergedClass((int(sizes[left]),), int(s_counts[left]), False, f"q{left}")
                    )
                continue
            left_bad = violates_simple_l_diversity(s_counts[left], sizes[left], self.ell)
            right_bad = violates_simple_l_diversity(s_counts[right], sizes[right], self.ell)
            must_merge = left_bad or right_bad
            voluntary = self.randomize_merges and rng.random() < 0.5
            if must_merge or voluntary:
                total_s = int(s_counts[left] + s_counts[right])
                total_n = int(sizes[left] + sizes[right])
                if violates_simple_l_diversity(total_s, total_n, self.ell):
                    continue  # merged pair still violates: suppress it
                published.append(
                    MergedClass(
                        (int(sizes[left]), int(sizes[right])),
                        total_s,
                        True,
                        f"q{left}|q{right}",
                    )
                )
            else:
                for g in (left, right):
                    if sizes[g]:
                        published.append(
                            MergedClass((int(sizes[g]),), int(s_counts[g]), False, f"q{g}")
                        )
        return published


def naive_posterior(ec: MergedClass) -> float:
    """The minimality-unaware belief: uniform within the published class."""
    if ec.n_total == 0:
        return 0.0
    return ec.sensitive_total / ec.n_total


def minimality_posterior(ec: MergedClass, ell: int, publisher_is_minimal: bool = True) -> list[float]:
    """Per-group posterior P(individual has the sensitive value | release).

    For a merged pair the adversary enumerates every split ``(m₁, m₂)`` of
    the published sensitive count across the two constituent groups, weights
    each split hypergeometrically (``C(n₁,m₁)·C(n₂,m₂)`` assignments), and —
    if the publisher is known minimal — keeps only splits where **some side
    violates** simple ℓ-diversity. The posterior for a member of group j is
    the conditional expectation of ``mⱼ/nⱼ``.

    With ``publisher_is_minimal=False`` (the randomized publisher) no split
    can be excluded, and the posterior collapses back to the naive value.
    """
    if len(ec.group_sizes) == 1 or not ec.merged:
        return [naive_posterior(ec)] * len(ec.group_sizes)
    if len(ec.group_sizes) != 2:
        raise ValueError("minimality_posterior handles pairwise merges")
    n1, n2 = ec.group_sizes
    m = ec.sensitive_total
    weights, splits = [], []
    for m1 in range(max(0, m - n2), min(m, n1) + 1):
        m2 = m - m1
        admissible = True
        if publisher_is_minimal:
            admissible = violates_simple_l_diversity(m1, n1, ell) or violates_simple_l_diversity(
                m2, n2, ell
            )
        if admissible:
            weights.append(comb(n1, m1) * comb(n2, m2))
            splits.append((m1, m2))
    if not weights:
        # No admissible pre-merge state: adversary's model is inconsistent
        # with the release (voluntary merge); fall back to naive.
        return [naive_posterior(ec)] * 2
    total = float(sum(weights))
    post1 = sum(w * (m1 / n1) for w, (m1, _) in zip(weights, splits)) / total
    post2 = sum(w * (m2 / n2) for w, (_, m2) in zip(weights, splits)) / total
    return [post1, post2]


def attack_lift(
    classes: Sequence[MergedClass], ell: int, publisher_is_minimal: bool = True
) -> float:
    """Max minimality posterior over all groups, divided by the 1/ℓ bound."""
    best = 0.0
    for ec in classes:
        for p in minimality_posterior(ec, ell, publisher_is_minimal):
            best = max(best, p)
    return best * ell


__all__.append("attack_lift")
