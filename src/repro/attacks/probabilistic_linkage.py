"""Probabilistic record linkage (Fellegi & Sunter, JASA 1969) as an attack.

The deterministic linkage attack (``repro.attacks.linkage``) joins on exact
quasi-identifier equality. Real adversaries hold *dirty* auxiliary data —
typos, stale values, different codings — and still succeed, using the
Fellegi–Sunter model: for each comparison field i estimate

    m_i = P(field agrees | records truly match)
    u_i = P(field agrees | records do not match)

and score a candidate pair by the log-likelihood-ratio match weight
``Σ log2(m_i/u_i)`` over agreeing fields plus ``Σ log2((1−m_i)/(1−u_i))``
over disagreeing ones. Pairs above an upper threshold are links, below a
lower threshold non-links, in between clerical review.

The m/u parameters are *unsupervised*: :class:`FellegiSunter` fits them
with EM over the comparison vectors, treating the match indicator as the
latent variable — no labelled pairs needed, which is exactly the attacker's
situation.

:func:`probabilistic_linkage_attack` wires this into the library: compare an
external register against a released table field-by-field, fit, link, and
score precision/recall against ground truth. Experiment E33 reproduces the
two canonical shapes: linkage survives substantial corruption of the
auxiliary data, and generalization of the release degrades it k-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

from ..core.table import Table
from ..errors import NotFittedError, SchemaError

__all__ = [
    "FellegiSunter",
    "compare_tables",
    "LinkageResult",
    "probabilistic_linkage_attack",
]

_EPS = 1e-6


class FellegiSunter:
    """EM-fitted match/unmatch model over binary comparison vectors.

    Parameters
    ----------
    max_iter, tol:
        EM stopping rule (log-likelihood change below ``tol``).
    initial_match_rate:
        starting value of the latent match prevalence p.
    """

    def __init__(self, max_iter: int = 200, tol: float = 1e-9,
                 initial_match_rate: float = 0.05):
        if not 0 < initial_match_rate < 1:
            raise SchemaError("initial_match_rate must be in (0, 1)")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.initial_match_rate = float(initial_match_rate)
        self.m_: np.ndarray | None = None
        self.u_: np.ndarray | None = None
        self.match_rate_: float | None = None
        self.n_iter_: int = 0

    # -- EM ---------------------------------------------------------------

    def fit(self, vectors: np.ndarray) -> "FellegiSunter":
        """Estimate (m, u, p) from unlabelled comparison vectors."""
        v = self._check_vectors(vectors)
        n_pairs, n_fields = v.shape
        # Init: matches agree a lot, non-matches agree at the observed base rate.
        m = np.full(n_fields, 0.9)
        u = np.clip(v.mean(axis=0), 0.05, 0.9)
        p = self.initial_match_rate
        previous = -np.inf
        for iteration in range(1, self.max_iter + 1):
            # E-step: posterior match probability per pair.
            log_match = np.log(p) + (
                v @ np.log(m) + (1 - v) @ np.log(1 - m)
            )
            log_unmatch = np.log(1 - p) + (
                v @ np.log(u) + (1 - v) @ np.log(1 - u)
            )
            top = np.maximum(log_match, log_unmatch)
            likelihood = top + np.log(
                np.exp(log_match - top) + np.exp(log_unmatch - top)
            )
            gamma = np.exp(log_match - likelihood)
            # M-step.
            weight = gamma.sum()
            m = np.clip((gamma @ v) / max(weight, _EPS), _EPS, 1 - _EPS)
            u = np.clip(((1 - gamma) @ v) / max(n_pairs - weight, _EPS), _EPS, 1 - _EPS)
            p = float(np.clip(weight / n_pairs, _EPS, 1 - _EPS))
            total = float(likelihood.sum())
            self.n_iter_ = iteration
            if abs(total - previous) < self.tol:
                break
            previous = total
        self.m_, self.u_, self.match_rate_ = m, u, p
        return self

    # -- scoring ------------------------------------------------------------

    def weights(self, vectors: np.ndarray) -> np.ndarray:
        """Log2 likelihood-ratio match weight of each comparison vector."""
        if self.m_ is None or self.u_ is None:
            raise NotFittedError("call fit() before scoring")
        v = self._check_vectors(vectors)
        agree = np.log2(self.m_ / self.u_)
        disagree = np.log2((1 - self.m_) / (1 - self.u_))
        return v @ agree + (1 - v) @ disagree

    def posterior(self, vectors: np.ndarray) -> np.ndarray:
        """Posterior match probability of each pair under the fitted model."""
        if self.match_rate_ is None:
            raise NotFittedError("call fit() before scoring")
        ratio = np.exp2(self.weights(vectors))
        prior_odds = self.match_rate_ / (1 - self.match_rate_)
        odds = ratio * prior_odds
        return odds / (1 + odds)

    def classify(
        self, vectors: np.ndarray, upper: float = 0.9, lower: float = 0.1
    ) -> np.ndarray:
        """1 = link, 0 = non-link, −1 = clerical review (posterior bands)."""
        post = self.posterior(vectors)
        labels = np.full(post.shape, -1, dtype=np.int8)
        labels[post >= upper] = 1
        labels[post <= lower] = 0
        return labels

    @staticmethod
    def _check_vectors(vectors: np.ndarray) -> np.ndarray:
        v = np.asarray(vectors, dtype=np.float64)
        if v.ndim != 2 or v.size == 0:
            raise SchemaError("comparison vectors must form a non-empty 2-D matrix")
        if set(np.unique(v)) - {0.0, 1.0}:
            raise SchemaError("comparison vectors must be 0/1 (agree/disagree)")
        return v

    def __repr__(self) -> str:
        fitted = "fitted" if self.m_ is not None else "unfitted"
        return f"FellegiSunter({fitted}, iters={self.n_iter_})"


def compare_tables(
    left: Table,
    right: Table,
    fields: Sequence[str],
    numeric_tolerance: float = 0.0,
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """All-pairs field-agreement matrix between two tables.

    Categorical fields agree on equal decoded values; numeric fields agree
    within ``numeric_tolerance``. Returns the 0/1 matrix (one row per pair)
    and the (left_index, right_index) pair list in the same order.
    """
    if not fields:
        raise SchemaError("need at least one comparison field")
    decoded_left = {f: left.column(f).decode() for f in fields}
    decoded_right = {f: right.column(f).decode() for f in fields}
    is_numeric = {f: not left.column(f).is_categorical for f in fields}
    pairs = list(product(range(left.n_rows), range(right.n_rows)))
    vectors = np.zeros((len(pairs), len(fields)))
    for fi, f in enumerate(fields):
        lv, rv = decoded_left[f], decoded_right[f]
        if is_numeric[f]:
            for row, (i, j) in enumerate(pairs):
                vectors[row, fi] = abs(lv[i] - rv[j]) <= numeric_tolerance
        else:
            for row, (i, j) in enumerate(pairs):
                vectors[row, fi] = lv[i] == rv[j]
    return vectors, pairs


@dataclass(frozen=True)
class LinkageResult:
    """Attack outcome against known ground truth."""

    n_links: int
    n_true_matches: int
    precision: float
    recall: float
    matched_pairs: tuple[tuple[int, int], ...]

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def probabilistic_linkage_attack(
    released: Table,
    external: Table,
    fields: Sequence[str],
    true_match: dict[int, int],
    numeric_tolerance: float = 0.0,
    upper: float = 0.9,
) -> LinkageResult:
    """Link an external register to a released table and score the attack.

    ``true_match`` maps external row index → released row index (ground
    truth for evaluation only; the model never sees it). Each external
    record is linked to its best-weight released row if the posterior
    clears ``upper``; one-to-one matching is enforced greedily by weight.
    """
    if not true_match:
        raise SchemaError("true_match must name at least one ground-truth pair")
    vectors, pairs = compare_tables(released, external, fields, numeric_tolerance)
    model = FellegiSunter().fit(vectors)
    post = model.posterior(vectors)
    weight = model.weights(vectors)

    # Greedy one-to-one assignment by descending weight.
    order = np.argsort(-weight, kind="stable")
    used_left: set[int] = set()
    used_right: set[int] = set()
    links: list[tuple[int, int]] = []
    for idx in order:
        if post[idx] < upper:
            break
        i, j = pairs[idx]
        if i in used_left or j in used_right:
            continue
        used_left.add(i)
        used_right.add(j)
        links.append((i, j))

    correct = sum(1 for i, j in links if true_match.get(j) == i)
    precision = correct / len(links) if links else 0.0
    recall = correct / len(true_match)
    return LinkageResult(
        n_links=len(links),
        n_true_matches=len(true_match),
        precision=precision,
        recall=recall,
        matched_pairs=tuple(links),
    )
