"""(α, k)-anonymity (Wong et al.).

Combines k-anonymity with a cap on the confidence of inferring any single
sensitive value: every equivalence class must have size at least ``k`` AND
no sensitive value may occupy more than an ``α`` fraction of the class.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["AlphaKAnonymity"]


class AlphaKAnonymity:
    """k-anonymity plus per-class sensitive-value frequency cap α."""

    monotone = True

    def __init__(self, alpha: float, k: int, sensitive: str):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.alpha = float(alpha)
        self.k = int(k)
        self.sensitive = sensitive
        self.name = f"({self.alpha:g},{self.k})-anonymity({sensitive})"

    def _ok(self, counts: np.ndarray) -> bool:
        total = counts.sum()
        if total < self.k:
            return False
        return float(counts.max()) <= self.alpha * total + 1e-12

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        return all(
            self._ok(counts)
            for counts in partition.sensitive_counts(table, self.sensitive)
        )

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        histograms = partition.sensitive_counts(table, self.sensitive)
        return [i for i, counts in enumerate(histograms) if not self._ok(counts)]

    # -- GroupStats fast path (see repro.core.engine) -----------------------

    def _ok_mask(self, stats) -> np.ndarray:
        hist = stats.histogram(self.sensitive)
        totals = hist.sum(axis=1)
        return (totals >= self.k) & (
            hist.max(axis=1).astype(np.float64) <= self.alpha * totals + 1e-12
        )

    def check_stats(self, stats) -> bool:
        return bool(stats.n_groups) and bool(self._ok_mask(stats).all())

    def failing_groups_stats(self, stats) -> list[int]:
        return np.flatnonzero(~self._ok_mask(stats)).tolist()

    def __repr__(self) -> str:
        return f"AlphaKAnonymity(alpha={self.alpha}, k={self.k}, sensitive={self.sensitive!r})"
