"""LKC-privacy (Mohammed, Fung et al.) for high-dimensional data.

Full k-anonymity over many quasi-identifiers destroys high-dimensional data
(the curse of dimensionality: every record is unique). LKC-privacy assumes
the attacker knows at most ``L`` QI values of the target, and requires that
every combination of at most L QI values that actually occurs in the data

* matches at least ``K`` records, and
* lets no sensitive value be inferred with confidence above ``C``.

Checking enumerates the occurring value combinations of sizes 1..L over the
(generalized) QIs — exponential in L but L is small (2–3) by design.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["LKCPrivacy"]


class LKCPrivacy:
    """Bound on adversaries knowing at most L quasi-identifier values."""

    monotone = True

    def __init__(
        self,
        l: int,
        k: int,
        c: float,
        sensitive: str,
        qi_names: Sequence[str],
    ):
        if l < 1:
            raise ValueError(f"L must be >= 1, got {l}")
        if k < 1:
            raise ValueError(f"K must be >= 1, got {k}")
        if not 0 < c <= 1:
            raise ValueError(f"C must lie in (0, 1], got {c}")
        self.l = int(l)
        self.k = int(k)
        self.c = float(c)
        self.sensitive = sensitive
        self.qi_names = tuple(qi_names)
        self.name = f"LKC(L={l},K={k},C={c:g},{sensitive})"

    def violations(self, table: Table) -> list[dict]:
        """All (subset, value-combination) pairs breaking the K or C bound."""
        sensitive_codes = table.codes(self.sensitive)
        n_sensitive = len(table.column(self.sensitive).categories)
        out = []
        usable = [name for name in self.qi_names if name in table.column_names]
        for size in range(1, min(self.l, len(usable)) + 1):
            for subset in combinations(usable, size):
                for group in table.group_rows(list(subset)):
                    histogram = np.bincount(sensitive_codes[group], minlength=n_sensitive)
                    total = int(histogram.sum())
                    confidence = float(histogram.max()) / total if total else 0.0
                    if total < self.k or confidence > self.c + 1e-12:
                        out.append(
                            {
                                "attributes": subset,
                                "group_size": total,
                                "max_confidence": confidence,
                                "rows": group,
                            }
                        )
        return out

    def check(self, table: Table, partition: EquivalenceClasses | None = None) -> bool:
        """Partition argument accepted for protocol compatibility; LKC checks
        value combinations directly on the (generalized) table."""
        return not self.violations(table)

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        violating_rows: set[int] = set()
        for violation in self.violations(table):
            violating_rows.update(int(r) for r in violation["rows"])
        failing = []
        for index, group in enumerate(partition.groups):
            if any(int(r) in violating_rows for r in group):
                failing.append(index)
        return failing

    def __repr__(self) -> str:
        return f"LKCPrivacy(L={self.l}, K={self.k}, C={self.c}, sensitive={self.sensitive!r})"
