"""k-anonymity (Samarati & Sweeney).

A release is k-anonymous if every equivalence class over the
quasi-identifiers contains at least ``k`` records, so any record is
indistinguishable from at least ``k - 1`` others with respect to linkage.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["KAnonymity"]


class KAnonymity:
    """Minimum equivalence-class size constraint."""

    monotone = True

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"{self.k}-anonymity"

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        return partition.min_size() >= self.k if len(partition) else False

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        return [i for i, g in enumerate(partition.groups) if g.size < self.k]

    # -- GroupStats fast path (see repro.core.engine) -----------------------

    def check_stats(self, stats) -> bool:
        return bool(stats.sizes.size) and stats.min_size() >= self.k

    def failing_groups_stats(self, stats) -> list[int]:
        return np.flatnonzero(stats.sizes < self.k).tolist()

    def __repr__(self) -> str:
        return f"KAnonymity(k={self.k})"
