"""Privacy-model protocol.

A privacy model is a predicate over the EC partition of a candidate release
(plus, for sensitive-attribute models, the sensitive column of the table).
Algorithms call :meth:`PrivacyModel.check` on candidate generalizations and
also use :meth:`failing_groups` to decide which records to suppress.

Monotonicity: every model shipped here is *generalization-monotone* — if a
node satisfies it, so does every more general node (given the same record
set). Incognito's pruning and Datafly's greedy loop rely on this; models
advertise it via :attr:`PrivacyModel.monotone` so non-monotone extensions can
opt out of the pruning.

Stats fast path: models may additionally implement ``check_stats(stats)``
and ``failing_groups_stats(stats)`` over a
:class:`~repro.core.engine.GroupStats` (per-group sizes and sensitive
histograms) so lattice searches can evaluate them without materializing a
generalized table. :func:`supports_stats` reports whether a model opts in;
models that don't are transparently evaluated through the legacy
``check(table, partition)`` interface.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.engine import supports_stats
from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["PrivacyModel", "CompositeModel", "failing_rows", "supports_stats"]


@runtime_checkable
class PrivacyModel(Protocol):
    """Protocol all privacy models implement."""

    #: Human-readable model name, e.g. ``"5-anonymity"``.
    name: str
    #: True if satisfaction is preserved under further generalization.
    monotone: bool

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        """True iff every equivalence class satisfies the model."""
        ...

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        """Indices (into ``partition.groups``) of classes violating the model."""
        ...


class CompositeModel:
    """Conjunction of several privacy models (e.g. k-anonymity AND ℓ-diversity)."""

    def __init__(self, *models: PrivacyModel):
        if not models:
            raise ValueError("CompositeModel needs at least one model")
        self.models = models
        self.name = " & ".join(m.name for m in models)
        self.monotone = all(m.monotone for m in models)

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        return all(m.check(table, partition) for m in self.models)

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        failing: set[int] = set()
        for model in self.models:
            failing.update(model.failing_groups(table, partition))
        return sorted(failing)

    # -- GroupStats fast path (see repro.core.engine) -----------------------

    @property
    def supports_stats(self) -> bool:
        """Fast path available only when every member model opts in."""
        return all(supports_stats(m) for m in self.models)

    def check_stats(self, stats) -> bool:
        return all(m.check_stats(stats) for m in self.models)

    def failing_groups_stats(self, stats) -> list[int]:
        failing: set[int] = set()
        for model in self.models:
            failing.update(model.failing_groups_stats(stats))
        return sorted(failing)


def failing_rows(partition: EquivalenceClasses, failing_group_indices: Sequence[int]) -> np.ndarray:
    """Row indices belonging to the failing equivalence classes."""
    if not failing_group_indices:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([partition.groups[i] for i in failing_group_indices])
