"""Privacy models: predicates over equivalence-class partitions."""

from .alpha_k import AlphaKAnonymity
from .base import CompositeModel, PrivacyModel, failing_rows
from .beta_likeness import BetaLikeness
from .delta_presence import DeltaPresence
from .k_anonymity import KAnonymity
from .ke_anonymity import KEAnonymity
from .l_diversity import DistinctLDiversity, EntropyLDiversity, RecursiveCLDiversity
from .lkc import LKCPrivacy
from .personalized import GuardingNode, PersonalizedPrivacy
from .t_closeness import TCloseness, emd_equal, emd_hierarchical, emd_ordered

__all__ = [
    "AlphaKAnonymity",
    "BetaLikeness",
    "CompositeModel",
    "DeltaPresence",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "GuardingNode",
    "KAnonymity",
    "KEAnonymity",
    "LKCPrivacy",
    "PersonalizedPrivacy",
    "PrivacyModel",
    "RecursiveCLDiversity",
    "TCloseness",
    "emd_equal",
    "emd_hierarchical",
    "emd_ordered",
    "failing_rows",
]
