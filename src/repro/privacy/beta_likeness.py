"""β-likeness (Cao & Karras).

t-closeness bounds the *absolute* distance between a class's sensitive
distribution and the global one, which over-protects frequent values and
under-protects rare ones. β-likeness bounds the *relative* gain per value:
for every sensitive value ``s`` with global frequency ``p_s`` and class
frequency ``q_s``, require

    q_s <= p_s * (1 + β)            (basic β-likeness)

i.e. an attacker's belief in any particular value may grow by at most a
factor 1+β. Only positive gains are constrained (learning a value is *less*
likely is not a breach).
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["BetaLikeness"]


class BetaLikeness:
    """Relative belief-gain bound per sensitive value and class."""

    monotone = True

    def __init__(self, beta: float, sensitive: str):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.sensitive = sensitive
        self.name = f"{beta:g}-likeness({sensitive})"

    def max_gains(self, table: Table, partition: EquivalenceClasses) -> np.ndarray:
        """Per-class maximum relative gain max_s (q_s - p_s) / p_s."""
        global_dist = partition.global_sensitive_distribution(table, self.sensitive)
        out = np.empty(len(partition))
        for i, counts in enumerate(partition.sensitive_counts(table, self.sensitive)):
            total = counts.sum()
            if not total:
                out[i] = 0.0
                continue
            local = counts / total
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = np.where(global_dist > 0, (local - global_dist) / global_dist, 0.0)
            # A value absent globally but present locally is an infinite gain.
            impossible = (global_dist == 0) & (local > 0)
            out[i] = np.inf if impossible.any() else float(gains.max())
        return out

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        return bool((self.max_gains(table, partition) <= self.beta + 1e-12).all())

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        gains = self.max_gains(table, partition)
        return [i for i, g in enumerate(gains) if g > self.beta + 1e-12]

    def __repr__(self) -> str:
        return f"BetaLikeness(beta={self.beta}, sensitive={self.sensitive!r})"
