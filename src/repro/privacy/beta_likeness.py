"""β-likeness (Cao & Karras).

t-closeness bounds the *absolute* distance between a class's sensitive
distribution and the global one, which over-protects frequent values and
under-protects rare ones. β-likeness bounds the *relative* gain per value:
for every sensitive value ``s`` with global frequency ``p_s`` and class
frequency ``q_s``, require

    q_s <= p_s * (1 + β)            (basic β-likeness)

i.e. an attacker's belief in any particular value may grow by at most a
factor 1+β. Only positive gains are constrained (learning a value is *less*
likely is not a breach).
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["BetaLikeness"]


class BetaLikeness:
    """Relative belief-gain bound per sensitive value and class."""

    monotone = True

    def __init__(self, beta: float, sensitive: str):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.sensitive = sensitive
        self.name = f"{beta:g}-likeness({sensitive})"

    def max_gains(self, table: Table, partition: EquivalenceClasses) -> np.ndarray:
        """Per-class maximum relative gain max_s (q_s - p_s) / p_s."""
        global_dist = partition.global_sensitive_distribution(table, self.sensitive)
        out = np.empty(len(partition))
        for i, counts in enumerate(partition.sensitive_counts(table, self.sensitive)):
            total = counts.sum()
            if not total:
                out[i] = 0.0
                continue
            local = counts / total
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = np.where(global_dist > 0, (local - global_dist) / global_dist, 0.0)
            # A value absent globally but present locally is an infinite gain.
            impossible = (global_dist == 0) & (local > 0)
            out[i] = np.inf if impossible.any() else float(gains.max())
        return out

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        return bool((self.max_gains(table, partition) <= self.beta + 1e-12).all())

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        gains = self.max_gains(table, partition)
        return [i for i, g in enumerate(gains) if g > self.beta + 1e-12]

    # -- GroupStats fast path (see repro.core.engine) -----------------------

    def max_gains_stats(self, stats) -> np.ndarray:
        """Per-group maximum relative gains, matrix-at-a-time from GroupStats."""
        hist = stats.histogram(self.sensitive).astype(np.float64)
        global_dist = stats.global_distribution(self.sensitive)
        totals = hist.sum(axis=1)
        safe = np.where(totals > 0, totals, 1.0)
        local = hist / safe[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            gains = np.where(
                global_dist[None, :] > 0,
                (local - global_dist[None, :]) / global_dist[None, :],
                0.0,
            )
        out = gains.max(axis=1) if hist.shape[1] else np.zeros(hist.shape[0])
        impossible = ((global_dist[None, :] == 0) & (local > 0)).any(axis=1)
        out = np.where(impossible, np.inf, out)
        return np.where(totals > 0, out, 0.0)

    def check_stats(self, stats) -> bool:
        if not stats.n_groups:
            return False
        return bool((self.max_gains_stats(stats) <= self.beta + 1e-12).all())

    def failing_groups_stats(self, stats) -> list[int]:
        return np.flatnonzero(self.max_gains_stats(stats) > self.beta + 1e-12).tolist()

    def __repr__(self) -> str:
        return f"BetaLikeness(beta={self.beta}, sensitive={self.sensitive!r})"
