"""Personalized privacy (Xiao & Tao).

Each record owner chooses a *guarding node* in the sensitive attribute's
taxonomy: the released data must not let an attacker infer, with breach
probability above ``p_breach``, that the owner's sensitive value falls in
the guarding node's subtree. An owner who picks the taxonomy root wants no
protection beyond k-anonymity; one who picks their exact value wants the
strongest.

Breach probability for record ``r`` in an equivalence class: the fraction
of the class's records whose sensitive value lies in r's guarding subtree
(the attacker's posterior that r's value is in the subtree, under random-
world semantics).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.hierarchy import Hierarchy
from ..core.partition import EquivalenceClasses
from ..core.table import Table
from ..errors import HierarchyError

__all__ = ["PersonalizedPrivacy", "GuardingNode"]


class GuardingNode:
    """A node in the sensitive taxonomy: (level, code) or a raw value."""

    def __init__(self, hierarchy: Hierarchy, level: int, label):
        labels = hierarchy.labels(level)
        if label not in labels:
            raise HierarchyError(f"label {label!r} not at level {level}")
        self.level = int(level)
        self.label = label
        code = labels.index(label)
        self.ground_codes = frozenset(
            int(c) for c in hierarchy.cover_codes(level, code)
        ) if level > 0 else frozenset({code})

    def covers(self, ground_code: int) -> bool:
        return int(ground_code) in self.ground_codes


class PersonalizedPrivacy:
    """Per-record guarding-node breach probability bound.

    Parameters
    ----------
    guarding:
        mapping from original row index to :class:`GuardingNode`. Rows not
        in the map are treated as unprotected (root guarding node).
    p_breach:
        maximum tolerated breach probability per protected record.
    sensitive:
        name of the (categorical) sensitive column.
    row_map:
        optional array mapping table row -> original row index (use the
        release's ``kept_rows`` after suppression). Defaults to identity.
    """

    monotone = True

    def __init__(
        self,
        guarding: Mapping[int, GuardingNode],
        p_breach: float,
        sensitive: str,
        row_map: np.ndarray | None = None,
    ):
        if not 0 < p_breach <= 1:
            raise ValueError(f"p_breach must lie in (0, 1], got {p_breach}")
        self.guarding = dict(guarding)
        self.p_breach = float(p_breach)
        self.sensitive = sensitive
        self.row_map = row_map
        self.name = f"personalized(p<={p_breach:g},{sensitive})"

    def breach_probabilities(
        self, table: Table, partition: EquivalenceClasses
    ) -> list[tuple[int, float]]:
        """(table_row, breach_probability) for every guarded record."""
        codes = table.codes(self.sensitive)
        row_map = (
            self.row_map if self.row_map is not None else np.arange(table.n_rows)
        )
        out = []
        for group in partition.groups:
            group_codes = codes[group]
            for row in group:
                node = self.guarding.get(int(row_map[row]))
                if node is None:
                    continue
                in_subtree = sum(1 for c in group_codes if node.covers(int(c)))
                out.append((int(row), in_subtree / group.size))
        return out

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        return all(
            p <= self.p_breach + 1e-12
            for _, p in self.breach_probabilities(table, partition)
        )

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        row_to_group = {}
        for index, group in enumerate(partition.groups):
            for row in group:
                row_to_group[int(row)] = index
        failing = {
            row_to_group[row]
            for row, p in self.breach_probabilities(table, partition)
            if p > self.p_breach + 1e-12
        }
        return sorted(failing)

    def __repr__(self) -> str:
        return (
            f"PersonalizedPrivacy(p_breach={self.p_breach}, "
            f"sensitive={self.sensitive!r}, guarded={len(self.guarding)})"
        )
