"""t-closeness (Li, Li & Venkatasubramanian).

ℓ-diversity still leaks when the class's sensitive distribution differs
sharply from the table-wide one (skewness and similarity attacks).
t-closeness requires the Earth Mover's Distance between each equivalence
class's sensitive distribution and the global distribution to be at most
``t``.

Three ground distances are provided, matching the original paper:

* **equal** — all distinct values are distance 1 apart; EMD reduces to half
  the L1 distance (total variation distance).
* **ordered** — values lie on a line (numeric/ordinal sensitive attribute);
  EMD is the classic cumulative-sum formula, normalized by ``m - 1``.
* **hierarchical** — distance derived from a generalization hierarchy; EMD is
  computed bottom-up by accumulating unmatched mass through the tree
  (``cost = sum over nodes of |net flow through node| * edge length``,
  normalized by tree height).
"""

from __future__ import annotations

import numpy as np

from ..core.hierarchy import Hierarchy
from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["TCloseness", "emd_equal", "emd_ordered", "emd_hierarchical"]


def emd_equal(p: np.ndarray, q: np.ndarray) -> float:
    """EMD under the equal ground distance: total variation distance."""
    return 0.5 * float(np.abs(p - q).sum())


def emd_ordered(p: np.ndarray, q: np.ndarray) -> float:
    """EMD for values on an ordered line, normalized to [0, 1].

    With m ordered values at unit spacing, EMD is the sum of absolute
    cumulative differences; dividing by ``m - 1`` normalizes the maximum
    (all mass moved across the whole line) to 1.
    """
    m = p.shape[0]
    if m <= 1:
        return 0.0
    cumulative = np.cumsum(p - q)
    return float(np.abs(cumulative[:-1]).sum()) / (m - 1)


def emd_hierarchical(p: np.ndarray, q: np.ndarray, hierarchy: Hierarchy) -> float:
    """EMD with ground distance from a generalization hierarchy.

    Ground distance between two values is ``level(LCA) / height`` — 1 when
    they only meet at the root, smaller within subtrees. For a tree metric,
    EMD has the closed form ``Σ_edges w(e) · |net flow through e|``: the flow
    through the edge above a node is the net residual mass of its subtree,
    and uniform per-level edge weights of ``1/(2·height)`` realize the
    LCA-level ground distance. Summing over levels 0..height-1 (every node
    except the root, whose net flow is always 0) gives a value in [0, 1].
    """
    if len(hierarchy.ground) != p.shape[0]:
        raise ValueError("distribution length does not match hierarchy ground domain")
    height = hierarchy.height
    if height == 0:
        return 0.0
    residual = p - q
    ground = np.arange(len(hierarchy.ground))
    cost = 0.0
    for level in range(height):  # root (level == height) excluded
        mapping = hierarchy.map_codes(ground, level)
        flows = np.zeros(hierarchy.level_of_distinct(level))
        np.add.at(flows, mapping, residual)
        cost += float(np.abs(flows).sum())
    return cost / (2.0 * height)


class TCloseness:
    """EMD bound between per-EC and global sensitive distributions."""

    monotone = True

    def __init__(
        self,
        t: float,
        sensitive: str,
        ground_distance: str = "equal",
        hierarchy: Hierarchy | None = None,
    ):
        if not 0 <= t <= 1:
            raise ValueError(f"t must lie in [0, 1], got {t}")
        if ground_distance not in ("equal", "ordered", "hierarchical"):
            raise ValueError(f"unknown ground distance {ground_distance!r}")
        if ground_distance == "hierarchical" and hierarchy is None:
            raise ValueError("hierarchical ground distance requires a hierarchy")
        self.t = float(t)
        self.sensitive = sensitive
        self.ground_distance = ground_distance
        self.hierarchy = hierarchy
        self.name = f"{self.t:g}-closeness({sensitive},{ground_distance})"
        self._level_aggregates: list[np.ndarray] | None = None

    def _emd(self, p: np.ndarray, q: np.ndarray) -> float:
        if self.ground_distance == "equal":
            return emd_equal(p, q)
        if self.ground_distance == "ordered":
            return emd_ordered(p, q)
        assert self.hierarchy is not None
        return emd_hierarchical(p, q, self.hierarchy)

    def distances(self, table: Table, partition: EquivalenceClasses) -> np.ndarray:
        """EMD of every equivalence class against the global distribution."""
        global_dist = partition.global_sensitive_distribution(table, self.sensitive)
        out = np.empty(len(partition))
        for i, counts in enumerate(partition.sensitive_counts(table, self.sensitive)):
            total = counts.sum()
            local = counts / total if total else np.zeros_like(global_dist)
            out[i] = self._emd(local, global_dist)
        return out

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        return bool((self.distances(table, partition) <= self.t + 1e-12).all())

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        distances = self.distances(table, partition)
        return [i for i, d in enumerate(distances) if d > self.t + 1e-12]

    # -- GroupStats fast path (see repro.core.engine) -----------------------

    def distances_stats(self, stats) -> np.ndarray:
        """Per-group EMDs computed matrix-at-a-time from GroupStats."""
        hist = stats.histogram(self.sensitive).astype(np.float64)
        global_dist = stats.global_distribution(self.sensitive)
        totals = hist.sum(axis=1)
        safe = np.where(totals > 0, totals, 1.0)
        local = np.where(totals[:, None] > 0, hist / safe[:, None], 0.0)
        residual = local - global_dist[None, :]
        if self.ground_distance == "equal":
            return 0.5 * np.abs(residual).sum(axis=1)
        if self.ground_distance == "ordered":
            m = residual.shape[1]
            if m <= 1:
                return np.zeros(residual.shape[0])
            cumulative = np.cumsum(residual, axis=1)
            return np.abs(cumulative[:, :-1]).sum(axis=1) / (m - 1)
        assert self.hierarchy is not None
        hierarchy = self.hierarchy
        if len(hierarchy.ground) != residual.shape[1]:
            raise ValueError("distribution length does not match hierarchy ground domain")
        height = hierarchy.height
        if height == 0:
            return np.zeros(residual.shape[0])
        cost = np.zeros(residual.shape[0])
        for aggregate in self._aggregates():  # root (level == height) excluded
            flows = residual @ aggregate
            cost += np.abs(flows).sum(axis=1)
        return cost / (2.0 * height)

    def _aggregates(self) -> list[np.ndarray]:
        """Per-level one-hot (ground × level-values) matrices, cached —
        they depend only on the (immutable) hierarchy."""
        if self._level_aggregates is None:
            assert self.hierarchy is not None
            ground = np.arange(len(self.hierarchy.ground))
            matrices = []
            for level in range(self.hierarchy.height):
                mapping = self.hierarchy.map_codes(ground, level)
                aggregate = np.zeros((ground.size, self.hierarchy.level_of_distinct(level)))
                aggregate[ground, mapping] = 1.0
                matrices.append(aggregate)
            self._level_aggregates = matrices
        return self._level_aggregates

    def check_stats(self, stats) -> bool:
        if not stats.n_groups:
            return False
        return bool((self.distances_stats(stats) <= self.t + 1e-12).all())

    def failing_groups_stats(self, stats) -> list[int]:
        return np.flatnonzero(self.distances_stats(stats) > self.t + 1e-12).tolist()

    def __repr__(self) -> str:
        return (
            f"TCloseness(t={self.t}, sensitive={self.sensitive!r}, "
            f"ground_distance={self.ground_distance!r})"
        )
