"""ℓ-diversity (Machanavajjhala et al.).

k-anonymity bounds *identity* disclosure but not *attribute* disclosure: an
equivalence class whose members all share one sensitive value leaks it to
anyone who can place a target in the class (the homogeneity attack).
ℓ-diversity requires each class to contain "well-represented" sensitive
values. Three instantiations, in increasing strictness of what
"well-represented" means:

* :class:`DistinctLDiversity` — at least ℓ distinct sensitive values.
* :class:`EntropyLDiversity` — entropy of the class's sensitive distribution
  at least ``log(ℓ)``.
* :class:`RecursiveCLDiversity` — (c, ℓ): the most frequent value appears
  fewer than ``c`` times the combined count of the ℓ-1 least frequent tail,
  i.e. ``r1 < c * (r_l + r_{l+1} + ... + r_m)`` on sorted counts.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["DistinctLDiversity", "EntropyLDiversity", "RecursiveCLDiversity"]


class _SensitiveModel:
    """Shared plumbing for models defined over per-EC sensitive histograms."""

    monotone = True

    def __init__(self, sensitive: str):
        self.sensitive = sensitive

    def _ok(self, counts: np.ndarray) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        return all(
            self._ok(counts)
            for counts in partition.sensitive_counts(table, self.sensitive)
        )

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        histograms = partition.sensitive_counts(table, self.sensitive)
        return [i for i, counts in enumerate(histograms) if not self._ok(counts)]

    # -- GroupStats fast path (see repro.core.engine) -----------------------

    def _ok_mask(self, hist: np.ndarray) -> np.ndarray:
        """Vectorized per-group verdicts over the (groups × categories) matrix."""
        raise NotImplementedError  # pragma: no cover - abstract

    @property
    def supports_stats(self) -> bool:
        """Only subclasses that vectorize ``_ok_mask`` take the fast path;
        ones implementing just the legacy ``_ok`` hook fall back cleanly."""
        return type(self)._ok_mask is not _SensitiveModel._ok_mask

    def check_stats(self, stats) -> bool:
        if not stats.n_groups:
            return False
        return bool(self._ok_mask(stats.histogram(self.sensitive)).all())

    def failing_groups_stats(self, stats) -> list[int]:
        return np.flatnonzero(~self._ok_mask(stats.histogram(self.sensitive))).tolist()


class DistinctLDiversity(_SensitiveModel):
    """Each EC contains at least ℓ distinct sensitive values."""

    def __init__(self, l: int, sensitive: str):
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        super().__init__(sensitive)
        self.l = int(l)
        self.name = f"distinct-{self.l}-diversity({sensitive})"

    def _ok(self, counts: np.ndarray) -> bool:
        return int(np.count_nonzero(counts)) >= self.l

    def _ok_mask(self, hist: np.ndarray) -> np.ndarray:
        return (hist > 0).sum(axis=1) >= self.l

    def __repr__(self) -> str:
        return f"DistinctLDiversity(l={self.l}, sensitive={self.sensitive!r})"


class EntropyLDiversity(_SensitiveModel):
    """Entropy of each EC's sensitive distribution is at least log(ℓ)."""

    def __init__(self, l: float, sensitive: str):
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        super().__init__(sensitive)
        self.l = float(l)
        self.name = f"entropy-{self.l:g}-diversity({sensitive})"

    def _ok(self, counts: np.ndarray) -> bool:
        total = counts.sum()
        if total == 0:
            return False
        probs = counts[counts > 0] / total
        entropy = float(-(probs * np.log(probs)).sum())
        return entropy >= np.log(self.l) - 1e-12

    def _ok_mask(self, hist: np.ndarray) -> np.ndarray:
        totals = hist.sum(axis=1)
        safe = np.where(totals > 0, totals, 1).astype(np.float64)
        probs = hist / safe[:, None]
        log_probs = np.zeros_like(probs)
        np.log(probs, out=log_probs, where=hist > 0)
        entropy = -(probs * log_probs).sum(axis=1)
        return (totals > 0) & (entropy >= np.log(self.l) - 1e-12)

    def __repr__(self) -> str:
        return f"EntropyLDiversity(l={self.l}, sensitive={self.sensitive!r})"


class RecursiveCLDiversity(_SensitiveModel):
    """Recursive (c, ℓ)-diversity on sorted sensitive counts."""

    def __init__(self, c: float, l: int, sensitive: str):
        if l < 2:
            raise ValueError(f"l must be >= 2 for recursive diversity, got {l}")
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        super().__init__(sensitive)
        self.c = float(c)
        self.l = int(l)
        self.name = f"recursive-({self.c:g},{self.l})-diversity({sensitive})"

    def _ok(self, counts: np.ndarray) -> bool:
        nonzero = np.sort(counts[counts > 0])[::-1]
        if nonzero.size < self.l:
            return False
        tail = nonzero[self.l - 1 :].sum()
        return float(nonzero[0]) < self.c * float(tail)

    def _ok_mask(self, hist: np.ndarray) -> np.ndarray:
        # Descending sort pushes zeros to the tail, which contributes nothing
        # to the tail sum — so sorting the full histogram matches sorting the
        # nonzero counts only.
        n_nonzero = (hist > 0).sum(axis=1)
        if hist.shape[1] < self.l:
            return np.zeros(hist.shape[0], dtype=bool)
        ordered = np.sort(hist, axis=1)[:, ::-1]
        tail = ordered[:, self.l - 1 :].sum(axis=1).astype(np.float64)
        return (n_nonzero >= self.l) & (ordered[:, 0].astype(np.float64) < self.c * tail)

    def __repr__(self) -> str:
        return (
            f"RecursiveCLDiversity(c={self.c}, l={self.l}, sensitive={self.sensitive!r})"
        )
