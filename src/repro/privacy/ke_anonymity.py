"""(k, e)-anonymity (Zhang et al.) for numeric sensitive attributes.

Categorical ℓ-diversity is meaningless when the sensitive attribute is a
number (salary): two "distinct" values of 30,000 and 30,001 disclose the
salary anyway. (k, e)-anonymity requires every equivalence class to contain
at least ``k`` records AND the *range* of its sensitive values to span at
least ``e``.

The sensitive column must be numeric for this model (unlike the categorical
models, which require categorical sensitive columns).
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table
from ..errors import SchemaError

__all__ = ["KEAnonymity"]


class KEAnonymity:
    """Minimum class size k plus minimum numeric sensitive range e."""

    monotone = True

    def __init__(self, k: int, e: float, sensitive: str):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if e < 0:
            raise ValueError(f"e must be non-negative, got {e}")
        self.k = int(k)
        self.e = float(e)
        self.sensitive = sensitive
        self.name = f"({self.k},{self.e:g})-anonymity({sensitive})"

    def _sensitive_values(self, table: Table) -> np.ndarray:
        col = table.column(self.sensitive)
        if col.is_categorical:
            raise SchemaError(
                f"(k,e)-anonymity needs a numeric sensitive column; "
                f"{self.sensitive!r} is categorical"
            )
        assert col.values is not None
        return col.values

    def _ok(self, values: np.ndarray) -> bool:
        if values.shape[0] < self.k:
            return False
        return float(values.max() - values.min()) >= self.e - 1e-12

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        values = self._sensitive_values(table)
        return all(self._ok(values[g]) for g in partition.groups)

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        values = self._sensitive_values(table)
        return [i for i, g in enumerate(partition.groups) if not self._ok(values[g])]

    def __repr__(self) -> str:
        return f"KEAnonymity(k={self.k}, e={self.e}, sensitive={self.sensitive!r})"
