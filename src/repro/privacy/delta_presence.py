"""δ-presence (Nergiz, Atzori & Clifton).

Protects against *table linkage* (membership disclosure): an attacker who
knows a person's quasi-identifiers and has access to a public population
table must not be able to decide confidently whether the person is in the
published (research) subset.

For a generalized equivalence class with ``r`` research records and ``p``
matching population records, the attacker's membership belief for any
population member matching that class is ``r / p``. The release satisfies
(δ_min, δ_max)-presence if every class's belief lies in ``[δ_min, δ_max]``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.table import Table

__all__ = ["DeltaPresence"]


class DeltaPresence:
    """Bound on the membership-inference belief against a population table.

    Parameters
    ----------
    delta_min, delta_max:
        inclusive bounds on ``r / p`` per equivalence class.
    population:
        the public table the attacker links against, with the *same* QI
        columns (at the same generalization) as the candidate release. Use
        :meth:`with_population` to re-bind after generalizing both tables
        with the same node.
    """

    monotone = True

    def __init__(self, delta_min: float, delta_max: float, population: Table, qi_names: Sequence[str]):
        if not 0 <= delta_min <= delta_max <= 1:
            raise ValueError(f"need 0 <= delta_min <= delta_max <= 1, got {delta_min}, {delta_max}")
        self.delta_min = float(delta_min)
        self.delta_max = float(delta_max)
        self.population = population
        self.qi_names = tuple(qi_names)
        self.name = f"({self.delta_min:g},{self.delta_max:g})-presence"

    def with_population(self, population: Table) -> "DeltaPresence":
        """Same bounds, different (e.g. re-generalized) population table."""
        return DeltaPresence(self.delta_min, self.delta_max, population, self.qi_names)

    def beliefs(self, table: Table, partition: EquivalenceClasses) -> np.ndarray:
        """``r / p`` per equivalence class (inf if no population match)."""
        population_counts = _signature_counts(self.population, self.qi_names)
        out = np.empty(len(partition))
        for i, group in enumerate(partition.groups):
            signature = _row_signature(table, self.qi_names, int(group[0]))
            p = population_counts.get(signature, 0)
            out[i] = group.size / p if p else np.inf
        return out

    def check(self, table: Table, partition: EquivalenceClasses) -> bool:
        if not len(partition):
            return False
        beliefs = self.beliefs(table, partition)
        return bool(
            ((beliefs >= self.delta_min - 1e-12) & (beliefs <= self.delta_max + 1e-12)).all()
        )

    def failing_groups(self, table: Table, partition: EquivalenceClasses) -> list[int]:
        beliefs = self.beliefs(table, partition)
        return [
            i
            for i, b in enumerate(beliefs)
            if not (self.delta_min - 1e-12 <= b <= self.delta_max + 1e-12)
        ]

    # -- GroupStats fast path (see repro.core.engine) -----------------------
    #
    # Unlike the legacy path — which requires the caller to re-bind an
    # already-generalized population via ``with_population`` before every
    # node check — the fast path generalizes the (raw) population through
    # the engine's own hierarchies at the evaluated node, so δ-presence
    # composes with lattice searches out of the box.

    def beliefs_stats(self, stats) -> np.ndarray:
        """``r / p`` per group, with the population generalized at the node."""
        population_counts = stats.external_counts(self.population)
        with np.errstate(divide="ignore"):
            return np.where(
                population_counts > 0,
                stats.sizes / population_counts.astype(np.float64),
                np.inf,
            )

    def check_stats(self, stats) -> bool:
        if not stats.n_groups:
            return False
        beliefs = self.beliefs_stats(stats)
        return bool(
            ((beliefs >= self.delta_min - 1e-12) & (beliefs <= self.delta_max + 1e-12)).all()
        )

    def failing_groups_stats(self, stats) -> list[int]:
        beliefs = self.beliefs_stats(stats)
        return np.flatnonzero(
            ~((beliefs >= self.delta_min - 1e-12) & (beliefs <= self.delta_max + 1e-12))
        ).tolist()

    def __repr__(self) -> str:
        return f"DeltaPresence({self.delta_min}, {self.delta_max})"


def _signature_counts(table: Table, qi_names: Sequence[str]) -> dict:
    """Counts of QI value tuples in a table, keyed by decoded tuple."""
    decoded = [table.column(name).decode() for name in qi_names]
    counts: dict = {}
    for row in zip(*decoded):
        counts[row] = counts.get(row, 0) + 1
    return counts


def _row_signature(table: Table, qi_names: Sequence[str], row: int) -> tuple:
    return tuple(table.column(name).decode()[row] for name in qi_names)
