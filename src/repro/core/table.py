"""Column-oriented table engine.

The library's "database" substrate: a :class:`Table` is an ordered mapping of
column name to :class:`Column`. Columns are numpy-backed and come in two
flavours:

* **categorical** — values are dictionary-encoded as ``int32`` codes into a
  ``categories`` list (strings or arbitrary hashables). This is what
  generalization operates on.
* **numeric** — a ``float64`` (or integer) array. Numeric quasi-identifiers
  are generalized into intervals, which turns them categorical.

Design notes
------------
* Tables are cheap, immutable-by-convention views: transformation functions
  return new ``Table`` objects sharing untouched column arrays.
* Group-by over several columns is implemented by packing the per-column codes
  into a single signature array with ``np.unique`` — this is the hot path for
  equivalence-class computation and is fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError

__all__ = [
    "Column",
    "Table",
    "check_chunk_rows",
    "mixed_radix_fits",
    "pack_code_columns",
    "split_by_labels",
]

_RADIX_LIMIT = 2**62


def check_chunk_rows(value) -> int:
    """Validate a chunk row count; the single validator every layer uses.

    Returns the value if it is a positive ``int``; raises ``ValueError``
    with a keyless message otherwise, so callers can prefix their own key
    name (``chunk_rows``, ``key 'chunk_rows'``, ``--chunk-rows``) the same
    way ``check_cache_bytes`` does for cache budgets.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"must be a positive integer (rows), got {value!r}")
    if value <= 0:
        raise ValueError(f"must be a positive integer (rows), got {value}")
    return value


def mixed_radix_fits(radices: Sequence[int]) -> bool:
    """True when the mixed-radix product stays below the int64 packing limit.

    The chunked packing paths key off this: chunk-by-chunk mixed-radix
    arithmetic produces globally comparable signatures, but the
    ``np.unique(axis=0)`` overflow fallback needs every row at once.
    """
    product = 1.0
    for radix in radices:
        product *= max(radix, 1)
    return product < _RADIX_LIMIT


def pack_code_columns(
    code_columns: Sequence[np.ndarray],
    radices: Sequence[int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pack parallel integer code columns into one int64 label per row.

    Uses mixed-radix arithmetic over the per-column radices; falls back to
    ``np.unique(axis=0)`` labelling if the radix product overflows int64.
    Rows with equal labels agree on every column, and in both paths label
    order equals lexicographic column order — the ordering contract that
    keeps :meth:`Table.group_rows` and the lattice-evaluation engine's
    partitions interchangeable. This is the single shared implementation;
    do not fork it.

    ``out`` (int64, same length) receives the signatures in place and is
    returned — the building block of the chunked paths, which pack row
    slices into slices of one preallocated signature array instead of
    materializing per-column full-size intermediates. Mixed-radix packing
    of a chunk is independent of every other chunk, so chunked and
    one-shot packing produce identical signatures; the overflow fallback
    is inherently global (callers gate on :func:`mixed_radix_fits`).
    """
    if mixed_radix_fits(radices):
        if out is None:
            signature = np.zeros(code_columns[0].shape[0], dtype=np.int64)
        else:
            signature = out
            signature[...] = 0
        for codes, radix in zip(code_columns, radices):
            signature *= max(radix, 1)
            signature += codes
        return signature
    stacked = np.stack(code_columns, axis=1)
    _, labels = np.unique(stacked, axis=0, return_inverse=True)
    labels = labels.reshape(-1).astype(np.int64)
    if out is not None:
        out[...] = labels
        return out
    return labels


def split_by_labels(labels: np.ndarray) -> list[np.ndarray]:
    """Row-index arrays of the groups induced by per-row labels.

    Groups are ordered by ascending label; within a group, row indices
    ascend (stable argsort keeps original order for equal labels).
    """
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    return np.split(order, boundaries)


@dataclass(frozen=True)
class Column:
    """A single named column of data.

    Exactly one of the two representations is active:

    * ``codes`` + ``categories`` for categorical data;
    * ``values`` for numeric data.
    """

    name: str
    codes: np.ndarray | None = None
    categories: tuple = ()
    values: np.ndarray | None = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def categorical(name: str, data: Iterable, categories: Sequence | None = None) -> "Column":
        """Build a categorical column, dictionary-encoding ``data``.

        ``categories`` fixes the code space explicitly (useful to share a
        dictionary across tables); otherwise categories are the sorted
        distinct values of ``data``.
        """
        data = list(data)
        if categories is None:
            categories = sorted(set(data), key=str)
        index = {value: code for code, value in enumerate(categories)}
        try:
            codes = np.fromiter((index[v] for v in data), dtype=np.int32, count=len(data))
        except KeyError as exc:
            raise SchemaError(
                f"value {exc.args[0]!r} of column {name!r} not in its category list"
            ) from exc
        return Column(name=name, codes=codes, categories=tuple(categories))

    @staticmethod
    def from_codes(name: str, codes: np.ndarray, categories: Sequence) -> "Column":
        """Build a categorical column directly from integer codes."""
        codes = np.asarray(codes, dtype=np.int32)
        if codes.size and (codes.min() < 0 or codes.max() >= len(categories)):
            raise SchemaError(f"codes of column {name!r} fall outside the category list")
        return Column(name=name, codes=codes, categories=tuple(categories))

    @staticmethod
    def numeric(name: str, data: Iterable) -> "Column":
        """Build a numeric column from any sequence of numbers."""
        values = np.asarray(list(data) if not isinstance(data, np.ndarray) else data)
        if values.dtype.kind not in "if":
            values = values.astype(np.float64)
        return Column(name=name, values=values)

    # -- basic protocol ----------------------------------------------------

    @property
    def is_categorical(self) -> bool:
        return self.codes is not None

    def __len__(self) -> int:
        array = self.codes if self.codes is not None else self.values
        assert array is not None
        return int(array.shape[0])

    def decode(self) -> list:
        """Materialize the column as a Python list of original values."""
        if self.is_categorical:
            # One object-array gather instead of a per-row loop: loop over
            # the (few) categories, not the (many) rows. Elementwise fill
            # keeps tuple-valued categories as scalars.
            lookup = np.empty(len(self.categories), dtype=object)
            for code, value in enumerate(self.categories):
                lookup[code] = value
            return lookup[self.codes].tolist()  # type: ignore[index]
        return list(self.values)  # type: ignore[arg-type]

    def take(self, indices: np.ndarray) -> "Column":
        """Row subset (or reorder) of this column."""
        if self.is_categorical:
            return Column(self.name, codes=self.codes[indices], categories=self.categories)
        return Column(self.name, values=self.values[indices])

    def slice_rows(self, start: int, stop: int) -> "Column":
        """Contiguous row slice as a zero-copy view (unlike :meth:`take`)."""
        if self.is_categorical:
            return Column(self.name, codes=self.codes[start:stop], categories=self.categories)
        return Column(self.name, values=self.values[start:stop])

    def value_counts(self) -> dict:
        """Counts of distinct values, keyed by original value."""
        if self.is_categorical:
            counts = np.bincount(self.codes, minlength=len(self.categories))
            return {cat: int(n) for cat, n in zip(self.categories, counts) if n}
        uniques, counts = np.unique(self.values, return_counts=True)
        return {u.item(): int(n) for u, n in zip(uniques, counts)}

    def n_distinct(self) -> int:
        """Number of distinct values actually present."""
        if self.is_categorical:
            return int(np.unique(self.codes).size)
        return int(np.unique(self.values).size)


class Table:
    """An ordered collection of equal-length :class:`Column` objects."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise SchemaError("a table needs at least one column")
        lengths = {len(col) for col in columns}
        if len(lengths) != 1:
            raise SchemaError(f"columns have mismatched lengths: {sorted(lengths)}")
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = {col.name: col for col in columns}
        self._n_rows = lengths.pop()

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_rows(
        rows: Sequence[Mapping],
        categorical: Sequence[str] = (),
        numeric: Sequence[str] = (),
    ) -> "Table":
        """Build a table from a list of row dicts with declared column kinds."""
        if not rows:
            raise SchemaError("cannot build a table from zero rows")
        columns: list[Column] = []
        for name in categorical:
            columns.append(Column.categorical(name, (row[name] for row in rows)))
        for name in numeric:
            columns.append(Column.numeric(name, (row[name] for row in rows)))
        if not columns:
            raise SchemaError("declare at least one categorical or numeric column")
        return Table(columns)

    @staticmethod
    def from_dict(
        data: Mapping[str, Iterable],
        categorical: Sequence[str] = (),
        numeric: Sequence[str] = (),
    ) -> "Table":
        """Build a table from a mapping of column name to values."""
        columns: list[Column] = []
        for name in categorical:
            columns.append(Column.categorical(name, data[name]))
        for name in numeric:
            columns.append(Column.numeric(name, data[name]))
        return Table(columns)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns.values())

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}; have {self.column_names}") from None

    def codes(self, name: str) -> np.ndarray:
        """Integer codes of a categorical column (hot-path accessor)."""
        col = self.column(name)
        if not col.is_categorical:
            raise SchemaError(f"column {name!r} is numeric, not categorical")
        assert col.codes is not None
        return col.codes

    def values(self, name: str) -> np.ndarray:
        """Raw values of a numeric column."""
        col = self.column(name)
        if col.is_categorical:
            raise SchemaError(f"column {name!r} is categorical, not numeric")
        assert col.values is not None
        return col.values

    # -- transformations ---------------------------------------------------

    def replace(self, *columns: Column) -> "Table":
        """New table with the given columns substituted (matched by name)."""
        merged = dict(self._columns)
        for col in columns:
            if col.name not in merged:
                raise SchemaError(f"cannot replace unknown column {col.name!r}")
            merged[col.name] = col
        return Table(list(merged.values()))

    def with_column(self, column: Column) -> "Table":
        """New table with an extra column appended."""
        if column.name in self._columns:
            raise SchemaError(f"column {column.name!r} already exists")
        return Table(list(self._columns.values()) + [column])

    def drop(self, *names: str) -> "Table":
        """New table without the named columns."""
        for name in names:
            self.column(name)  # validate
        keep = [col for col in self._columns.values() if col.name not in names]
        return Table(keep)

    def select(self, names: Sequence[str]) -> "Table":
        """New table with exactly the named columns, in order."""
        return Table([self.column(name) for name in names])

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset/reorder across all columns."""
        return Table([col.take(indices) for col in self._columns.values()])

    def mask(self, keep: np.ndarray) -> "Table":
        """Row filter by boolean mask."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self._n_rows,):
            raise SchemaError("mask length does not match row count")
        return self.take(np.flatnonzero(keep))

    def head(self, n: int = 5) -> "Table":
        return self.take(np.arange(min(n, self._n_rows)))

    def iter_chunks(self, chunk_rows: int) -> Iterator["Table"]:
        """Yield contiguous row-slice views of at most ``chunk_rows`` rows.

        Slices are zero-copy (``Column.slice_rows``), so million-row tables
        can stream through per-chunk transforms without duplicating column
        arrays. The final chunk may be shorter.
        """
        try:
            check_chunk_rows(chunk_rows)
        except ValueError as exc:
            raise SchemaError(f"chunk_rows {exc}") from None
        columns = list(self._columns.values())
        for start in range(0, self._n_rows, chunk_rows):
            stop = min(start + chunk_rows, self._n_rows)
            yield Table([col.slice_rows(start, stop) for col in columns])

    # -- grouping ----------------------------------------------------------

    def group_signature(
        self, names: Sequence[str], chunk_rows: int | None = None
    ) -> np.ndarray:
        """Pack the named columns into one int64 signature per row.

        Rows with equal signatures agree on every named column. Numeric
        columns are rank-encoded first. The packing uses mixed-radix
        arithmetic over per-column cardinalities; falls back to
        ``np.unique(axis=0)`` labelling if the radix product overflows int64.

        ``chunk_rows`` streams rows through the packer in slices of that
        size: only the shared int64 signature array is full-length, and the
        per-column int64 intermediates shrink from ``n_rows`` to
        ``chunk_rows`` each. Signatures are identical to the one-shot path
        (mixed-radix packing is chunk-independent); the overflow fallback
        ignores ``chunk_rows`` because its labelling is inherently global.
        """
        if not names:
            raise SchemaError("group_signature needs at least one column")
        if chunk_rows is not None:
            try:
                check_chunk_rows(chunk_rows)
            except ValueError as exc:
                raise SchemaError(f"chunk_rows {exc}") from None
        specs: list[tuple[str, np.ndarray, np.ndarray | None]] = []
        radices: list[int] = []
        for name in names:
            col = self.column(name)
            if col.is_categorical:
                specs.append(("cat", col.codes, None))  # type: ignore[arg-type]
                radices.append(max(len(col.categories), 1))
            else:
                uniques = np.unique(col.values)
                specs.append(("num", col.values, uniques))  # type: ignore[arg-type]
                radices.append(max(int(uniques.size), 1))

        if (
            chunk_rows is None
            or chunk_rows >= self._n_rows
            or not mixed_radix_fits(radices)
        ):
            code_arrays = [
                data.astype(np.int64)
                if kind == "cat"
                else np.searchsorted(uniques, data).astype(np.int64)
                for kind, data, uniques in specs
            ]
            return pack_code_columns(code_arrays, radices)

        signature = np.empty(self._n_rows, dtype=np.int64)
        for start in range(0, self._n_rows, chunk_rows):
            stop = min(start + chunk_rows, self._n_rows)
            chunk_codes = [
                data[start:stop]
                if kind == "cat"
                else np.searchsorted(uniques, data[start:stop])
                for kind, data, uniques in specs
            ]
            pack_code_columns(chunk_codes, radices, out=signature[start:stop])
        return signature

    def group_rows(
        self, names: Sequence[str], chunk_rows: int | None = None
    ) -> list[np.ndarray]:
        """Row-index arrays of the groups induced by the named columns."""
        return split_by_labels(self.group_signature(names, chunk_rows=chunk_rows))

    # -- conversion / display ----------------------------------------------

    def to_rows(self) -> list[dict]:
        """Materialize as a list of row dicts (for small tables / display)."""
        decoded = {name: col.decode() for name, col in self._columns.items()}
        return [
            {name: decoded[name][i] for name in self._columns}
            for i in range(self._n_rows)
        ]

    def fingerprint(self) -> list[tuple]:
        """Hashable content identity: ``[(name, decoded values), ...]``.

        Two tables fingerprint equal iff they publish the same values in
        the same order — the equality behind the API's byte-identical-
        release guarantees (one job through every door, parallel vs
        sequential batches), asserted by tests and benchmarks alike.
        """
        return [(col.name, tuple(col.decode())) for col in self]

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{name}:{'cat' if col.is_categorical else 'num'}"
            for name, col in self._columns.items()
        )
        return f"Table({self._n_rows} rows; {kinds})"
