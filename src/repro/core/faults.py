"""Deterministic, seedable fault injection for chaos testing.

Production code is instrumented with a handful of *named injection points*:

- ``evaluate-node`` — fired by :meth:`LatticeEvaluator.stats` before each
  node evaluation (context: ``names``, ``node``);
- ``worker-kill`` — fired by the process-backend worker loop before each
  job (context: ``env``, ``job``); a ``kill`` spec turns it into
  ``os._exit``, simulating a crashed worker;
- ``shm-attach`` — fired by :meth:`ShmArena.attach` before mapping a
  segment (context: ``name``).

A :class:`FaultPlan` maps points to trigger specs and is armed either
programmatically (:func:`arm` / the :func:`injection` context manager) or
through the ``REPRO_FAULTS`` environment variable holding the plan as JSON
— the channel that reaches subprocesses started outside our control. The
batch executor additionally forwards the parent's armed plan to process
workers through the pool initializer, so programmatic arming works under
any multiprocessing start method.

Everything is deterministic: ``at``/``every`` triggers count eligible calls
per point *per process*, and ``rate`` triggers hash ``(seed, point, n)``
with BLAKE2b — the same seed always yields the same failure sequence, which
is what the determinism tests pin.

When nothing is armed, :func:`fire` is a no-op guarded by the
:func:`any_armed` fast path (one module attribute read).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Optional, Union

from ..errors import FaultInjectedError

__all__ = [
    "ENV_VAR",
    "POINTS",
    "FaultPlan",
    "any_armed",
    "arm",
    "disarm",
    "export_plan",
    "fire",
    "fired",
    "injection",
    "reset",
]

ENV_VAR = "REPRO_FAULTS"

#: The injection points compiled into production code.
POINTS = ("evaluate-node", "worker-kill", "shm-attach")

#: ``error`` spec values → exception class raised by the point.
_ERROR_CLASSES: dict[str, type[BaseException]] = {
    "fault": FaultInjectedError,
    "runtime": RuntimeError,
    "os": OSError,
    "memory": MemoryError,
}

_SPEC_KEYS = frozenset(
    {"at", "every", "rate", "delay", "error", "kill", "exit_code", "once_file", "match"}
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid fault plan: {message}")


class FaultPlan:
    """A validated, picklable set of fault specs plus the determinism seed.

    ``points`` maps an injection point name to its trigger spec:

    ``at``         fire on exactly the Nth eligible call (1-based, per process)
    ``every``      fire on every Nth eligible call
    ``rate``       fire with probability ``rate``, decided by a seeded hash
                   of the call ordinal (deterministic, not sampled)
    ``delay``      sleep this many seconds when fired; with no ``error`` or
                   ``kill`` the point then returns normally (a slow fault)
    ``error``      exception family to raise (default ``"fault"`` →
                   :class:`FaultInjectedError`)
    ``kill``       ``os._exit`` the process instead of raising
    ``exit_code``  status for ``kill`` (default 130)
    ``once_file``  path used as a cross-process latch: the fault fires only
                   for whichever process creates the file first, so a
                   retried attempt succeeds
    ``match``      only calls whose context equals these key/value pairs are
                   eligible (and counted)

    With none of ``at``/``every``/``rate`` present, every eligible call fires.
    """

    __slots__ = ("seed", "points")

    def __init__(self, points: Mapping[str, Mapping[str, Any]], seed: int = 0) -> None:
        _require(isinstance(points, Mapping), f"points must be a mapping; got {points!r}")
        self.seed = int(seed)
        self.points: dict[str, dict[str, Any]] = {}
        for point, spec in points.items():
            _require(
                point in POINTS,
                f"unknown injection point {point!r}; known points: {', '.join(POINTS)}",
            )
            _require(
                isinstance(spec, Mapping),
                f"spec for point {point!r} must be a mapping; got {spec!r}",
            )
            unknown = set(spec) - _SPEC_KEYS
            _require(
                not unknown,
                f"unknown spec key(s) {sorted(unknown)} for point {point!r}; "
                f"accepted keys: {sorted(_SPEC_KEYS)}",
            )
            spec = dict(spec)
            for key in ("at", "every"):
                if key in spec:
                    value = spec[key]
                    _require(
                        isinstance(value, int) and not isinstance(value, bool) and value >= 1,
                        f"key {key!r} for point {point!r} must be a positive integer; "
                        f"got {value!r}",
                    )
            if "rate" in spec:
                rate = spec["rate"]
                _require(
                    isinstance(rate, (int, float))
                    and not isinstance(rate, bool)
                    and 0.0 < float(rate) <= 1.0,
                    f"key 'rate' for point {point!r} must be in (0, 1]; got {rate!r}",
                )
            if "delay" in spec:
                delay = spec["delay"]
                _require(
                    isinstance(delay, (int, float))
                    and not isinstance(delay, bool)
                    and float(delay) >= 0.0,
                    f"key 'delay' for point {point!r} must be a non-negative number; "
                    f"got {delay!r}",
                )
            if "error" in spec:
                _require(
                    spec["error"] in _ERROR_CLASSES,
                    f"key 'error' for point {point!r} must be one of "
                    f"{sorted(_ERROR_CLASSES)}; got {spec['error']!r}",
                )
            if "match" in spec:
                _require(
                    isinstance(spec["match"], Mapping),
                    f"key 'match' for point {point!r} must be a mapping; "
                    f"got {spec['match']!r}",
                )
                spec["match"] = dict(spec["match"])
            self.points[point] = spec

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "points": {p: dict(s) for p, s in self.points.items()}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        _require(
            isinstance(payload, Mapping),
            f"plan must be a JSON object; got {payload!r}",
        )
        extra = set(payload) - {"seed", "points"}
        _require(not extra, f"unknown plan key(s) {sorted(extra)}; accepted: points, seed")
        return cls(payload.get("points", {}), seed=payload.get("seed", 0))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan: {ENV_VAR} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(points={sorted(self.points)}, seed={self.seed})"


class _ArmedState:
    """Per-process mutable state behind an armed plan: call counters and the
    log of fired faults, guarded by a lock for the thread backend."""

    __slots__ = ("plan", "lock", "counts", "fired")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.lock = threading.Lock()
        self.counts: dict[str, int] = {}
        self.fired: list[tuple[str, int]] = []


#: Tri-state: _UNSET → consult ``REPRO_FAULTS`` lazily; None → disarmed;
#: _ArmedState → armed.
_UNSET = object()
_STATE: Any = _UNSET


def _resolve_state() -> Optional[_ArmedState]:
    global _STATE
    if _STATE is _UNSET:
        text = os.environ.get(ENV_VAR)
        _STATE = _ArmedState(FaultPlan.from_json(text)) if text else None
    return _STATE


def any_armed() -> bool:
    """Fast guard for hot paths: is any fault plan armed in this process?"""
    return _resolve_state() is not None


def arm(plan: Union[FaultPlan, Mapping[str, Any], str]) -> FaultPlan:
    """Arm ``plan`` for this process, resetting call counters.

    Accepts a :class:`FaultPlan`, a plan dict (``{"points": ..., "seed": ...}``),
    or the same as a JSON string.
    """
    global _STATE
    if isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    elif not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_dict(plan)
    _STATE = _ArmedState(plan)
    return plan


def disarm() -> None:
    """Disarm fault injection for this process (env plan included)."""
    global _STATE
    _STATE = None


def reset() -> None:
    """Forget any armed/disarmed state so ``REPRO_FAULTS`` is re-read lazily."""
    global _STATE
    _STATE = _UNSET


def export_plan() -> Optional[dict[str, Any]]:
    """The armed plan as a plain dict (for shipping to worker initializers)."""
    state = _resolve_state()
    return state.plan.to_dict() if state is not None else None


def fired() -> list[tuple[str, int]]:
    """The ``(point, call_ordinal)`` log of faults fired in this process."""
    state = _resolve_state()
    return list(state.fired) if state is not None else []


@contextmanager
def injection(plan: Union[FaultPlan, Mapping[str, Any], str]) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block, then restore."""
    global _STATE
    previous = _STATE
    armed = arm(plan)
    try:
        yield armed
    finally:
        _STATE = previous


def _matches(expected: Mapping[str, Any], context: Mapping[str, Any]) -> bool:
    for key, want in expected.items():
        got = context.get(key)
        # JSON plans carry lists where the context holds tuples.
        if isinstance(want, list) and isinstance(got, tuple):
            want = tuple(want)
        if got != want:
            return False
    return True


def _decide(spec: Mapping[str, Any], seed: int, point: str, ordinal: int) -> bool:
    if "at" in spec:
        return ordinal == spec["at"]
    if "every" in spec:
        return ordinal % spec["every"] == 0
    if "rate" in spec:
        digest = hashlib.blake2b(
            f"{seed}:{point}:{ordinal}".encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / 2.0**64
        return draw < float(spec["rate"])
    return True


def fire(point: str, **context: Any) -> None:
    """Evaluate injection point ``point``; raise/sleep/exit if its spec fires.

    No-op unless a plan arming ``point`` is active and the call is eligible
    (``match`` filter) and selected (``at``/``every``/``rate``).
    """
    state = _resolve_state()
    if state is None:
        return
    spec = state.plan.points.get(point)
    if spec is None:
        return
    match = spec.get("match")
    if match is not None and not _matches(match, context):
        return
    with state.lock:
        ordinal = state.counts.get(point, 0) + 1
        state.counts[point] = ordinal
    if not _decide(spec, state.plan.seed, point, ordinal):
        return
    once_file = spec.get("once_file")
    if once_file is not None:
        try:
            fd = os.open(once_file, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # another process (or attempt) already spent this fault
        os.close(fd)
    with state.lock:
        state.fired.append((point, ordinal))
    delay = spec.get("delay")
    if delay:
        time.sleep(float(delay))
    if spec.get("kill"):
        os._exit(int(spec.get("exit_code", 130)))
    if delay is not None and "error" not in spec:
        return  # pure slow fault
    error_class = _ERROR_CLASSES[spec.get("error", "fault")]
    raise error_class(f"injected fault at point {point!r} (call #{ordinal})")
