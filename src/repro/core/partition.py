"""Equivalence-class computation.

An *equivalence class* (EC) is a maximal set of rows agreeing on every
quasi-identifier of the (generalized) table. All privacy models, attacks, and
most loss metrics are functions of the EC partition plus the sensitive
column, so this module is the shared hub between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .table import Table, split_by_labels

__all__ = [
    "EquivalenceClasses",
    "partition_by_qi",
    "classes_from_labels",
    "classes_from_groups",
]


@dataclass(frozen=True)
class EquivalenceClasses:
    """The EC partition of a table under a set of quasi-identifiers.

    Attributes
    ----------
    groups:
        list of row-index arrays, one per EC.
    qi_names:
        the quasi-identifiers the partition was computed over.
    n_rows:
        total rows covered (sum of group sizes).
    """

    groups: tuple
    qi_names: tuple
    n_rows: int

    def __len__(self) -> int:
        return len(self.groups)

    def sizes(self) -> np.ndarray:
        """Per-group sizes (cached; treat the returned array as read-only)."""
        cached = self.__dict__.get("_sizes")
        if cached is None:
            cached = np.array([g.size for g in self.groups], dtype=np.int64)
            object.__setattr__(self, "_sizes", cached)
        return cached

    def min_size(self) -> int:
        return int(self.sizes().min()) if self.groups else 0

    def sensitive_counts(self, table: Table, sensitive: str) -> list[np.ndarray]:
        """Per-EC histograms over the sensitive attribute's category list."""
        codes = table.codes(sensitive)
        n_cats = len(table.column(sensitive).categories)
        return [np.bincount(codes[g], minlength=n_cats) for g in self.groups]

    def global_sensitive_distribution(self, table: Table, sensitive: str) -> np.ndarray:
        """Overall distribution of the sensitive attribute (t-closeness base)."""
        codes = table.codes(sensitive)
        n_cats = len(table.column(sensitive).categories)
        counts = np.bincount(codes, minlength=n_cats).astype(np.float64)
        return counts / counts.sum()


def partition_by_qi(table: Table, qi_names: Sequence[str]) -> EquivalenceClasses:
    """Compute the EC partition of ``table`` under ``qi_names``."""
    groups = table.group_rows(list(qi_names))
    return EquivalenceClasses(
        groups=tuple(groups), qi_names=tuple(qi_names), n_rows=table.n_rows
    )


def classes_from_labels(
    labels: np.ndarray, qi_names: Sequence[str], n_rows: int
) -> EquivalenceClasses:
    """Build an EC partition from per-row integer group labels.

    Groups are ordered by ascending label value and each group's row indices
    are ascending, matching :meth:`Table.group_rows` exactly — so partitions
    built from the lattice-evaluation engine's labels are interchangeable
    with :func:`partition_by_qi` output (same group indices).
    """
    return EquivalenceClasses(
        groups=tuple(split_by_labels(labels)), qi_names=tuple(qi_names), n_rows=int(n_rows)
    )


def classes_from_groups(groups, n_rows: int) -> EquivalenceClasses:
    """Ad-hoc EC partition from arbitrary row-index groups.

    Used by the local-recoding algorithms (Mondrian's candidate cuts, the
    partition engine's legacy-check fallback): group row indices are sorted
    ascending, ``qi_names`` is empty because the groups were not derived
    from a generalization node.
    """
    return EquivalenceClasses(
        groups=tuple(np.sort(np.asarray(g)) for g in groups),
        qi_names=(),
        n_rows=int(n_rows),
    )
