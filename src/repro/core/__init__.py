"""Core substrate: table engine, schema, hierarchies, lattice, partitions."""

from .generalize import apply_node, apply_partition_recoding, generalized_qi_table
from .hierarchy import Hierarchy, IntervalHierarchy, suppression_hierarchy
from .io import read_csv, write_csv
from .lattice import GeneralizationLattice
from .partition import EquivalenceClasses, partition_by_qi
from .release import Release
from .schema import AttributeType, Schema
from .table import Column, Table

__all__ = [
    "AttributeType",
    "Column",
    "EquivalenceClasses",
    "GeneralizationLattice",
    "Hierarchy",
    "IntervalHierarchy",
    "Release",
    "Schema",
    "Table",
    "apply_node",
    "apply_partition_recoding",
    "generalized_qi_table",
    "partition_by_qi",
    "read_csv",
    "suppression_hierarchy",
    "write_csv",
]
