"""Core substrate: table engine, schema, hierarchies, lattice, partitions."""

from .engine import GroupStats, LatticeEvaluator, supports_stats
from .generalize import apply_node, apply_partition_recoding, generalized_qi_table
from .hierarchy import Hierarchy, IntervalHierarchy, suppression_hierarchy
from .io import read_csv, write_csv
from .lattice import GeneralizationLattice
from .partition import (
    EquivalenceClasses,
    classes_from_groups,
    classes_from_labels,
    partition_by_qi,
)
from .partition_engine import PartitionEngine, PartitionGroup, PartitionStats
from .release import Release
from .schema import AttributeType, Schema
from .table import Column, Table

__all__ = [
    "AttributeType",
    "Column",
    "EquivalenceClasses",
    "GeneralizationLattice",
    "GroupStats",
    "Hierarchy",
    "IntervalHierarchy",
    "LatticeEvaluator",
    "PartitionEngine",
    "PartitionGroup",
    "PartitionStats",
    "Release",
    "Schema",
    "Table",
    "apply_node",
    "apply_partition_recoding",
    "classes_from_groups",
    "classes_from_labels",
    "generalized_qi_table",
    "partition_by_qi",
    "supports_stats",
    "read_csv",
    "suppression_hierarchy",
    "write_csv",
]
