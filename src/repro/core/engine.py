"""Vectorized lattice-node evaluation engine.

Checking a candidate lattice node used to mean rebuilding a generalized
:class:`~repro.core.table.Table` (``apply_node``) and re-partitioning it from
raw rows (``partition_by_qi``) — per node, per algorithm. This module turns
node evaluation into a handful of numpy gathers and bincounts shared by
Incognito, OLA, Flash, and Datafly.

Design
------
**LUTs.** At construction the :class:`LatticeEvaluator` encodes every QI
once into *base codes* — ground-domain codes for categorical QIs (via
:meth:`Hierarchy.level_map`), rank codes over the distinct values for
numeric QIs — plus one int lookup table per generalization level.
Generalizing a QI to level ``lv`` is then the single gather
``lut[lv][base_codes]``; no Table is ever rebuilt during the search.

**GroupStats.** Evaluating a node packs the per-QI level codes into one
mixed-radix signature per row (falling back to ``np.unique(axis=0)`` on
int64 overflow, exactly like :meth:`Table.group_signature`), compacts it
with ``np.unique`` and materializes a :class:`GroupStats`: per-group sizes
via ``np.bincount``, per-group representative QI codes, and — lazily, per
sensitive attribute — the full (n_groups × n_categories) histogram matrix
via a single flattened bincount (``group_label * n_cats + sens_code``).
Privacy models that implement the stats fast path
(``check_stats``/``failing_groups_stats``) are evaluated directly on these
arrays; other models fall back transparently to ``check(table, partition)``
on a materialized table.

**Memoization & roll-up contract.** Stats are memoized per ``(names,
node)``. When a node is requested and a *more specific* node over the same
QI subset is already cached (componentwise ≤), its stats are *rolled up*
instead of recomputed from rows: each cached group's representative codes
are mapped through composed level-to-level LUTs, re-packed, and sizes /
histograms are aggregated group-wise — O(n_groups) instead of O(n_rows).
Roll-up preserves the canonical group order (ascending signature, i.e. the
order :func:`partition_by_qi` produces), so group indices reported by
``failing_groups_stats`` are interchangeable with the legacy path no matter
how the stats were derived. Row-level labels are reconstructed lazily
through the parent chain only when a partition or fallback check needs
them.

Group ordering is byte-compatible with the legacy path: groups ascend by
packed signature, rows within a group ascend by index.

**Cache store.** Memoization lives in a standalone, pluggable
:class:`~repro.core.cache.EngineCacheStore` (PR 5): budget accounting,
eviction policy ("lru" default, or the stratum-aware policy that prefers
evicting nodes reconstructible by roll-up), the single-flight in-flight
table, and the counter set — hits, misses, from_rows, rollups, evictions,
coalesced, recomputed_after_evict, merged. The evaluator owns one store but
accepts a pre-built one (``cache=``), which is how
:class:`repro.api.BatchPlanner` sizes budgets across a sweep.

**Concurrency.** One evaluator may serve several worker threads at once
(:func:`repro.api.run_batch` with ``workers > 1``). The store's cache is
guarded by a single mutex, and computations are *single-flight*: the first
thread to request an uncached node registers an in-flight marker and
computes outside the lock; any other thread asking for the same ``(names,
node)`` meanwhile blocks on that marker instead of recomputing
(``cache_info()["coalesced"]`` counts those waits), so no node's stats are
ever derived twice. Lazily-grown payload (histograms, row labels,
partitions) is serialized per :class:`GroupStats` by its own re-entrant
lock. See ``docs/architecture.md`` for the full design.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import HierarchyError, SchemaError
from . import faults
from .cache import EngineCacheStore
from .deadline import check_deadline
from .generalize import HierarchyLike, apply_node
from .hierarchy import Hierarchy
from .partition import EquivalenceClasses, classes_from_labels
from .table import Table, check_chunk_rows, mixed_radix_fits, pack_code_columns

__all__ = ["GroupStats", "LatticeEvaluator", "supports_stats"]

Node = tuple[int, ...]


def supports_stats(model) -> bool:
    """True if a privacy model opts into the GroupStats fast path.

    A model opts in by implementing both ``check_stats(stats)`` and
    ``failing_groups_stats(stats)``; composite models may instead expose a
    ``supports_stats`` boolean attribute that gates delegation.
    """
    flag = getattr(model, "supports_stats", None)
    if flag is not None and not callable(flag):
        return bool(flag)
    return hasattr(model, "check_stats") and hasattr(model, "failing_groups_stats")


@dataclass
class GroupStats:
    """Equivalence-class statistics of one lattice node.

    The stats fast path of privacy models consumes:

    * :attr:`sizes` — int64 per-group sizes;
    * :meth:`histogram` — (n_groups, n_categories) int64 counts of a
      sensitive attribute per group;
    * :meth:`global_distribution` — the table-wide sensitive distribution.

    ``group_codes[g, i]`` is the generalized code of QI ``i`` shared by all
    rows of group ``g`` — the ingredient of roll-up and of distinct-value
    heuristics. Row-level labels and the :class:`EquivalenceClasses`
    partition are reconstructed lazily (through the roll-up parent chain if
    the stats were derived by roll-up rather than from rows).

    The eager fields (sizes, group_codes) are immutable after construction;
    every lazily-grown field is guarded by ``_lock`` so one stats object can
    serve several worker threads. The lock is re-entrant (``partition()``
    resolves ``row_labels`` while holding it) and locks are only ever taken
    child-then-parent along the acyclic roll-up chain, so the order is
    deadlock-free.
    """

    names: tuple[str, ...]
    node: Node
    sizes: np.ndarray
    group_codes: np.ndarray
    n_rows: int
    _engine: "LatticeEvaluator"
    _row_labels: np.ndarray | None = None
    _parent: tuple["GroupStats", np.ndarray] | None = None
    _hists: dict = field(default_factory=dict)
    _external: tuple | None = None
    _partition: EquivalenceClasses | None = None
    _cache_key: tuple | None = None
    _lock: Any = field(default_factory=threading.RLock, repr=False, compare=False)

    @property
    def n_groups(self) -> int:
        return int(self.sizes.size)

    def min_size(self) -> int:
        return int(self.sizes.min()) if self.sizes.size else 0

    @property
    def row_labels(self) -> np.ndarray:
        """Per-row group label (resolved through the roll-up parent chain)."""
        with self._lock:
            if self._row_labels is None:
                assert self._parent is not None, "root stats always carry row labels"
                parent, group_map = self._parent
                self._row_labels = group_map[parent.row_labels]
                self._engine._note_bytes(self, self._row_labels.nbytes)
            return self._row_labels

    def histogram(self, sensitive: str) -> np.ndarray:
        """(n_groups, n_categories) counts of ``sensitive`` per group."""
        with self._lock:
            hist = self._hists.get(sensitive)
            if hist is not None:
                return hist
            n_cats = self._engine._column_categories(sensitive)
            if self._parent is not None:
                parent, group_map = self._parent
                hist = np.zeros((self.n_groups, n_cats), dtype=np.int64)
                np.add.at(hist, group_map, parent.histogram(sensitive))
            else:
                codes = self._engine._column_codes(sensitive)
                flat = np.bincount(
                    self.row_labels * n_cats + codes, minlength=self.n_groups * n_cats
                )
                hist = flat.reshape(self.n_groups, n_cats)
            self._hists[sensitive] = hist
            self._engine._note_bytes(self, hist.nbytes)
            return hist

    def global_distribution(self, sensitive: str) -> np.ndarray:
        """Table-wide distribution of ``sensitive`` (t-closeness baseline)."""
        counts = self.histogram(sensitive).sum(axis=0).astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts

    def partition(self) -> EquivalenceClasses:
        """The node's EC partition, ordered exactly like ``partition_by_qi``."""
        with self._lock:
            if self._partition is None:
                self._partition = classes_from_labels(
                    self.row_labels, self.names, self.n_rows
                )
                # The group arrays are views over one O(n_rows) order array.
                self._engine._note_bytes(self, self.n_rows * 8)
            return self._partition

    def external_counts(self, table: Table) -> np.ndarray:
        """Per-group row counts of an external table at this node (memoized).

        The δ-presence fast path's ``p`` vector: population rows encoded
        through the same hierarchies at this node's generalization, counted
        per group in this stats' group order. Single-slot memo, pinning the
        table it was computed from — a long-cached node never accumulates
        retired population tables across refreshes.
        """
        with self._lock:
            if self._external is None or self._external[0] is not table:
                counts = self._engine.external_group_counts(self, table)
                self._external = (table, counts)
                self._engine._note_bytes(self, counts.nbytes)
                return counts
            return self._external[1]


class _QIEncoding:
    """Per-QI precomputation: base codes + one LUT per generalization level.

    ``uniques`` is the sorted distinct-value array a numeric QI's rank codes
    index into (None for categorical QIs); external tables — e.g. the
    population table of δ-presence — are translated into the same code space
    through it.
    """

    __slots__ = ("base_codes", "luts", "n_labels", "uniques")

    def __init__(
        self,
        base_codes: np.ndarray,
        luts: list[np.ndarray],
        n_labels: list[int],
        uniques: np.ndarray | None = None,
    ):
        self.base_codes = base_codes
        self.luts = luts
        self.n_labels = n_labels
        self.uniques = uniques


class LatticeEvaluator:
    """Shared node-evaluation engine for full-domain lattice searches.

    Construct once per search from the (identifier-stripped) input table,
    the QI list, and the hierarchies; then evaluate any node of the full
    lattice — or of any projected sub-lattice (``names=`` subset, as
    Incognito's subset phases need) — without rebuilding tables.

    The memo cache is an :class:`~repro.core.cache.EngineCacheStore`
    holding :class:`GroupStats` keyed by ``(names, node)``; it is bounded
    both by entry count (``cache_limit``) and by approximate payload bytes
    (``cache_bytes``) so large-lattice searches over many-row tables cannot
    pin O(nodes × rows) of label arrays. Eviction follows the store's
    policy — ``"lru"`` by default, or the stratum-aware policy that prefers
    shedding nodes reconstructible by roll-up. Payload grown after
    insertion (lazy histograms, lazily-resolved row labels) is accounted
    too and can trigger eviction of older entries. Evicted entries may stay
    alive while a rolled-up descendant still references them, but each
    roll-up chain shares a single per-row label array at its root, so that
    overhang is bounded.

    The evaluator is thread-safe: cache bookkeeping runs under one mutex and
    node computations are single-flight (see the module docstring), so
    :func:`repro.api.run_batch` can point several worker threads at one
    shared evaluator without ever evaluating a node twice.

    Example (doctested)::

        >>> import numpy as np
        >>> from repro.core.table import Table
        >>> from repro.core.hierarchy import Hierarchy
        >>> table = Table.from_dict(
        ...     {"city": ["paris", "paris", "lyon", "osaka"],
        ...      "disease": ["flu", "flu", "hiv", "flu"]},
        ...     categorical=["city", "disease"],
        ... )
        >>> hierarchy = Hierarchy.from_tree({"EU": ["paris", "lyon"],
        ...                                  "AS": ["osaka"]})
        >>> engine = LatticeEvaluator(table, ["city"], {"city": hierarchy})
        >>> engine.stats((1,)).sizes.tolist()   # EU: 3 rows, AS: 1 row
        [3, 1]
        >>> engine.n_groups((2,))               # everything rolls up to '*'
        1
        >>> engine.stats((1,)).histogram("disease").tolist()
        [[2, 1], [1, 0]]
        >>> engine.cache_info()["from_rows"]
        1
    """

    def __init__(
        self,
        table: Table,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, HierarchyLike],
        cache_limit: int = 8192,
        cache_bytes: int = 256 * 2**20,
        cache: EngineCacheStore | None = None,
        cache_policy: str = "lru",
        chunk_rows: int | None = None,
    ):
        if chunk_rows is not None:
            try:
                check_chunk_rows(chunk_rows)
            except ValueError as exc:
                raise ValueError(f"chunk_rows {exc}") from None
        self.table = table
        self.qi_names = tuple(qi_names)
        self.hierarchies = hierarchies
        # Row-slice size for streaming node evaluation (None = one-shot):
        # bounds the per-QI int64 intermediates of _stats_from_rows to
        # chunk_rows elements each instead of n_rows.
        self.chunk_rows = chunk_rows
        # The store carries the memo table, budget accounting, stratum
        # index, single-flight table, and counters; a pre-built store may
        # be handed in (the batch planner sizes budgets per environment).
        self.cache = (
            cache
            if cache is not None
            else EngineCacheStore(
                cache_limit=int(cache_limit),
                cache_bytes=int(cache_bytes),
                policy=cache_policy,
            )
        )
        self._encodings = {name: self._encode_qi(name) for name in self.qi_names}
        self._level_maps: dict[tuple[str, int, int], np.ndarray] = {}
        self._columns: dict[str, tuple[np.ndarray, int]] = {}
        # External-table ground codes, one slot per QI name: the domain
        # translation is node-independent, so a lattice search re-evaluating
        # δ-presence at every node pays for it once per table. Single-slot
        # so a long-lived evaluator seeing refreshed population tables never
        # pins retired ones; the entry stores the table for identity checks.
        self._external_grounds: dict[str, tuple[Table, np.ndarray]] = {}
        # Single-entry materialization cache: callers typically ask for the
        # same node's table twice in a row (check -> suppression count), and
        # full tables are too large to memoize per node.
        self._last_materialized: tuple[tuple[tuple[str, ...], Node], Table] | None = None

    # -- precomputation ------------------------------------------------------

    def _encode_qi(self, name: str) -> _QIEncoding:
        column = self.table.column(name)
        hierarchy = self.hierarchies[name]
        if column.is_categorical:
            if not isinstance(hierarchy, Hierarchy):
                raise HierarchyError(
                    f"categorical QI {name!r} needs a Hierarchy, got {type(hierarchy).__name__}"
                )
            base = hierarchy.ground_codes(column)
            luts = [hierarchy.level_map(lv) for lv in range(hierarchy.height + 1)]
            n_labels = [len(hierarchy.labels(lv)) for lv in range(hierarchy.height + 1)]
            return _QIEncoding(base, luts, n_labels)
        # Numeric QI: rank-encode the distinct values, then per-level LUTs
        # over the distinct-value domain via interval binning.
        if not hasattr(hierarchy, "bin_values"):
            raise HierarchyError(
                f"column {name!r} is numeric; use IntervalHierarchy, "
                f"got {type(hierarchy).__name__}"
            )
        assert column.values is not None
        uniques, base = np.unique(column.values, return_inverse=True)
        luts = [np.arange(uniques.size, dtype=np.int64)]
        n_labels = [int(uniques.size)]
        for lv in range(1, hierarchy.height + 1):
            luts.append(hierarchy.bin_values(uniques, lv).astype(np.int64))
            n_labels.append(len(hierarchy.intervals(lv)))
        return _QIEncoding(base.astype(np.int64), luts, n_labels, uniques=uniques)

    def _column_codes(self, name: str) -> np.ndarray:
        """int64 codes of a categorical (usually sensitive) column."""
        return self._column(name)[0]

    def _column_categories(self, name: str) -> int:
        """Category count of a categorical column."""
        return self._column(name)[1]

    def _column(self, name: str) -> tuple[np.ndarray, int]:
        cached = self._columns.get(name)
        if cached is None:
            column = self.table.column(name)
            if not column.is_categorical:
                raise SchemaError(
                    f"column {name!r} must be categorical for group histograms"
                )
            assert column.codes is not None
            cached = (column.codes.astype(np.int64), len(column.categories))
            self._columns[name] = cached
        return cached

    def _level_map_between(self, name: str, low: int, high: int) -> np.ndarray:
        """Composed LUT mapping level-``low`` codes to level-``high`` codes.

        Valid because every hierarchy level refines the next (checked at
        Hierarchy construction; interval merging is monotone by design), so
        scattering ``lut[high]`` through ``lut[low]`` is conflict-free.

        Unlocked on purpose: the memo write is idempotent (two racing
        threads compute identical arrays and either may win), so the worst
        case is one wasted recomputation, never a wrong value. The same
        holds for the ``_columns`` and ``_external_grounds`` memos.
        """
        key = (name, low, high)
        comp = self._level_maps.get(key)
        if comp is None:
            enc = self._encodings[name]
            comp = np.zeros(enc.n_labels[low], dtype=np.int64)
            comp[enc.luts[low]] = enc.luts[high]
            self._level_maps[key] = comp
        return comp

    # -- stats ---------------------------------------------------------------

    def stats(self, node: Sequence[int], names: Sequence[str] | None = None) -> GroupStats:
        """Memoized :class:`GroupStats` of a node (roll-up when possible).

        Thread-safe and single-flight via the cache store: when several
        workers request the same uncached ``(names, node)`` at once, exactly
        one computes it (from rows or by roll-up) while the others block on
        the computation's in-flight marker and then read the freshly cached
        entry — counted under ``coalesced`` in :meth:`cache_info`.

        This is also the executor's cooperative checkpoint: an armed
        :class:`~repro.core.deadline.Deadline` is checked between node
        evaluations here, so an overrunning search is interrupted with a
        timeout/deadline error at the next node boundary. The
        ``evaluate-node`` fault-injection point fires here too (no-op
        unless a fault plan is armed).
        """
        names = self.qi_names if names is None else tuple(names)
        node = tuple(int(lv) for lv in node)
        check_deadline()
        if faults.any_armed():
            faults.fire("evaluate-node", names=names, node=node)

        def compute(ancestor: GroupStats | None) -> GroupStats:
            if ancestor is not None:
                return self._rollup(ancestor, node)
            return self._stats_from_rows(names, node)

        return self.cache.get_or_compute(names, node, compute)

    def cache_info(self) -> dict:
        """Cumulative cache telemetry plus current occupancy.

        ``from_rows`` counts O(n_rows) stats computations, ``rollups``
        O(n_groups) derivations, ``hits`` memo returns, ``misses`` requests
        that had to compute (``misses == from_rows + rollups``). A shared
        evaluator re-used across batch jobs shows ``hits`` growing while
        ``from_rows`` stays put — the evidence that lattice nodes are
        evaluated once. ``coalesced`` counts requests that blocked on
        another worker's in-flight computation of the same node instead of
        recomputing it (each such request is then also a ``hit`` when it
        reads the freshly cached entry); with zero evictions, ``from_rows +
        rollups == entries`` proves no node was ever evaluated twice,
        sequentially or under parallel workers. ``recomputed_after_evict``
        counts computations of keys that had been cached and were evicted —
        the budget-thrash signal wave planning drives to zero — and
        ``merged`` entries adopted from shard evaluators.
        """
        info = self.cache.info()
        del info["policy"]  # keep the historic cache_info shape numeric-only
        return info

    def clone(self, cache: EngineCacheStore | None = None) -> "LatticeEvaluator":
        """A shard evaluator over the same table/hierarchies.

        Read-only precomputation — QI encodings, composed level maps,
        column codes, external grounds — is shared by reference (their
        memo writes are idempotent, see :meth:`_level_map_between`), so a
        clone costs O(1) instead of re-encoding the table. The clone gets
        its own (empty) cache store unless one is handed in; merge it back
        with :meth:`adopt` when the shard is done.
        """
        shard = object.__new__(LatticeEvaluator)
        shard.table = self.table
        shard.qi_names = self.qi_names
        shard.hierarchies = self.hierarchies
        shard.cache = cache if cache is not None else EngineCacheStore(
            cache_limit=self.cache.cache_limit,
            cache_bytes=self.cache.cache_bytes,
            policy=self.cache.policy,
        )
        shard.chunk_rows = self.chunk_rows
        shard._encodings = self._encodings
        shard._level_maps = self._level_maps
        shard._columns = self._columns
        shard._external_grounds = self._external_grounds
        shard._last_materialized = None
        return shard

    def adopt(self, shard: "LatticeEvaluator") -> int:
        """Merge a shard's memo cache into this evaluator's store.

        The memo merge step between batch waves: entries this store lacks
        are re-homed here (their lazy growth is accounted against this
        store from now on), duplicates are dropped, and the shard's
        counters fold into this store's. The shard must be discarded
        afterwards. Returns the number of entries adopted.
        """
        return self.cache.merge_from(shard.cache, engine=self)

    def export_cache(self) -> dict:
        """Picklable snapshot of the memo store — the process tier's merge seam.

        Each cached :class:`GroupStats` becomes a flat record of its arrays
        plus, when the roll-up parent is itself still cached, a parent link
        by cache key (the group map rides along, the per-row labels do
        not). Entries whose parent was evicted have their row labels
        materialized first, so no record ever references stats outside the
        snapshot. Locks, engine references, partitions and external-table
        memos are dropped: partitions rebuild on demand from row labels and
        the rest re-derives. Entries keep store (recency) order; the
        store's counters come along so :meth:`import_cache` can fold them
        exactly like a live :meth:`adopt`.
        """
        with self.cache._mutex:
            items = list(self.cache._entries.items())
            counters = dict(self.cache.counters)
        live = dict(items)
        records = []
        for key, stats in items:
            parent_key = None
            group_map = None
            if stats._parent is not None:
                parent, candidate_map = stats._parent
                if live.get(parent._cache_key) is parent:
                    parent_key, group_map = parent._cache_key, candidate_map
                else:
                    stats.row_labels  # resolve through the chain before the link drops
            records.append(
                {
                    "key": key,
                    "sizes": stats.sizes,
                    "group_codes": stats.group_codes,
                    "n_rows": stats.n_rows,
                    "row_labels": stats._row_labels,
                    "hists": dict(stats._hists),
                    "parent_key": parent_key,
                    "group_map": group_map,
                }
            )
        return {"entries": records, "counters": counters}

    def import_cache(self, snapshot: dict | None) -> int:
        """Adopt an :meth:`export_cache` snapshot into this evaluator's store.

        Rebuilds the records into :class:`GroupStats` homed on this
        evaluator (parent links rewired by key), stages them in a shard
        store preserving the source's insertion order and counters, and
        merges via :meth:`EngineCacheStore.merge_from` — so budgets,
        counter folding, and the ``merged`` tally behave exactly like a
        live thread-shard :meth:`adopt`. Returns the entries adopted.

        ``None`` (a crashed worker shipped no snapshot) merges nothing and
        returns 0, mirroring :meth:`EngineCacheStore.merge_from`.
        """
        if snapshot is None:
            return 0
        shard_store = EngineCacheStore(
            cache_limit=None, cache_bytes=2**62, policy=self.cache.policy
        )
        rebuilt: dict[tuple, tuple[GroupStats, dict]] = {}
        for record in snapshot["entries"]:
            key = record["key"]
            rebuilt[key] = (
                GroupStats(
                    names=key[0],
                    node=key[1],
                    sizes=record["sizes"],
                    group_codes=record["group_codes"],
                    n_rows=int(record["n_rows"]),
                    _engine=self,
                    _row_labels=record["row_labels"],
                    _hists=dict(record["hists"]),
                ),
                record,
            )
        for key, (stats, record) in rebuilt.items():
            if record["parent_key"] is not None:
                parent = rebuilt.get(record["parent_key"])
                assert parent is not None, "exported parent links stay inside the snapshot"
                stats._parent = (parent[0], record["group_map"])
            with shard_store._mutex:
                shard_store._insert(key, stats, shard_store.footprint(stats))
        shard_store.counters.update(snapshot["counters"])
        return self.cache.merge_from(shard_store, engine=self)

    # -- backwards-compatible views into the cache store ----------------------

    @property
    def cache_limit(self) -> int:
        return self.cache.cache_limit

    @property
    def cache_bytes(self) -> int:
        return self.cache.cache_bytes

    @property
    def counters(self) -> dict:
        return self.cache.counters

    @property
    def _stats_cache(self) -> dict:
        return self.cache._entries

    @property
    def _stratum_index(self) -> dict:
        return self.cache._stratum_index

    @property
    def _cached_bytes(self) -> int:
        return self.cache._cached_bytes

    @property
    def _accounted(self) -> dict:
        return self.cache._accounted

    def _note_bytes(self, stats: GroupStats, n_bytes: int) -> None:
        self.cache.note_bytes(stats, n_bytes)

    def _group(
        self, code_columns: list[np.ndarray], radices: list[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(labels, first_occurrence_index, group_codes) of packed columns.

        Delegates the packing (and its int64-overflow fallback) to
        :func:`repro.core.table.pack_code_columns` so the engine's group
        order is the same code path ``Table.group_rows`` uses, by
        construction rather than by parallel implementation.
        """
        signature = pack_code_columns(code_columns, radices)
        _, first, labels = np.unique(signature, return_index=True, return_inverse=True)
        group_codes = np.stack([codes[first] for codes in code_columns], axis=1)
        return labels, first, group_codes

    def _stats_from_rows(self, names: tuple[str, ...], node: Node) -> GroupStats:
        encodings = [self._encodings[name] for name in names]
        radices = [enc.n_labels[level] for enc, level in zip(encodings, node)]
        n_rows = self.table.n_rows
        chunk = self.chunk_rows
        if chunk is not None and chunk < n_rows and mixed_radix_fits(radices):
            # Streaming variant of _group: per-QI gathers are bounded to
            # chunk_rows elements and packed straight into slices of one
            # preallocated signature array — mixed-radix packing is
            # chunk-independent, so labels/first/group_codes come out
            # byte-identical to the one-shot path below. The overflow
            # fallback needs all rows at once and keeps the one-shot path.
            signature = np.empty(n_rows, dtype=np.int64)
            for start in range(0, n_rows, chunk):
                stop = min(start + chunk, n_rows)
                chunk_codes = [
                    enc.luts[level][enc.base_codes[start:stop]]
                    for enc, level in zip(encodings, node)
                ]
                pack_code_columns(chunk_codes, radices, out=signature[start:stop])
            _, first, labels = np.unique(
                signature, return_index=True, return_inverse=True
            )
            group_codes = np.stack(
                [
                    enc.luts[level][enc.base_codes[first]]
                    for enc, level in zip(encodings, node)
                ],
                axis=1,
            ).astype(np.int64)
        else:
            code_columns = [
                enc.luts[level][enc.base_codes].astype(np.int64)
                for enc, level in zip(encodings, node)
            ]
            labels, _, group_codes = self._group(code_columns, radices)
        sizes = np.bincount(labels, minlength=group_codes.shape[0]).astype(np.int64)
        return GroupStats(
            names=names,
            node=node,
            sizes=sizes,
            group_codes=group_codes,
            n_rows=n_rows,
            _engine=self,
            _row_labels=labels,
        )

    def _rollup(self, parent: GroupStats, node: Node) -> GroupStats:
        code_columns = []
        radices = []
        for i, name in enumerate(parent.names):
            comp = self._level_map_between(name, parent.node[i], node[i])
            code_columns.append(comp[parent.group_codes[:, i]])
            radices.append(self._encodings[name].n_labels[node[i]])
        group_map, _, group_codes = self._group(code_columns, radices)
        sizes = np.zeros(group_codes.shape[0], dtype=np.int64)
        np.add.at(sizes, group_map, parent.sizes)
        return GroupStats(
            names=parent.names,
            node=node,
            sizes=sizes,
            group_codes=group_codes,
            n_rows=parent.n_rows,
            _engine=self,
            _parent=(parent, group_map),
        )

    def _external_ground(
        self, name: str, table: Table, column, hierarchy: Hierarchy
    ) -> np.ndarray:
        """External rows as research-domain ground codes (-1 = no match)."""
        entry = self._external_grounds.get(name)
        if entry is not None and entry[0] is table:
            return entry[1]
        ground_index = {value: code for code, value in enumerate(hierarchy.ground)}
        translate = np.array(
            [ground_index.get(v, -1) for v in column.categories], dtype=np.int64
        )
        ground = translate[column.codes]
        self._external_grounds[name] = (table, ground)
        return ground

    def external_group_counts(self, stats: GroupStats, table: Table) -> np.ndarray:
        """Rows of an external table matching each of ``stats``' groups.

        The external table (e.g. δ-presence's population) is generalized
        through the same hierarchies at ``stats.node`` and its rows are
        matched against the groups' representative codes. Values outside the
        research table's domain — an unseen category, or (at level 0) a
        numeric value absent from the research column — match no group.
        Returns int64 counts aligned with ``stats``' group order.
        """
        code_columns: list[np.ndarray] = []
        radices: list[int] = []
        valid = np.ones(table.n_rows, dtype=bool)
        for i, (name, level) in enumerate(zip(stats.names, stats.node)):
            enc = self._encodings[name]
            column = table.column(name)
            hierarchy = self.hierarchies[name]
            if column.is_categorical:
                assert isinstance(hierarchy, Hierarchy) and column.codes is not None
                ground = self._external_ground(name, table, column, hierarchy)
                valid &= ground >= 0
                codes = enc.luts[level][np.where(ground >= 0, ground, 0)]
            else:
                assert column.values is not None and enc.uniques is not None
                if level == 0:
                    ranks = np.searchsorted(enc.uniques, column.values)
                    ranks = np.clip(ranks, 0, enc.uniques.size - 1)
                    valid &= enc.uniques[ranks] == column.values
                    codes = ranks.astype(np.int64)
                else:
                    codes = hierarchy.bin_values(column.values, level).astype(np.int64)
            code_columns.append(codes)
            radices.append(enc.n_labels[level])
        # Pack external rows and group representatives in ONE call: the
        # int64-overflow fallback labels by np.unique(axis=0), and labels
        # from separate pack calls would not be comparable.
        joint = [
            np.concatenate([codes, stats.group_codes[:, i]])
            for i, codes in enumerate(code_columns)
        ]
        packed = pack_code_columns(joint, radices)
        external_sig = packed[: table.n_rows][valid]
        group_sig = packed[table.n_rows :]
        uniques, match_counts = np.unique(external_sig, return_counts=True)
        slots = np.searchsorted(uniques, group_sig)
        slots = np.clip(slots, 0, max(uniques.size - 1, 0))
        counts = np.zeros(stats.n_groups, dtype=np.int64)
        if uniques.size:
            matched = uniques[slots] == group_sig
            counts[matched] = match_counts[slots[matched]]
        return counts

    # -- model evaluation ----------------------------------------------------

    def check(
        self,
        node: Sequence[int],
        models: Sequence,
        names: Sequence[str] | None = None,
    ) -> bool:
        """True iff every model holds at the node (fast path + fallback)."""
        stats = self.stats(node, names)
        slow = []
        for model in models:
            if supports_stats(model):
                if not model.check_stats(stats):
                    return False
            else:
                slow.append(model)
        if not slow:
            return True
        candidate = self.materialize(node, names)
        partition = stats.partition()
        return all(model.check(candidate, partition) for model in slow)

    def failing_groups(
        self,
        node: Sequence[int],
        models: Sequence,
        names: Sequence[str] | None = None,
    ) -> list[int]:
        """Sorted union of the models' failing group indices at the node."""
        return sorted(np.flatnonzero(self._failing_mask(node, models, names)).tolist())

    def failing_row_count(
        self,
        node: Sequence[int],
        models: Sequence,
        names: Sequence[str] | None = None,
    ) -> int:
        """Rows belonging to any failing group (the suppression cost)."""
        stats = self.stats(node, names)
        mask = self._failing_mask(node, models, names)
        return int(stats.sizes[mask].sum())

    def failing_rows(
        self,
        node: Sequence[int],
        models: Sequence,
        names: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Ascending row indices of every failing group at the node.

        Suppression steps should consume this rather than re-deriving the
        failing set through the legacy model path, so a borderline float
        verdict cannot flip between the search's admission decision and the
        final suppression.
        """
        stats = self.stats(node, names)
        mask = self._failing_mask(node, models, names)
        return np.flatnonzero(mask[stats.row_labels])

    def _failing_mask(
        self, node: Sequence[int], models: Sequence, names: Sequence[str] | None
    ) -> np.ndarray:
        stats = self.stats(node, names)
        mask = np.zeros(stats.n_groups, dtype=bool)
        slow = []
        for model in models:
            if supports_stats(model):
                indices = model.failing_groups_stats(stats)
                if len(indices):
                    mask[np.asarray(indices, dtype=np.int64)] = True
            else:
                slow.append(model)
        if slow:
            candidate = self.materialize(node, names)
            partition = stats.partition()
            for model in slow:
                indices = model.failing_groups(candidate, partition)
                if len(indices):
                    mask[np.asarray(indices, dtype=np.int64)] = True
        return mask

    def evaluate(
        self,
        node: Sequence[int],
        models: Sequence,
        max_suppression: float = 0.0,
        names: Sequence[str] | None = None,
    ) -> bool:
        """Node satisfies the models, possibly within a suppression budget.

        With a budget the failing mask is computed directly (one pass, one
        fallback materialization at most) since a failed check alone cannot
        decide the verdict anyway.
        """
        if max_suppression <= 0:
            return self.check(node, models, names)
        stats = self.stats(node, names)
        mask = self._failing_mask(node, models, names)
        budget = max_suppression * self.table.n_rows
        return int(stats.sizes[mask].sum()) <= budget

    # -- materialization & heuristics ---------------------------------------

    def materialize(
        self, node: Sequence[int], names: Sequence[str] | None = None
    ) -> Table:
        """Generalized full table at the node (for the winning node only)."""
        names = self.qi_names if names is None else tuple(names)
        key = (names, tuple(int(lv) for lv in node))
        if self._last_materialized is not None and self._last_materialized[0] == key:
            return self._last_materialized[1]
        table = apply_node(self.table, self.hierarchies, names, node)
        self._last_materialized = (key, table)
        return table

    def partition(
        self, node: Sequence[int], names: Sequence[str] | None = None
    ) -> EquivalenceClasses:
        """EC partition at the node, interchangeable with ``partition_by_qi``."""
        return self.stats(node, names).partition()

    def n_groups(self, node: Sequence[int], names: Sequence[str] | None = None) -> int:
        return self.stats(node, names).n_groups

    def distinct_counts(
        self, node: Sequence[int], names: Sequence[str] | None = None
    ) -> list[int]:
        """Per-QI distinct generalized values present (Datafly heuristic)."""
        stats = self.stats(node, names)
        return [
            int(np.unique(stats.group_codes[:, i]).size)
            for i in range(stats.group_codes.shape[1])
        ]

    def distinct_after(
        self,
        node: Sequence[int],
        qi_index: int,
        new_level: int,
        names: Sequence[str] | None = None,
    ) -> int:
        """Distinct values of one QI if raised to ``new_level`` (loss ablation)."""
        names = self.qi_names if names is None else tuple(names)
        stats = self.stats(node, names)
        comp = self._level_map_between(names[qi_index], int(node[qi_index]), new_level)
        return int(np.unique(comp[stats.group_codes[:, qi_index]]).size)

    def __repr__(self) -> str:
        return (
            f"LatticeEvaluator({len(self.qi_names)} QIs, {self.table.n_rows} rows, "
            f"{len(self._stats_cache)} cached nodes)"
        )
