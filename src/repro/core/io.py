"""CSV import/export for tables.

Minimal, dependency-free CSV round-tripping so the CLI (and downstream
users without pandas) can anonymize real files:

* :func:`read_csv` — header-based load with optional explicit column kinds;
  unspecified columns are sniffed (all-numeric → numeric, else categorical).
* :func:`write_csv` — writes decoded values.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

from ..errors import SchemaError
from .table import Column, Table

__all__ = ["read_csv", "write_csv"]


def read_csv(
    path: str | os.PathLike,
    categorical: Sequence[str] = (),
    numeric: Sequence[str] = (),
    delimiter: str = ",",
) -> Table:
    """Load a CSV with a header row into a :class:`Table`.

    Columns named in ``categorical``/``numeric`` are typed accordingly;
    every other column is numeric if all its values parse as floats, else
    categorical. Values are stripped of surrounding whitespace.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = [name.strip() for name in next(reader)]
        except StopIteration:
            raise SchemaError(f"{path}: empty file") from None
        rows = [[cell.strip() for cell in row] for row in reader if row]
    if not rows:
        raise SchemaError(f"{path}: no data rows")
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row {i + 2} has {len(row)} cells, header has {len(header)}"
            )

    columns: list[Column] = []
    by_name = {name: [row[j] for row in rows] for j, name in enumerate(header)}
    declared = set(categorical) | set(numeric)
    unknown = declared - set(header)
    if unknown:
        raise SchemaError(f"declared columns {sorted(unknown)} not in CSV header {header}")
    for name in header:
        values = by_name[name]
        if name in categorical:
            columns.append(Column.categorical(name, values))
        elif name in numeric:
            columns.append(Column.numeric(name, [_parse_number(name, v) for v in values]))
        elif all(_is_number(v) for v in values):
            columns.append(Column.numeric(name, [float(v) for v in values]))
        else:
            columns.append(Column.categorical(name, values))
    return Table(columns)


def write_csv(table: Table, path: str | os.PathLike, delimiter: str = ",") -> None:
    """Write a table (decoded values) to a CSV file with a header row."""
    decoded = {name: table.column(name).decode() for name in table.column_names}
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.column_names)
        for i in range(table.n_rows):
            writer.writerow([_render(decoded[name][i]) for name in table.column_names])


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _parse_number(name: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise SchemaError(f"column {name!r}: {text!r} is not numeric") from None


def _render(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
