"""The :class:`Release` object: the output of an anonymization run.

A release bundles the published table with the audit trail a data custodian
needs: which algorithm and privacy models produced it, the generalization
node or recoding applied, how many records were suppressed, and the EC
partition (recomputed lazily) that metrics and attacks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from .partition import EquivalenceClasses, partition_by_qi
from .schema import Schema
from .table import Table

__all__ = ["Release"]


@dataclass
class Release:
    """An anonymized table plus metadata about how it was produced."""

    table: Table
    schema: Schema
    algorithm: str
    node: tuple | None = None
    suppressed: int = 0
    original_n_rows: int = 0
    kept_rows: np.ndarray | None = None
    info: Mapping[str, Any] = field(default_factory=dict)
    _partition: EquivalenceClasses | None = field(default=None, repr=False)

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @property
    def suppression_rate(self) -> float:
        """Fraction of original rows dropped by suppression."""
        if not self.original_n_rows:
            return 0.0
        return self.suppressed / self.original_n_rows

    def partition(self) -> EquivalenceClasses:
        """EC partition of the released table (cached)."""
        if self._partition is None:
            self._partition = partition_by_qi(self.table, self.schema.quasi_identifiers)
        return self._partition

    def equivalence_class_sizes(self) -> np.ndarray:
        return self.partition().sizes()

    def summary(self) -> dict:
        """Human-readable audit summary."""
        sizes = self.equivalence_class_sizes()
        return {
            "algorithm": self.algorithm,
            "node": self.node,
            "rows_published": self.n_rows,
            "rows_suppressed": self.suppressed,
            "suppression_rate": round(self.suppression_rate, 4),
            "equivalence_classes": len(sizes),
            "min_class_size": int(sizes.min()) if sizes.size else 0,
            "avg_class_size": float(sizes.mean()) if sizes.size else 0.0,
        }
