"""Attribute typing for publishing scenarios.

A :class:`Schema` classifies each column of a table into the standard PPDP
roles:

* **identifying** — direct identifiers (name, SSN): always removed.
* **quasi-identifier** (categorical or numeric) — externally linkable
  attributes that generalization/suppression operate on.
* **sensitive** — the attribute(s) whose disclosure privacy models bound.
* **insensitive** — everything else, published unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from ..errors import SchemaError
from .table import Table

__all__ = ["AttributeType", "Schema"]


class AttributeType(Enum):
    """Role of an attribute in the publishing scenario."""

    IDENTIFYING = "identifying"
    QI_CATEGORICAL = "qi_categorical"
    QI_NUMERIC = "qi_numeric"
    SENSITIVE = "sensitive"
    INSENSITIVE = "insensitive"


@dataclass(frozen=True)
class Schema:
    """Immutable mapping of column name to :class:`AttributeType`."""

    types: Mapping[str, AttributeType]

    @staticmethod
    def build(
        quasi_identifiers: Sequence[str] = (),
        sensitive: Sequence[str] = (),
        identifying: Sequence[str] = (),
        insensitive: Sequence[str] = (),
        numeric_quasi_identifiers: Sequence[str] = (),
    ) -> "Schema":
        """Convenience constructor from role lists.

        ``quasi_identifiers`` are categorical QIs; numeric QIs go in
        ``numeric_quasi_identifiers``.
        """
        types: dict[str, AttributeType] = {}
        groups = [
            (quasi_identifiers, AttributeType.QI_CATEGORICAL),
            (numeric_quasi_identifiers, AttributeType.QI_NUMERIC),
            (sensitive, AttributeType.SENSITIVE),
            (identifying, AttributeType.IDENTIFYING),
            (insensitive, AttributeType.INSENSITIVE),
        ]
        for names, attr_type in groups:
            for name in names:
                if name in types:
                    raise SchemaError(f"attribute {name!r} assigned two roles")
                types[name] = attr_type
        if not any(t in (AttributeType.QI_CATEGORICAL, AttributeType.QI_NUMERIC) for t in types.values()):
            raise SchemaError("a publishing schema needs at least one quasi-identifier")
        return Schema(types=types)

    # -- accessors ----------------------------------------------------------

    def of_type(self, *attr_types: AttributeType) -> list[str]:
        return [name for name, t in self.types.items() if t in attr_types]

    @property
    def quasi_identifiers(self) -> list[str]:
        """All QI names (categorical + numeric), in declaration order."""
        return self.of_type(AttributeType.QI_CATEGORICAL, AttributeType.QI_NUMERIC)

    @property
    def categorical_quasi_identifiers(self) -> list[str]:
        return self.of_type(AttributeType.QI_CATEGORICAL)

    @property
    def numeric_quasi_identifiers(self) -> list[str]:
        return self.of_type(AttributeType.QI_NUMERIC)

    @property
    def sensitive(self) -> list[str]:
        return self.of_type(AttributeType.SENSITIVE)

    @property
    def identifying(self) -> list[str]:
        return self.of_type(AttributeType.IDENTIFYING)

    @property
    def insensitive(self) -> list[str]:
        return self.of_type(AttributeType.INSENSITIVE)

    def type_of(self, name: str) -> AttributeType:
        try:
            return self.types[name]
        except KeyError:
            raise SchemaError(f"attribute {name!r} not in schema") from None

    # -- validation ---------------------------------------------------------

    def validate(self, table: Table) -> None:
        """Check the schema is consistent with a concrete table.

        Every schema attribute must exist in the table; categorical QIs and
        sensitive attributes must be categorical columns; numeric QIs must be
        numeric columns.
        """
        for name, attr_type in self.types.items():
            col = table.column(name)
            if attr_type is AttributeType.QI_CATEGORICAL and not col.is_categorical:
                raise SchemaError(f"QI {name!r} declared categorical but column is numeric")
            if attr_type is AttributeType.QI_NUMERIC and col.is_categorical:
                raise SchemaError(f"QI {name!r} declared numeric but column is categorical")
            if attr_type is AttributeType.SENSITIVE and not col.is_categorical:
                raise SchemaError(
                    f"sensitive attribute {name!r} must be categorical "
                    "(discretize numeric sensitive values first)"
                )
