"""Incremental partition statistics for the local-recoding algorithms.

The lattice algorithms score whole generalization nodes through
:class:`~repro.core.engine.GroupStats`; the local-recoding family (Mondrian,
top-down specialization, MDAV, k-member, anatomy, slicing) instead refines an
explicit row partition, and historically re-checked every candidate split by
building a fresh :class:`~repro.core.partition.EquivalenceClasses` and calling
``model.check(table, partition)`` — per-group Python loops, re-sorts, and
histogram rebuilds on every candidate cut of every node.

This module is the partition-based analog of ``GroupStats``:

* :class:`PartitionGroup` — one candidate equivalence class: its row indices
  plus lazily-cached per-attribute code slices and sensitive histograms. A
  child's histogram is *derived*, never recounted: when a group is split in
  two and the sibling's histogram is already known, the other side is the
  parent's bincount minus the sibling's (one vector subtraction); otherwise
  it is a single masked bincount over the group's cached code slice. The
  full table is scanned exactly once per attribute, at the root.
* :class:`PartitionStats` — duck-types the ``GroupStats`` surface the privacy
  models' stats fast path consumes (``sizes``, ``min_size``, ``n_groups``,
  ``histogram``, ``global_distribution``, ``partition``) so
  ``model.check_stats`` works unchanged on row partitions. It deliberately
  does **not** implement ``external_counts``: models that need an external
  population table (δ-presence) raise ``AttributeError`` and fall back to the
  legacy ``model.check`` path, counted as a raw rescan.
* :class:`PartitionEngine` — owns the table-wide caches (column codes, level
  encodings, global distributions), materializes groups/splits, and answers
  feasibility checks through the fast path. ``cache_info()`` exposes
  counters: ``groups_materialized``, ``histogram_splits`` (delta-derived
  histograms), ``histogram_scans`` (bincount-derived, including the root),
  ``checks_fast``/``checks_legacy``, and ``raw_rescans`` — which stays 0
  whenever every model opts into the stats fast path.

Group row order is preserved verbatim (children are carved out positionally,
not re-sorted): relaxed-mode Mondrian's child ordering feeds its grandchild
splits, so order is part of byte-for-byte output parity with the legacy path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .engine import supports_stats
from .partition import EquivalenceClasses, classes_from_groups
from .table import Table

__all__ = [
    "PartitionEngine",
    "PartitionGroup",
    "PartitionStats",
    "grouped_histograms",
]


def grouped_histograms(
    labels: np.ndarray, codes: np.ndarray, n_groups: int, n_cats: int
) -> np.ndarray:
    """(n_groups, n_cats) counts via one flattened bincount.

    Integer-exact equivalent of bincounting each group separately — the same
    trick ``GroupStats.histogram`` uses for lattice nodes.
    """
    flat = np.bincount(
        labels.astype(np.int64) * n_cats + codes.astype(np.int64),
        minlength=n_groups * n_cats,
    )
    return flat.reshape(n_groups, n_cats)


class PartitionGroup:
    """One candidate equivalence class tracked by a :class:`PartitionEngine`.

    ``rows`` is the group's row-index array in *algorithm order* (not
    sorted). Code slices and histograms are cached lazily; splitting carries
    them down positionally so no attribute is ever re-gathered from the full
    table.
    """

    __slots__ = ("rows", "_engine", "_parent", "_positions", "_sibling", "_codes", "_hists")

    def __init__(self, engine, rows, parent=None, positions=None):
        self.rows = rows
        self._engine = engine
        self._parent = parent
        self._positions = positions
        self._sibling = None
        self._codes: dict[str, np.ndarray] = {}
        self._hists: dict[str, np.ndarray] = {}

    @property
    def size(self) -> int:
        return int(self.rows.size)

    def codes(self, name: str) -> np.ndarray:
        """This group's code slice of attribute ``name`` (row order)."""
        slice_ = self._codes.get(name)
        if slice_ is None:
            if self._parent is None:
                slice_ = self._engine.column_codes(name)
            else:
                slice_ = self._parent.codes(name)[self._positions]
            self._codes[name] = slice_
        return slice_

    def histogram(self, name: str) -> np.ndarray:
        """Category counts of ``name`` over this group (int64, n_cats wide)."""
        hist = self._hists.get(name)
        if hist is None:
            parent, sibling = self._parent, self._sibling
            if (
                parent is not None
                and sibling is not None
                and name in parent._hists
                and name in sibling._hists
            ):
                hist = parent._hists[name] - sibling._hists[name]
                self._engine.counters["histogram_splits"] += 1
            else:
                hist = np.bincount(
                    self.codes(name), minlength=self._engine.column_cats(name)
                )
                self._engine.counters["histogram_scans"] += 1
            self._hists[name] = hist
        return hist


class PartitionStats:
    """GroupStats-shaped view over a list of :class:`PartitionGroup`.

    Feeds the privacy models' ``check_stats`` fast path. ``partition()``
    materializes the legacy :class:`EquivalenceClasses` (sorted groups) only
    when a model has no fast path.
    """

    __slots__ = ("_engine", "_groups", "sizes", "_hists", "_partition")

    def __init__(self, engine: "PartitionEngine", groups: Sequence[PartitionGroup]):
        self._engine = engine
        self._groups = list(groups)
        self.sizes = np.array([g.size for g in self._groups], dtype=np.int64)
        self._hists: dict[str, np.ndarray] = {}
        self._partition: EquivalenceClasses | None = None

    @property
    def n_groups(self) -> int:
        return int(self.sizes.size)

    def min_size(self) -> int:
        return int(self.sizes.min()) if self.sizes.size else 0

    def histogram(self, sensitive: str) -> np.ndarray:
        hist = self._hists.get(sensitive)
        if hist is None:
            if self._groups:
                hist = np.stack([g.histogram(sensitive) for g in self._groups])
            else:
                hist = np.zeros((0, self._engine.column_cats(sensitive)), dtype=np.int64)
            self._hists[sensitive] = hist
        return hist

    def global_distribution(self, sensitive: str) -> np.ndarray:
        return self._engine.global_distribution(sensitive)

    def partition(self) -> EquivalenceClasses:
        if self._partition is None:
            self._partition = classes_from_groups(
                (g.rows for g in self._groups), self._engine.n_rows
            )
        return self._partition

    # NOTE: deliberately no ``external_counts`` — see module docstring.


class PartitionEngine:
    """Table-wide caches plus group/split bookkeeping for one anonymize run."""

    def __init__(self, table: Table, hierarchies: Mapping | None = None):
        self.table = table
        self.hierarchies = dict(hierarchies or {})
        self.counters = {
            "groups_materialized": 0,
            "histogram_splits": 0,
            "histogram_scans": 0,
            "checks_fast": 0,
            "checks_legacy": 0,
            "raw_rescans": 0,
            "level_encodings": 0,
        }
        self._codes: dict[str, np.ndarray] = {}
        self._cats: dict[str, int] = {}
        self._globals: dict[str, np.ndarray] = {}
        self._levels: dict[tuple[str, int], tuple[np.ndarray, int]] = {}

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    def cache_info(self) -> dict:
        """Copy of the run's counters (JSON-safe)."""
        return dict(self.counters)

    # -- column caches ---------------------------------------------------

    def column_codes(self, name: str) -> np.ndarray:
        codes = self._codes.get(name)
        if codes is None:
            codes = self.table.codes(name)
            self._codes[name] = codes
            self._cats[name] = len(self.table.column(name).categories)
        return codes

    def column_cats(self, name: str) -> int:
        if name not in self._cats:
            self.column_codes(name)
        return self._cats[name]

    def global_distribution(self, name: str) -> np.ndarray:
        dist = self._globals.get(name)
        if dist is None:
            counts = np.bincount(
                self.column_codes(name), minlength=self.column_cats(name)
            ).astype(np.float64)
            dist = counts / counts.sum()
            self._globals[name] = dist
        return dist

    def level_codes(self, name: str, level: int) -> tuple[np.ndarray, int]:
        """(codes, n_values) of QI ``name`` generalized to ``level``.

        Computed through ``hierarchy.generalize_column`` — the same
        translation ``apply_node`` uses — and memoized per (name, level).
        Numeric identity levels (IntervalHierarchy level 0 returns the raw
        numeric column) are rank-encoded so they partition like any code
        column; the legacy table-based path cannot represent that case at
        all (``Table.codes`` rejects numeric columns).
        """
        key = (name, int(level))
        entry = self._levels.get(key)
        if entry is None:
            hierarchy = self.hierarchies[name]
            column = hierarchy.generalize_column(self.table.column(name), int(level))
            if column.is_categorical:
                codes = column.codes.astype(np.int64)
                n_values = len(column.categories)
            else:
                uniques, inverse = np.unique(column.values, return_inverse=True)
                codes = inverse.astype(np.int64)
                n_values = int(uniques.size)
            entry = (codes, n_values)
            self._levels[key] = entry
            self.counters["level_encodings"] += 1
        return entry

    # -- group construction ----------------------------------------------

    def root(self) -> PartitionGroup:
        """The whole table as one group (row order 0..n-1, like the legacy
        ``np.arange`` root)."""
        self.counters["groups_materialized"] += 1
        return PartitionGroup(self, np.arange(self.table.n_rows, dtype=np.int64))

    def split(self, group: PartitionGroup, left_positions, right_positions):
        """Two children carved out of ``group`` by positions into its rows.

        Positions may be integer arrays or boolean masks; the children keep
        the positional order, and are linked as siblings so either one's
        histogram can later be derived from the parent's by subtraction.
        """
        left = PartitionGroup(self, group.rows[left_positions], group, left_positions)
        right = PartitionGroup(self, group.rows[right_positions], group, right_positions)
        left._sibling = right
        right._sibling = left
        self.counters["groups_materialized"] += 2
        return left, right

    def split_by_codes(self, group: PartitionGroup, codes_slice: np.ndarray):
        """Multiway split of ``group`` by distinct values of ``codes_slice``.

        Children are ordered by ascending code value with ascending position
        inside each child. A group whose slice holds a single value is
        returned unchanged (cached histograms and all).
        """
        values, inverse = np.unique(codes_slice, return_inverse=True)
        if values.size <= 1:
            return [group]
        order = np.argsort(inverse, kind="stable")
        bounds = np.cumsum(np.bincount(inverse, minlength=values.size))
        children = []
        start = 0
        for end in bounds:
            positions = order[start : int(end)]
            children.append(PartitionGroup(self, group.rows[positions], group, positions))
            start = int(end)
        self.counters["groups_materialized"] += len(children)
        return children

    # -- feasibility -----------------------------------------------------

    def stats(self, groups: Sequence[PartitionGroup]) -> PartitionStats:
        return PartitionStats(self, groups)

    def check(self, groups_or_stats, models) -> bool:
        """Would these groups, as equivalence classes, satisfy the models?

        Uses each model's ``check_stats`` fast path when available; models
        without one (or whose fast path needs a capability PartitionStats
        lacks, like δ-presence's ``external_counts``) fall back to the
        legacy ``model.check(table, partition)`` and count as raw rescans.
        """
        if isinstance(groups_or_stats, PartitionStats):
            stats = groups_or_stats
        else:
            stats = PartitionStats(self, groups_or_stats)
        for model in models:
            if supports_stats(model):
                try:
                    ok = bool(model.check_stats(stats))
                except AttributeError:
                    ok = self._check_legacy(model, stats)
                else:
                    self.counters["checks_fast"] += 1
            else:
                ok = self._check_legacy(model, stats)
            if not ok:
                return False
        return True

    def _check_legacy(self, model, stats: PartitionStats) -> bool:
        self.counters["checks_legacy"] += 1
        self.counters["raw_rescans"] += 1
        return bool(model.check(self.table, stats.partition()))
