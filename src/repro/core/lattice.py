"""Full-domain generalization lattice.

A lattice node is a tuple of generalization levels, one per quasi-identifier.
The bottom node is all zeros (raw data); the top node is every hierarchy's
height (single equivalence class). Incognito, Datafly, and OLA-style searches
all walk this structure.

The lattice supports:

* node enumeration grouped by total height (BFS strata),
* direct successors/predecessors (one attribute raised/lowered one level),
* generality comparison (componentwise ≤),
* up-set computation (everything above a node) for predictive tagging.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Mapping, Sequence

from ..errors import HierarchyError
from .hierarchy import Hierarchy, IntervalHierarchy

__all__ = ["GeneralizationLattice"]

Node = tuple[int, ...]


class GeneralizationLattice:
    """The lattice of full-domain generalization level vectors."""

    def __init__(self, attributes: Sequence[str], heights: Sequence[int]):
        if len(attributes) != len(heights):
            raise HierarchyError("attributes and heights must be parallel")
        if not attributes:
            raise HierarchyError("lattice needs at least one attribute")
        if any(h < 0 for h in heights):
            raise HierarchyError("heights must be non-negative")
        self.attributes = list(attributes)
        self.heights = tuple(int(h) for h in heights)

    @staticmethod
    def from_hierarchies(
        hierarchies: Mapping[str, Hierarchy | IntervalHierarchy],
        attributes: Sequence[str] | None = None,
    ) -> "GeneralizationLattice":
        names = list(attributes) if attributes is not None else list(hierarchies)
        return GeneralizationLattice(names, [hierarchies[name].height for name in names])

    # -- basic structure -----------------------------------------------------

    @property
    def bottom(self) -> Node:
        return (0,) * len(self.heights)

    @property
    def top(self) -> Node:
        return tuple(self.heights)

    @property
    def size(self) -> int:
        """Total number of nodes: product of (height+1)."""
        n = 1
        for h in self.heights:
            n *= h + 1
        return n

    def contains(self, node: Node) -> bool:
        return len(node) == len(self.heights) and all(
            0 <= lv <= h for lv, h in zip(node, self.heights)
        )

    def _check(self, node: Node) -> None:
        if not self.contains(node):
            raise HierarchyError(f"node {node} outside lattice with heights {self.heights}")

    def total_height(self, node: Node) -> int:
        self._check(node)
        return sum(node)

    # -- traversal -----------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """All nodes, in lexicographic order."""
        for node in product(*(range(h + 1) for h in self.heights)):
            yield node

    def levels(self) -> Iterator[list[Node]]:
        """Nodes grouped by total height, bottom stratum first (BFS order)."""
        strata: list[list[Node]] = [[] for _ in range(sum(self.heights) + 1)]
        for node in self.nodes():
            strata[sum(node)].append(node)
        yield from strata

    def successors(self, node: Node) -> list[Node]:
        """Direct generalizations: raise exactly one attribute by one level."""
        self._check(node)
        result = []
        for i, (lv, h) in enumerate(zip(node, self.heights)):
            if lv < h:
                result.append(node[:i] + (lv + 1,) + node[i + 1 :])
        return result

    def predecessors(self, node: Node) -> list[Node]:
        """Direct specializations: lower exactly one attribute by one level."""
        self._check(node)
        result = []
        for i, lv in enumerate(node):
            if lv > 0:
                result.append(node[:i] + (lv - 1,) + node[i + 1 :])
        return result

    @staticmethod
    def dominates(general: Node, specific: Node) -> bool:
        """True if ``general`` is at least as generalized componentwise."""
        return all(g >= s for g, s in zip(general, specific))

    def up_set(self, node: Node) -> set[Node]:
        """Every node ≥ the given node (inclusive)."""
        self._check(node)
        ranges = [range(lv, h + 1) for lv, h in zip(node, self.heights)]
        return set(product(*ranges))

    def project(self, attributes: Sequence[str]) -> "GeneralizationLattice":
        """Sub-lattice over a subset of the attributes (Incognito subsets)."""
        index = {name: i for i, name in enumerate(self.attributes)}
        missing = [a for a in attributes if a not in index]
        if missing:
            raise HierarchyError(f"attributes {missing} not in lattice")
        return GeneralizationLattice(
            list(attributes), [self.heights[index[a]] for a in attributes]
        )

    def embed(self, sub_node: Node, sub_attributes: Sequence[str], base: Node | None = None) -> Node:
        """Lift a sub-lattice node into this lattice (others from ``base``/0)."""
        levels = list(base) if base is not None else [0] * len(self.attributes)
        index = {name: i for i, name in enumerate(self.attributes)}
        for name, lv in zip(sub_attributes, sub_node):
            levels[index[name]] = lv
        node = tuple(levels)
        self._check(node)
        return node

    def __repr__(self) -> str:
        return f"GeneralizationLattice({dict(zip(self.attributes, self.heights))}, size={self.size})"
