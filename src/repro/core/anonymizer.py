"""The :class:`Anonymizer` facade — the object-style entry point.

Wires together a table, a schema, hierarchies, privacy models, and an
algorithm, and produces a :class:`Release` plus convenience hooks for risk
and utility reporting. :meth:`Anonymizer.apply` is a thin shim over the
declarative executor in :mod:`repro.api` — jobs that should be queued,
serialized, or batched belong there (``AnonymizationConfig`` + ``run`` /
``run_batch``); this facade remains for interactive, live-object use.

Example
-------
>>> from repro import Anonymizer, KAnonymity
>>> from repro.data import load_adult, adult_schema, adult_hierarchies
>>> table = load_adult(n_rows=2000, seed=7)
>>> anon = Anonymizer(table, adult_schema(), adult_hierarchies())
>>> release = anon.apply(KAnonymity(5))
>>> release.summary()["min_class_size"] >= 5
True
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import SchemaError
from .generalize import HierarchyLike
from .release import Release
from .schema import Schema
from .table import Table

__all__ = ["Anonymizer"]


class Anonymizer:
    """Facade binding a dataset to hierarchies and running algorithms."""

    def __init__(
        self,
        table: Table,
        schema: Schema,
        hierarchies: Mapping[str, HierarchyLike] | None = None,
    ):
        schema.validate(table)
        self.table = table
        self.schema = schema
        self.hierarchies = dict(hierarchies or {})
        missing = [
            name
            for name in schema.categorical_quasi_identifiers
            if name not in self.hierarchies
        ]
        if missing:
            raise SchemaError(
                f"categorical quasi-identifiers {missing} have no hierarchy; "
                "supply one or use Hierarchy.flat(...)"
            )

    def apply(self, *models, algorithm=None) -> Release:
        """Anonymize with the given privacy models.

        ``algorithm`` defaults to Mondrian (strict), the best
        utility/robustness tradeoff among the shipped algorithms.

        A thin shim over :func:`repro.api.execute` — the same executor that
        serves declarative :class:`~repro.api.AnonymizationConfig` jobs and
        the CLI, so all three produce identical releases. Use
        :func:`repro.api.run` directly when you need timings, report
        metrics, or a JSON-safe result object.
        """
        from ..api.executor import execute

        return execute(
            self.table, self.schema, self.hierarchies, list(models), algorithm
        ).release

    def risk_report(self, release: Release) -> dict:
        """Re-identification risk summary of a release (see attacks module)."""
        from ..attacks.linkage import linkage_risks

        return linkage_risks(release)

    def utility_report(self, release: Release) -> dict:
        """Loss-metric summary of a release against the original table."""
        from ..metrics.discernibility import c_avg, discernibility
        from ..metrics.loss import gcp

        partition = release.partition()
        return {
            "gcp": gcp(self.table, release, self.hierarchies),
            "discernibility": discernibility(partition, release.original_n_rows or release.n_rows),
            "c_avg": c_avg(partition, k=max(release.equivalence_class_sizes().min(), 1)),
        }
