"""Cooperative deadlines for job and batch execution.

The executor cannot preempt a running evaluation — everything is in-process
numpy work — so timeouts are *cooperative*: the executor arms a
:class:`Deadline` around each job via :func:`deadline_scope`, and the engine
calls :func:`check_deadline` between node evaluations
(:meth:`LatticeEvaluator.stats`). A job that overruns its budget is
interrupted at the next checkpoint with :class:`~repro.errors.JobTimeoutError`
or :class:`~repro.errors.BatchDeadlineError` depending on which budget
expired.

Two clocks are used deliberately:

- per-job timeouts run on ``time.monotonic()`` (immune to wall-clock steps,
  never crosses a process boundary — each attempt re-arms it locally);
- batch deadlines are an absolute ``time.time()`` timestamp so the same
  instant can be shipped to process-backend workers and enforced there.

The scope is a :class:`contextvars.ContextVar`, so concurrent jobs on the
thread backend each see only their own deadline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from ..errors import BatchDeadlineError, ExecutionError, JobTimeoutError

__all__ = [
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "tightest",
]

#: ``kind`` → exception raised when that deadline expires.
_KIND_ERRORS: dict[str, type[ExecutionError]] = {
    "job-timeout": JobTimeoutError,
    "batch-deadline": BatchDeadlineError,
}


class Deadline:
    """One cooperative time budget: a relative monotonic one or an absolute
    wall-clock one.

    Exactly one of ``seconds`` (relative, monotonic clock) or ``walltime``
    (absolute ``time.time()`` timestamp) must be given. ``kind`` selects the
    exception raised on expiry and is part of the failure taxonomy.
    """

    __slots__ = ("kind", "budget", "_monotonic_expiry", "_wall_expiry")

    def __init__(
        self,
        seconds: Optional[float] = None,
        *,
        walltime: Optional[float] = None,
        kind: str = "job-timeout",
    ) -> None:
        if kind not in _KIND_ERRORS:
            raise ValueError(
                f"deadline kind must be one of {sorted(_KIND_ERRORS)}; got {kind!r}"
            )
        if (seconds is None) == (walltime is None):
            raise ValueError("exactly one of 'seconds' or 'walltime' is required")
        self.kind = kind
        if seconds is not None:
            self.budget = float(seconds)
            self._monotonic_expiry: Optional[float] = time.monotonic() + self.budget
            self._wall_expiry: Optional[float] = None
        else:
            self.budget = max(0.0, float(walltime) - time.time())
            self._monotonic_expiry = None
            self._wall_expiry = float(walltime)

    @property
    def walltime(self) -> Optional[float]:
        """The absolute expiry timestamp, or ``None`` for monotonic deadlines."""
        return self._wall_expiry

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        if self._monotonic_expiry is not None:
            return self._monotonic_expiry - time.monotonic()
        return self._wall_expiry - time.time()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise the deadline's exception if the budget is spent."""
        if self.expired():
            raise _KIND_ERRORS[self.kind](
                f"cooperative {self.kind.replace('-', ' ')} of "
                f"{self.budget:.6g}s exceeded"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(kind={self.kind!r}, budget={self.budget:.6g}, "
            f"remaining={self.remaining():.6g})"
        )


def tightest(*deadlines: Optional[Deadline]) -> Optional[Deadline]:
    """The deadline with the least time remaining, ignoring ``None``s."""
    live = [d for d in deadlines if d is not None]
    if not live:
        return None
    return min(live, key=lambda d: d.remaining())


_ACTIVE: ContextVar[Optional[Deadline]] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Optional[Deadline]:
    """The deadline armed for the calling context, if any."""
    return _ACTIVE.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Arm ``deadline`` for the duration of the ``with`` block.

    Passing ``None`` explicitly clears any inherited deadline, so a nested
    unbudgeted task cannot be interrupted by an outer scope it knows nothing
    about.
    """
    token = _ACTIVE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.reset(token)


def check_deadline() -> None:
    """Checkpoint: raise if the context's armed deadline has expired.

    Called between node evaluations in the engine hot path; one context-var
    read when no deadline is armed.
    """
    deadline = _ACTIVE.get()
    if deadline is not None:
        deadline.check()
