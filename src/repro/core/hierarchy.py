"""Generalization hierarchies.

A generalization hierarchy defines, for each level ``0..height``, a mapping
from ground values to progressively coarser values. Level 0 is the identity;
the top level maps every value to a single root (``"*"`` by convention).

Two concrete kinds:

* :class:`Hierarchy` — categorical, built from a rooted tree or from explicit
  per-level mapping rows (ARX-style).
* :class:`IntervalHierarchy` — numeric, built by recursively merging base
  intervals; generalizing a numeric column yields interval labels, turning
  the column categorical.

Both expose the same level-mapping API, which is what the lattice,
algorithms, and loss metrics consume:

``map_codes(codes, level) -> codes'`` plus ``labels(level)`` (the category
list at that level) and ``leaf_count(level)`` (how many ground values each
level-``level`` value covers — the ingredient of NCP/ILoss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import HierarchyError
from .table import Column

__all__ = ["Hierarchy", "IntervalHierarchy", "suppression_hierarchy"]


class Hierarchy:
    """Categorical generalization hierarchy over a fixed ground domain.

    Internally stored as per-level arrays: ``level_maps[lv][ground_code]``
    is the code (into ``level_labels[lv]``) of the generalized value of each
    ground value at level ``lv``.
    """

    def __init__(self, ground: Sequence, level_maps: list[np.ndarray], level_labels: list[tuple]):
        if not level_maps or len(level_maps) != len(level_labels):
            raise HierarchyError("level maps and labels must be parallel and non-empty")
        self.ground = tuple(ground)
        self._level_maps = [np.asarray(m, dtype=np.int32) for m in level_maps]
        self._level_labels = [tuple(labels) for labels in level_labels]
        for lv, (mapping, labels) in enumerate(zip(self._level_maps, self._level_labels)):
            if mapping.shape != (len(self.ground),):
                raise HierarchyError(f"level {lv} map length != ground domain size")
            if mapping.size and (mapping.min() < 0 or mapping.max() >= len(labels)):
                raise HierarchyError(f"level {lv} map points outside its label list")
        if len(self._level_labels[-1]) != 1:
            raise HierarchyError("top level must have exactly one value (the root)")
        if list(self._level_labels[0]) != list(self.ground):
            raise HierarchyError("level 0 must be the identity over the ground domain")
        self._check_monotone()

    def _check_monotone(self) -> None:
        """Each level must refine the next: equal codes stay equal upward."""
        for lv in range(len(self._level_maps) - 1):
            lower, upper = self._level_maps[lv], self._level_maps[lv + 1]
            seen: dict[int, int] = {}
            for ground_code in range(len(self.ground)):
                lo, hi = int(lower[ground_code]), int(upper[ground_code])
                if lo in seen and seen[lo] != hi:
                    raise HierarchyError(
                        f"level {lv} value {self._level_labels[lv][lo]!r} maps to two "
                        f"different level-{lv + 1} values"
                    )
                seen[lo] = hi

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_tree(tree: Mapping, root="*") -> "Hierarchy":
        """Build from a nested dict tree.

        ``tree`` maps each internal node label to either a list of leaf
        values or a nested dict. The hierarchy height equals the tree depth;
        ragged branches are padded by repeating the leaf's nearest ancestor.

        Example::

            Hierarchy.from_tree({
                "Europe": {"West": ["France", "Spain"], "East": ["Poland"]},
                "Asia": ["Japan", "China"],
            }, root="Any")
        """
        # paths[leaf] = [leaf, parent, ..., root-child]
        paths: dict[object, list] = {}

        def walk(node, ancestors: list) -> None:
            if isinstance(node, Mapping):
                for label, child in node.items():
                    walk(child, [label] + ancestors)
            else:
                for leaf in node:
                    if leaf in paths:
                        raise HierarchyError(f"leaf {leaf!r} appears twice in tree")
                    paths[leaf] = [leaf] + ancestors

        walk(tree, [])
        if not paths:
            raise HierarchyError("tree has no leaves")
        depth = max(len(p) for p in paths.values())
        # Pad ragged paths by repeating the leaf's highest named ancestor.
        for leaf, path in paths.items():
            while len(path) < depth:
                path.insert(1, path[0] if len(path) == 1 else path[1])
        ground = sorted(paths, key=str)
        levels: list[list] = [[paths[g][lv] for g in ground] for lv in range(depth)]
        levels.append([root] * len(ground))
        return Hierarchy._from_value_levels(ground, levels)

    @staticmethod
    def from_levels(rows: Mapping[object, Sequence]) -> "Hierarchy":
        """Build from ARX-style rows: ``{ground: [lv1, lv2, ..., root]}``.

        All rows must have the same length; a final all-equal root level is
        appended automatically if the last column is not constant.
        """
        if not rows:
            raise HierarchyError("no rows given")
        ground = sorted(rows, key=str)
        widths = {len(rows[g]) for g in ground}
        if len(widths) != 1:
            raise HierarchyError(f"rows have mismatched lengths: {sorted(widths)}")
        width = widths.pop()
        levels: list[list] = [list(ground)]
        for lv in range(width):
            levels.append([rows[g][lv] for g in ground])
        if len(set(levels[-1])) != 1:
            levels.append(["*"] * len(ground))
        return Hierarchy._from_value_levels(ground, levels)

    @staticmethod
    def flat(values: Sequence, root="*") -> "Hierarchy":
        """Two-level hierarchy: identity, then everything to ``root``."""
        ground = sorted(set(values), key=str)
        return Hierarchy._from_value_levels(ground, [list(ground), [root] * len(ground)])

    @staticmethod
    def _from_value_levels(ground: Sequence, levels: list[list]) -> "Hierarchy":
        level_maps: list[np.ndarray] = []
        level_labels: list[tuple] = []
        for level_values in levels:
            labels: list = []
            index: dict = {}
            mapping = np.empty(len(ground), dtype=np.int32)
            for i, value in enumerate(level_values):
                if value not in index:
                    index[value] = len(labels)
                    labels.append(value)
                mapping[i] = index[value]
            level_maps.append(mapping)
            level_labels.append(tuple(labels))
        return Hierarchy(ground, level_maps, level_labels)

    # -- level-mapping API ---------------------------------------------------

    @property
    def height(self) -> int:
        """Maximum generalization level (top of the hierarchy)."""
        return len(self._level_maps) - 1

    def labels(self, level: int) -> tuple:
        self._check_level(level)
        return self._level_labels[level]

    def level_map(self, level: int) -> np.ndarray:
        """int32 lookup table: ``level_map(lv)[ground_code] -> level-lv code``.

        Generalizing a whole column is then a single gather,
        ``level_map(lv)[codes]``, with no Table rebuild — this is the LUT the
        lattice-evaluation engine precomputes per QI. Treat the returned
        array as read-only; it is the hierarchy's internal storage.
        """
        self._check_level(level)
        return self._level_maps[level]

    def map_codes(self, codes: np.ndarray, level: int) -> np.ndarray:
        """Map ground codes to level-``level`` codes (vectorized)."""
        self._check_level(level)
        return self._level_maps[level][codes]

    def ground_codes(self, column: Column) -> np.ndarray:
        """Codes of a categorical column translated into ground-domain order.

        The column's category order need not match the hierarchy's ground
        ordering; codes are remapped through a value index. The single
        shared translation used by both :meth:`generalize_column` and the
        lattice-evaluation engine — do not fork it.
        """
        if not column.is_categorical:
            raise HierarchyError(f"column {column.name!r} is numeric; use IntervalHierarchy")
        assert column.codes is not None
        if tuple(column.categories) == self.ground:
            return column.codes
        ground_index = {value: code for code, value in enumerate(self.ground)}
        missing = [v for v in column.categories if v not in ground_index]
        if missing:
            raise HierarchyError(
                f"column {column.name!r} values {missing} not in hierarchy ground domain"
            )
        translate = np.array(
            [ground_index[v] for v in column.categories], dtype=np.int32
        )
        return translate[column.codes]

    def generalize_column(self, column: Column, level: int) -> Column:
        """Generalize a categorical column whose categories ⊆ ground."""
        return Column.from_codes(
            column.name,
            self.map_codes(self.ground_codes(column), level),
            self.labels(level),
        )

    def leaf_count(self, level: int) -> np.ndarray:
        """For each level-``level`` value, the number of ground values it covers."""
        self._check_level(level)
        return np.bincount(self._level_maps[level], minlength=len(self._level_labels[level]))

    def fanout(self, level: int) -> np.ndarray:
        """Alias kept for metric code readability."""
        return self.leaf_count(level)

    def level_of_distinct(self, level: int) -> int:
        """Number of distinct values at a level (domain size after mapping)."""
        self._check_level(level)
        return len(self._level_labels[level])

    def cover_codes(self, level: int, code: int) -> np.ndarray:
        """Ground codes covered by a given level-``level`` value code."""
        self._check_level(level)
        return np.flatnonzero(self._level_maps[level] == code)

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.height:
            raise HierarchyError(f"level {level} outside [0, {self.height}]")

    def __repr__(self) -> str:
        return f"Hierarchy(|ground|={len(self.ground)}, height={self.height})"


class IntervalHierarchy:
    """Numeric generalization hierarchy producing interval labels.

    Built from cut points: level 1 buckets the real line into the base
    intervals between consecutive cuts; each subsequent level merges
    ``merge_factor`` adjacent intervals. Level 0 is the raw value (identity);
    the top level is the single interval covering everything.

    A generalized numeric column becomes categorical with labels like
    ``"[30-40)"``.
    """

    def __init__(self, cuts: Sequence[float], merge_factor: int = 2, precision: int = 6):
        cuts = sorted(float(c) for c in cuts)
        if len(cuts) < 2:
            raise HierarchyError("need at least two cut points")
        if len(set(cuts)) != len(cuts):
            raise HierarchyError("cut points must be distinct")
        if merge_factor < 2:
            raise HierarchyError("merge_factor must be >= 2")
        self.cuts = cuts
        self.merge_factor = merge_factor
        self.precision = precision
        # levels[k] = list of (lo, hi) interval tuples for generalization level k+1
        self._interval_levels: list[list[tuple[float, float]]] = []
        base = [(cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1)]
        self._interval_levels.append(base)
        current = base
        while len(current) > 1:
            merged = [
                (chunk[0][0], chunk[-1][1])
                for chunk in _chunks(current, merge_factor)
            ]
            self._interval_levels.append(merged)
            current = merged

    @staticmethod
    def uniform(lo: float, hi: float, n_bins: int, merge_factor: int = 2) -> "IntervalHierarchy":
        """Evenly spaced cut points over ``[lo, hi]``."""
        if n_bins < 1:
            raise HierarchyError("need at least one bin")
        cuts = np.linspace(lo, hi, n_bins + 1)
        return IntervalHierarchy(cuts.tolist(), merge_factor=merge_factor)

    @property
    def height(self) -> int:
        return len(self._interval_levels)  # +1 identity level at 0

    @property
    def span(self) -> float:
        return self.cuts[-1] - self.cuts[0]

    def intervals(self, level: int) -> list[tuple[float, float]]:
        if not 1 <= level <= self.height:
            raise HierarchyError(f"level {level} outside [1, {self.height}]")
        return list(self._interval_levels[level - 1])

    def label(self, interval: tuple[float, float]) -> str:
        lo, hi = interval
        fmt = f"%.{self.precision}g"
        return f"[{fmt % lo}-{fmt % hi})"

    def bin_values(self, values: np.ndarray, level: int) -> np.ndarray:
        """Interval index (at ``level``) of each value; clips out-of-range."""
        intervals = self.intervals(level)
        edges = np.array([iv[0] for iv in intervals][1:])
        return np.clip(np.searchsorted(edges, values, side="right"), 0, len(intervals) - 1)

    def generalize_column(self, column: Column, level: int) -> Column:
        """Generalize a numeric column to interval labels at ``level``.

        Level 0 returns the column unchanged (still numeric).
        """
        if column.is_categorical:
            raise HierarchyError(f"column {column.name!r} is categorical; use Hierarchy")
        if level == 0:
            return column
        assert column.values is not None
        intervals = self.intervals(level)
        bins = self.bin_values(column.values, level)
        labels = [self.label(iv) for iv in intervals]
        return Column.from_codes(column.name, bins.astype(np.int32), labels)

    def width_fraction(self, level: int) -> np.ndarray:
        """Per-interval width divided by total span (NCP ingredient)."""
        if level == 0:
            return np.zeros(1)
        intervals = self.intervals(level)
        return np.array([(hi - lo) / self.span for lo, hi in intervals])

    def __repr__(self) -> str:
        return (
            f"IntervalHierarchy([{self.cuts[0]}, {self.cuts[-1]}], "
            f"bins={len(self._interval_levels[0])}, height={self.height})"
        )


def suppression_hierarchy(values: Sequence) -> Hierarchy:
    """The trivial hierarchy used when no domain knowledge exists."""
    return Hierarchy.flat(values)


def _chunks(seq: list, size: int) -> list[list]:
    return [seq[i : i + size] for i in range(0, len(seq), size)]
