"""Shared-memory publication of table columns and hierarchy LUTs.

The process execution tier's data plane. A batch parent publishes the
(dictionary-encoded) column arrays of one :class:`~repro.core.table.Table`
plus the hierarchy lookup tables of every planned environment **once** into
a single ``multiprocessing.shared_memory`` block; worker processes attach
zero-copy ``np.ndarray`` views and rebuild live ``Table`` / ``Hierarchy``
objects around them — no per-worker pickling of million-row arrays, no
fork-dependent copy-on-write assumptions (the layout works under ``spawn``
too).

Ownership & unlink rules
------------------------
* The **creating** process owns the block. :class:`ShmArena` (and the
  higher-level :class:`SharedDataset`) must be unlinked by its creator —
  the batch executor does so in a ``try``/``finally`` around the worker
  pool, which also covers worker crashes: a broken pool raises in the
  parent and the ``finally`` still unlinks. A ``weakref.finalize``
  backstop unlinks at garbage collection / interpreter exit if the
  explicit path was somehow skipped, so an abandoned arena never outlives
  the parent.
* **Attaching** processes never unlink. :func:`ShmArena.attach` opts out
  of ``resource_tracker`` tracking where the interpreter allows
  (``track=False``, Python >= 3.13); on older interpreters the attached
  registration lands in the tracker the workers share with the owner,
  where it is idempotent — only the owner's lifetime governs either way.
* Views are published read-only (``writeable=False``): workers treat the
  arena as immutable input, matching the library's tables-are-immutable
  convention, and a stray in-place op fails loudly instead of racing.

Layout
------
One block, many named arrays: each array is copied in at a 64-byte aligned
offset and described by ``(dtype, shape, offset)`` in the arena's
*descriptor* — a small picklable dict that travels to workers through the
pool initializer. :class:`SharedDataset` layers the domain schema on top:
``col:<name>`` entries for table columns (codes for categorical, values
for numeric; category lists ride in the descriptor) and
``hier:<env>:<qi>:<level>`` entries for each environment's
:class:`~repro.core.hierarchy.Hierarchy` level maps. Non-LUT hierarchies
(``IntervalHierarchy`` — a handful of cut points) are carried by value in
the descriptor instead.
"""

from __future__ import annotations

import secrets
import signal
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any, Mapping

import numpy as np

from . import faults
from .hierarchy import Hierarchy
from .table import Column, Table

__all__ = ["ShmArena", "SharedDataset", "attach_dataset"]

#: Per-array alignment inside the block (cache-line sized).
_ALIGN = 64


def _defer_signals():
    """Block SIGINT/SIGTERM delivery on the main thread; return a restorer.

    ``SharedMemory(create=True)`` creates the kernel object *inside* the C
    call: a signal converted to ``KeyboardInterrupt`` between that point
    and the ``ShmArena`` constructor arming its finalizer would orphan a
    segment no Python object references. Masking is the only closure of
    that window — the pending signal is delivered (and the converted
    exception raised) right after the mask is restored, where an owner
    with a cleanup backstop already exists. No-op off the main thread
    (where the interpreter never raises converted signals anyway) and on
    platforms without ``pthread_sigmask``.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    try:
        old = signal.pthread_sigmask(
            signal.SIG_BLOCK, {signal.SIGINT, signal.SIGTERM}
        )
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        return lambda: None
    return lambda: signal.pthread_sigmask(signal.SIG_SETMASK, old)


def _prewarm_resource_tracker() -> None:
    """Spawn multiprocessing's resource tracker before any signal mask.

    CPython's ``ResourceTracker.ensure_running`` unconditionally
    *unblocks* SIGINT/SIGTERM after its first spawn (it cannot know the
    caller deliberately masked them), and the spawn happens lazily inside
    the first ``SharedMemory(create=True)`` — i.e. exactly in the middle
    of the window :func:`_defer_signals` closes. Warming the tracker
    first makes the in-constructor ``ensure_running`` a no-op that leaves
    the caller's mask alone.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


def _create_block(size: int) -> shared_memory.SharedMemory:
    """``SharedMemory(create=True)`` that cannot orphan a kernel segment.

    The stdlib constructor can raise *after* ``shm_open`` succeeded
    (tracker registration runs last, and a converted signal can fire
    inside it); with a stdlib-generated anonymous name the caller then
    has nothing to unlink by. Naming the segment ourselves keeps a
    handle for cleanup on any failure. The ``psm_`` prefix matches the
    stdlib's so ``/dev/shm`` hygiene checks need only one pattern.
    """
    while True:
        name = f"psm_repro_{secrets.token_hex(8)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - 64-bit collision
            continue
        except BaseException:
            try:
                stale = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):  # died before shm_open
                pass
            else:
                _unlink_quietly(stale)
            raise


def _unlink_quietly(block: shared_memory.SharedMemory) -> None:
    """Close + unlink, tolerating an already-unlinked block (idempotent)."""
    try:
        block.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    try:
        block.unlink()
    except FileNotFoundError:
        pass


class ShmArena:
    """Many named numpy arrays packed into one shared-memory block.

    Create with :meth:`publish` in the owning process, ship
    :meth:`descriptor` to workers, attach with :meth:`attach`. The arena
    is also a context manager that unlinks on exit::

        with ShmArena.publish({"codes": np.arange(4)}) as arena:
            reader = ShmArena.attach(arena.descriptor())
            view = reader.get("codes")            # zero-copy, read-only
    """

    def __init__(
        self,
        block: shared_memory.SharedMemory,
        layout: dict[str, tuple[str, tuple[int, ...], int]],
        owner: bool,
    ):
        self._block = block
        self._layout = layout
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        if owner:
            # Backstop only: the executor unlinks explicitly in a finally.
            self._finalizer = weakref.finalize(self, _unlink_quietly, block)
        else:
            self._finalizer = None

    # -- owner side ----------------------------------------------------------

    @staticmethod
    def publish(arrays: Mapping[str, np.ndarray]) -> "ShmArena":
        """Copy every array into a fresh shared block (owned by this process)."""
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = -(-offset // _ALIGN) * _ALIGN  # round up to alignment
            layout[key] = (array.dtype.str, array.shape, offset)
            offset += array.nbytes
        _prewarm_resource_tracker()
        restore_mask = _defer_signals()
        try:
            block = _create_block(max(offset, 1))
            try:
                for key, array in arrays.items():
                    array = np.ascontiguousarray(array)
                    dtype, shape, off = layout[key]
                    dst = np.ndarray(
                        shape, dtype=np.dtype(dtype), buffer=block.buf, offset=off
                    )
                    np.copyto(dst, array)
                    del dst  # views must not outlive the copy: close() refuses
            except BaseException:
                # Interrupted mid-copy (a fault injection, OOM, ...): no
                # ShmArena owns the block yet, so its finalizer backstop
                # cannot fire — unlink here or the segment outlives us.
                _unlink_quietly(block)
                raise
            return ShmArena(block, layout, owner=True)
        finally:
            # A masked signal fires here at the earliest — after the owner
            # (and its unlink backstop) exists.
            restore_mask()

    def descriptor(self) -> dict[str, Any]:
        """Picklable attachment recipe: block name + per-array layout."""
        return {"name": self._block.name, "layout": dict(self._layout)}

    def unlink(self) -> None:
        """Release the block (owner only; attach fails afterwards)."""
        self._views.clear()
        if self._finalizer is not None:
            self._finalizer.detach()
        _unlink_quietly(self._block)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink() if self._owner else self.close()

    # -- worker side ---------------------------------------------------------

    @staticmethod
    def attach(descriptor: Mapping[str, Any]) -> "ShmArena":
        """Attach to a published arena without taking ownership of it.

        An attached arena never unlinks the block. ``track=False`` (Python
        >= 3.13) keeps the attach out of the ``resource_tracker`` entirely.
        On older interpreters the constructor registers attached segments
        too, but pool workers share the owner's tracker process (its fd is
        passed down under both fork and spawn), so the extra registration
        is an idempotent set-add there and the owner's single ``unlink``
        still retires it exactly once. Explicitly ``unregister``-ing here
        would instead *cancel* the owner's registration and break the
        crash-cleanup backstop.
        """
        name = descriptor["name"]
        if faults.any_armed():
            faults.fire("shm-attach", name=name)
        try:
            block = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:  # Python < 3.13: no track flag; see docstring
            block = shared_memory.SharedMemory(name=name)
        return ShmArena(block, dict(descriptor["layout"]), owner=False)

    def get(self, key: str) -> np.ndarray:
        """Zero-copy read-only view of one published array."""
        view = self._views.get(key)
        if view is None:
            dtype, shape, offset = self._layout[key]
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._block.buf, offset=offset
            )
            view.flags.writeable = False
            self._views[key] = view
        return view

    def keys(self):
        return self._layout.keys()

    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        self._views.clear()
        try:
            self._block.close()
        except BufferError:  # pragma: no cover - caller still holds views
            pass

    def __repr__(self) -> str:
        return (
            f"ShmArena({self._block.name!r}, {len(self._layout)} arrays, "
            f"{'owner' if self._owner else 'attached'})"
        )


class SharedDataset:
    """One publication of a table + per-environment hierarchies.

    The batch executor's unit of sharing: every column of the input table
    (codes / values) and every planned environment's ``Hierarchy`` level
    maps go into one :class:`ShmArena`; categories, interval hierarchies,
    and level labels — small metadata — ride in the descriptor. Workers
    call :func:`attach_dataset` and get back a live :class:`Table` whose
    arrays are views into the arena, plus per-environment hierarchy dicts.
    """

    def __init__(
        self, table: Table, env_hierarchies: Mapping[Any, Mapping[str, Any]] | None = None
    ):
        arrays: dict[str, np.ndarray] = {}
        columns: list[tuple[str, str, tuple | None]] = []
        for column in table:
            key = f"col:{column.name}"
            if column.is_categorical:
                assert column.codes is not None
                arrays[key] = column.codes
                columns.append((column.name, "categorical", column.categories))
            else:
                assert column.values is not None
                arrays[key] = column.values
                columns.append((column.name, "numeric", None))
        envs: dict[Any, dict[str, tuple]] = {}
        for env_id, hierarchies in (env_hierarchies or {}).items():
            per_env: dict[str, tuple] = {}
            for qi, hierarchy in hierarchies.items():
                if isinstance(hierarchy, Hierarchy):
                    keys = []
                    labels = []
                    for level in range(hierarchy.height + 1):
                        key = f"hier:{env_id}:{qi}:{level}"
                        arrays[key] = hierarchy.level_map(level)
                        keys.append(key)
                        labels.append(hierarchy.labels(level))
                    per_env[qi] = ("hierarchy", hierarchy.ground, labels, keys)
                else:
                    # IntervalHierarchy and friends: a few cut points, no
                    # O(domain) LUTs — carried by value, not by reference.
                    per_env[qi] = ("object", hierarchy)
            envs[env_id] = per_env
        self._arena = ShmArena.publish(arrays)
        self._columns = columns
        self._envs = envs

    def descriptor(self) -> dict[str, Any]:
        """Picklable recipe for :func:`attach_dataset` in a worker."""
        return {
            "arena": self._arena.descriptor(),
            "columns": self._columns,
            "envs": self._envs,
        }

    def unlink(self) -> None:
        """Release the shared block. Owner-side; idempotent."""
        self._arena.unlink()

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


class AttachedDataset:
    """Worker-side view of a :class:`SharedDataset` (see :func:`attach_dataset`)."""

    def __init__(self, descriptor: Mapping[str, Any]):
        self._arena = ShmArena.attach(descriptor["arena"])
        columns = []
        for name, kind, categories in descriptor["columns"]:
            view = self._arena.get(f"col:{name}")
            if kind == "categorical":
                columns.append(Column(name=name, codes=view, categories=tuple(categories)))
            else:
                columns.append(Column(name=name, values=view))
        self.table = Table(columns)
        self._envs = descriptor["envs"]
        self._hierarchies: dict[Any, dict[str, Any]] = {}

    def hierarchies(self, env_id: Any) -> dict[str, Any]:
        """The environment's hierarchy dict, LUT arrays viewing the arena."""
        cached = self._hierarchies.get(env_id)
        if cached is None:
            cached = {}
            for qi, meta in self._envs[env_id].items():
                if meta[0] == "hierarchy":
                    _, ground, labels, keys = meta
                    cached[qi] = _rebuild_hierarchy(
                        ground, labels, [self._arena.get(key) for key in keys]
                    )
                else:
                    cached[qi] = meta[1]
            self._hierarchies[env_id] = cached
        return cached

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self._hierarchies.clear()
        self._arena.close()


def attach_dataset(descriptor: Mapping[str, Any]) -> AttachedDataset:
    """Attach to a :class:`SharedDataset` published by the parent process."""
    return AttachedDataset(descriptor)


def _rebuild_hierarchy(ground, level_labels, level_maps) -> Hierarchy:
    """Hierarchy over shared LUT views, skipping construction validation.

    The arrays are byte-identical to the ones the owner validated at build
    time, so re-running the O(|ground| x height) refinement check in every
    worker would be pure startup cost.
    """
    hierarchy = Hierarchy.__new__(Hierarchy)
    hierarchy.ground = tuple(ground)
    hierarchy._level_maps = list(level_maps)
    hierarchy._level_labels = [tuple(labels) for labels in level_labels]
    return hierarchy
