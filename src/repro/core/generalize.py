"""Applying generalizations to tables.

Two styles, matching the survey's operation taxonomy:

* **full-domain** (:func:`apply_node`) — a lattice node assigns one level per
  QI; every value of that attribute is mapped through its hierarchy at that
  level. Used by Datafly, Incognito, and the lattice searches.
* **local recoding** (:func:`apply_partition_recoding`) — each equivalence
  class gets its own representative value per QI (the minimal hierarchy node
  covering the class, or the min-max interval for numeric QIs). Used by
  Mondrian and microaggregation, which produce multidimensional regions.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import HierarchyError
from .hierarchy import Hierarchy, IntervalHierarchy
from .table import Column, Table

__all__ = ["apply_node", "apply_partition_recoding", "generalized_qi_table"]

HierarchyLike = Hierarchy | IntervalHierarchy


def apply_node(
    table: Table,
    hierarchies: Mapping[str, HierarchyLike],
    attributes: Sequence[str],
    node: Sequence[int],
) -> Table:
    """Generalize ``attributes`` of ``table`` to the levels in ``node``."""
    if len(attributes) != len(node):
        raise HierarchyError("attributes and node levels must be parallel")
    new_columns = []
    for name, level in zip(attributes, node):
        hierarchy = hierarchies[name]
        new_columns.append(hierarchy.generalize_column(table.column(name), int(level)))
    return table.replace(*new_columns)


def generalized_qi_table(
    table: Table,
    hierarchies: Mapping[str, HierarchyLike],
    attributes: Sequence[str],
    node: Sequence[int],
) -> Table:
    """Like :func:`apply_node` but projected to the QIs only (hot path)."""
    return apply_node(table.select(list(attributes)), hierarchies, attributes, node)


def apply_partition_recoding(
    table: Table,
    groups: Sequence[np.ndarray],
    categorical_qis: Mapping[str, Hierarchy],
    numeric_qis: Sequence[str] = (),
    precision: int = 6,
) -> Table:
    """Local recoding: give each group a shared representative per QI.

    * Categorical QIs: the lowest hierarchy level at which the group's values
      collapse to a single generalized value; the group is recoded to that
      value's label.
    * Numeric QIs: the group's ``[min-max]`` interval label (point values stay
      numeric-looking strings only when min == max).

    Returns a new table where each recoded QI is a categorical column.
    """
    n_rows = table.n_rows
    covered = np.zeros(n_rows, dtype=bool)
    for group in groups:
        covered[group] = True
    if not covered.all():
        raise HierarchyError("groups do not cover every row")

    new_columns: list[Column] = []
    for name, hierarchy in categorical_qis.items():
        codes = table.codes(name)
        out = np.empty(n_rows, dtype=object)
        for group in groups:
            # Vectorized scatter: one label assignment per group, not per row.
            out[group] = _categorical_group_label(hierarchy, codes[group])
        new_columns.append(Column.categorical(name, out.tolist()))

    fmt = f"%.{precision}g"
    for name in numeric_qis:
        values = table.values(name)
        out = np.empty(n_rows, dtype=object)
        for group in groups:
            lo, hi = float(values[group].min()), float(values[group].max())
            out[group] = fmt % lo if lo == hi else f"[{fmt % lo}-{fmt % hi}]"
        new_columns.append(Column.categorical(name, out.tolist()))

    return table.replace(*new_columns)


def _categorical_group_label(hierarchy: Hierarchy, group_codes: np.ndarray) -> str:
    """Label of the minimal hierarchy value covering all codes in the group."""
    distinct = np.unique(group_codes)
    if distinct.size == 1:
        return str(hierarchy.ground[int(distinct[0])])
    for level in range(1, hierarchy.height + 1):
        mapped = np.unique(hierarchy.map_codes(distinct, level))
        if mapped.size == 1:
            return str(hierarchy.labels(level)[int(mapped[0])])
    raise HierarchyError("hierarchy top level does not unify the domain")  # pragma: no cover
