"""The engine cache store: pluggable memoization for lattice evaluation.

:class:`EngineCacheStore` is the standalone home of everything that used to
be buried inside :class:`~repro.core.engine.LatticeEvaluator`: the
``(names, node) -> GroupStats`` memo table, the byte/entry budget
accounting, the level-sum stratum index that makes roll-up candidate lookup
cheap, the single-flight in-flight table that keeps concurrent workers from
ever deriving one node's stats twice, and the full telemetry counter set.
An evaluator owns exactly one store, but a store can be constructed first
and handed in (``LatticeEvaluator(..., cache=store)``) — which is how the
batch planner sizes and shares budgets across a sweep.

Eviction policies
-----------------
``"lru"`` (default) evicts the least recently *used* entry, where a use is
an insertion, a memo hit, or being read as a roll-up ancestor — strictly
better than the FIFO order the evaluator used historically, because a
roll-up workhorse node (typically a subset's bottom, which is read almost
exclusively through the ancestor path) stays hot.

``"stratum"`` is cache-pressure-aware in the lattice sense: it prefers
evicting the most *general* cached node that still has a strictly more
specific cached node over the same QI subset. Such a node is
reconstructible by an O(n_groups) roll-up, while a bottom node costs a full
O(n_rows) pass — so under pressure the store sheds the cheap-to-rebuild top
of the lattice and pins the expensive roots. Only when nothing cached is
reconstructible does it fall back to LRU order (recency is maintained under
every policy). The batch planner uses this policy for the evaluators it
builds.

Counters
--------
Cumulative (never reset by eviction, and surviving :meth:`clear`):

========================  ====================================================
``hits``                  requests served from the memo table
``misses``                requests that had to compute (``== from_rows +
                          rollups`` — each miss resolves into exactly one
                          computation)
``from_rows``             O(n_rows) stats computations
``rollups``               O(n_groups) derivations from a cached ancestor
``coalesced``             requests that blocked on another worker's in-flight
                          computation of the same node instead of recomputing
``evictions``             entries dropped by the entry/byte budget
``recomputed_after_evict`` computations of a key that had been cached before
                          and was evicted — the budget-thrash signal the
                          batch planner's wave scheduling drives to zero
``merged``                entries adopted from another store
                          (:meth:`merge_from`, the shard merge step)
========================  ====================================================

:func:`estimate_cache_footprint` is the planner's sizing oracle: an upper
bound on the bytes a full-lattice search will pin in the store, derived
from the hierarchy LUT label counts and the lattice size alone — no
evaluator needs to be built to plan a batch.
"""

from __future__ import annotations

import threading
from itertools import product
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "EngineCacheStore",
    "FOOTPRINT_CALIBRATION",
    "check_cache_bytes",
    "estimate_cache_footprint",
]

Node = tuple[int, ...]
Key = tuple[tuple[str, ...], Node]

#: Recognized eviction policies.
POLICIES = ("lru", "stratum")

#: Default payload budget (bytes) — matches the evaluator's historic default.
DEFAULT_CACHE_BYTES = 256 * 2**20


def check_cache_bytes(value: Any) -> int:
    """Validate a cache byte budget; the single validator every layer uses.

    Raises :class:`ValueError` whose message starts after the field name,
    so callers prepend their own naming style (``"cache_bytes ..."`` here,
    ``"key 'cache_bytes' ..."`` at the config/planner layer).
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"must be a positive integer (bytes), got {value!r}")
    if value <= 0:
        raise ValueError(f"must be a positive integer (bytes), got {value}")
    return value


class EngineCacheStore:
    """Thread-safe, single-flight, budget-bounded store of ``GroupStats``.

    Parameters
    ----------
    cache_limit:
        maximum number of cached entries; ``None`` disables the entry cap
        so the byte budget alone governs (what the batch planner uses —
        its guarantees are stated in bytes, and an entry cap firing under
        an ample byte budget would silently reintroduce eviction thrash
        on huge lattices).
    cache_bytes:
        approximate payload-byte budget. Payload grown lazily after
        insertion (histograms, row labels, partitions) is accounted via
        :meth:`note_bytes` and can evict older entries.
    policy:
        ``"lru"`` or ``"stratum"`` (see the module docstring).

    The store never holds its mutex during a stats computation: the first
    thread to request an uncached key registers an in-flight event and
    computes outside the lock; concurrent requesters of the same key block
    on the event and then re-read the cache (``coalesced``). If the owner
    fails, waiters find neither entry nor marker and take over — no lock is
    ever poisoned.
    """

    def __init__(
        self,
        cache_limit: int | None = 8192,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        policy: str = "lru",
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown eviction policy {policy!r}; one of: {', '.join(POLICIES)}"
            )
        try:
            self.cache_bytes = check_cache_bytes(cache_bytes)
        except ValueError as exc:
            raise ValueError(f"cache_bytes {exc}") from None
        if cache_limit is not None and int(cache_limit) < 1:
            raise ValueError(f"cache_limit must be >= 1, got {cache_limit}")
        self.cache_limit = None if cache_limit is None else int(cache_limit)
        self.policy = policy
        # Entry order doubles as the recency order: hits re-insert at the
        # end under the "lru" policy, so iteration starts at the coldest.
        self._entries: dict[Key, Any] = {}
        # Exact bytes attributed to each *currently cached* entry, so lazy
        # growth on an already-evicted GroupStats can never leak into the
        # budget (that would eventually collapse the cache to one entry).
        self._accounted: dict[Key, int] = {}
        self._cached_bytes = 0
        # Roll-up memo index: names -> level-sum -> set of cached nodes.
        # A roll-up ancestor of ``node`` is componentwise <= ``node``, hence
        # has a strictly smaller level sum, so candidate lookup only touches
        # the strata below the node's instead of scanning the whole cache.
        self._stratum_index: dict[tuple[str, ...], dict[int, set[Node]]] = {}
        # Keys that were cached once and evicted — a later recomputation of
        # one of these is budget thrash, not a first-time miss.
        self._evicted: set[Key] = set()
        self.counters = {
            "hits": 0,
            "misses": 0,
            "from_rows": 0,
            "rollups": 0,
            "evictions": 0,
            "coalesced": 0,
            "recomputed_after_evict": 0,
            "merged": 0,
        }
        # One mutex guards every structure above plus the in-flight table;
        # stats computation itself runs outside it (single-flight).
        self._mutex = threading.Lock()
        self._inflight: dict[Key, threading.Event] = {}

    # -- the single-flight memo protocol --------------------------------------

    def get_or_compute(
        self,
        names: tuple[str, ...],
        node: Node,
        compute: Callable[[Any], Any],
    ):
        """Memoized stats of ``(names, node)``; single-flight on misses.

        ``compute(ancestor)`` is invoked outside the store lock by exactly
        one thread per uncached key; ``ancestor`` is the store's chosen
        roll-up candidate (a cached strictly-more-specific ``GroupStats``
        over the same names) or None. The returned stats object is inserted
        under the budget and handed to every coalesced waiter.
        """
        key = (names, node)
        event = None
        # The marker is registered inside the try so *any* exit — including
        # an exception raised mid-computation, or an async exception landing
        # right after registration — clears it and wakes the waiters, who
        # then find neither entry nor marker and take over ownership.
        try:
            while True:
                with self._mutex:
                    cached = self._entries.get(key)
                    if cached is not None:
                        self.counters["hits"] += 1
                        self._touch(key)
                        return cached
                    waiter = self._inflight.get(key)
                    if waiter is None:
                        # This thread owns the computation; the roll-up
                        # candidate is picked under the mutex (it reads the
                        # cache), the computation itself runs outside it.
                        ancestor = self._rollup_candidate(names, node)
                        event = threading.Event()
                        self._inflight[key] = event
                        break
                # Another worker is computing this exact node: wait for it,
                # then loop to read the cached result (or take over if it
                # failed / the entry was immediately evicted).
                waiter.wait()
                with self._mutex:
                    self.counters["coalesced"] += 1
            stats = compute(ancestor)
            with self._mutex:
                self.counters["misses"] += 1
                self.counters["rollups" if stats._parent is not None else "from_rows"] += 1
                if key in self._evicted:
                    self._evicted.discard(key)
                    self.counters["recomputed_after_evict"] += 1
                self._insert(key, stats, self.footprint(stats))
            return stats
        finally:
            if event is not None:
                with self._mutex:
                    del self._inflight[key]
                event.set()

    def note_bytes(self, stats: Any, n_bytes: int) -> None:
        """Account payload grown after insertion (lazy histograms, lazily
        resolved row labels, partitions) and evict if the budget is now
        exceeded. Growth on stats no longer cached is ignored — their bytes
        were already released at eviction."""
        with self._mutex:
            key = stats._cache_key
            if key is None or self._entries.get(key) is not stats:
                return
            self._cached_bytes += int(n_bytes)
            self._accounted[key] += int(n_bytes)
            while len(self._entries) > 1 and self._cached_bytes > self.cache_bytes:
                self._evict_one()

    # -- bookkeeping (all called under the mutex) ------------------------------

    def _touch(self, key: Key) -> None:
        """Refresh a key's recency (entry order doubles as LRU order)."""
        self._entries[key] = self._entries.pop(key)

    def _insert(self, key: Key, stats: Any, footprint: int) -> None:
        while self._entries and (
            (self.cache_limit is not None and len(self._entries) >= self.cache_limit)
            or self._cached_bytes + footprint > self.cache_bytes
        ):
            self._evict_one()
        stats._cache_key = key
        self._entries[key] = stats
        names, node = key
        self._stratum_index.setdefault(names, {}).setdefault(sum(node), set()).add(node)
        self._accounted[key] = footprint
        self._cached_bytes += footprint

    def _evict_one(self) -> None:
        key = self._pick_victim()
        self._entries.pop(key)
        self._cached_bytes -= self._accounted.pop(key)
        names, node = key
        stratum = self._stratum_index[names][sum(node)]
        stratum.discard(node)
        if not stratum:
            del self._stratum_index[names][sum(node)]
        self._remember_evicted(key)
        self.counters["evictions"] += 1

    def _remember_evicted(self, key: Key) -> None:
        """Track an evicted key for recomputed_after_evict attribution.

        The set is bookkeeping the byte budget never sees, so it is capped:
        under sustained thrash over a huge key universe it is dropped
        wholesale rather than growing without bound (the counter may then
        undercount — an acceptable trade for a store whose whole job is
        bounding memory)."""
        if len(self._evicted) >= 16 * (self.cache_limit or 8192):
            self._evicted.clear()
        self._evicted.add(key)

    def _pick_victim(self) -> Key:
        """The entry to evict next under the configured policy.

        Stratum selection runs under the store mutex, but the typical
        eviction is cheap: the highest occupied stratum is probed first and
        ``_has_ancestor`` short-circuits on a cached bottom, so the scan
        usually ends at its first candidate. The worst case (no bottoms
        resident, many strata) degrades toward O(entries) per eviction —
        acceptable because eviction storms are exactly what wave planning
        prevents; LRU order is the O(1) fallback policy.
        """
        if self.policy == "stratum":
            # Most general reconstructible node first: walk the strata from
            # the highest level sum down; the first node with a cached
            # strict ancestor is an O(n_groups) roll-up away from coming
            # back, while a bottom node would cost a full O(n_rows) pass.
            strata = sorted(
                (
                    (total, names)
                    for names, by_sum in self._stratum_index.items()
                    for total in by_sum
                ),
                reverse=True,
            )
            for total, names in strata:
                if total == 0:
                    continue  # a bottom node never has a stricter ancestor
                for node in sorted(self._stratum_index[names][total]):
                    if self._has_ancestor(names, node):
                        return (names, node)
        return next(iter(self._entries))

    def _has_ancestor(self, names: tuple[str, ...], node: Node) -> bool:
        strata = self._stratum_index.get(names)
        if not strata:
            return False
        # Fast path for the overwhelmingly common witness: the names-space
        # bottom (the unique level-sum-0 node, componentwise <= everything)
        # is cached — searches pre-seed it precisely so it stays resident.
        if 0 in strata and sum(node) > 0:
            return True
        node_sum = sum(node)
        for stratum_sum, nodes in strata.items():
            if stratum_sum >= node_sum:
                continue
            if any(all(a <= b for a, b in zip(cached, node)) for cached in nodes):
                return True
        return False

    def _rollup_candidate(self, names: tuple[str, ...], node: Node):
        """Cheapest cached strictly-more-specific node over the same QIs.

        Strata are probed from the most general (highest level sum below the
        node's) downward, and the first stratum holding an ancestor wins:
        roll-up cost is O(parent.n_groups) and group counts shrink as level
        sums grow, so the nearest stratum is where the cheapest parents live.
        This keeps candidate lookup proportional to the cached nodes *below*
        the requested node for the same QI subset, not to the whole cache.
        """
        strata = self._stratum_index.get(names)
        if not strata:
            return None
        node_sum = sum(node)
        for stratum_sum in sorted(strata, reverse=True):
            if stratum_sum >= node_sum:
                # Equal sums + componentwise <= would force equality, and an
                # exact hit was already handled; larger sums cannot qualify.
                continue
            best = None
            for cached_node in strata[stratum_sum]:
                if all(a <= b for a, b in zip(cached_node, node)):
                    stats = self._entries[(names, cached_node)]
                    if best is None or stats.n_groups < best.n_groups:
                        best = stats
            if best is not None:
                # Serving as a roll-up ancestor is a use: without this the
                # workhorse bottoms (only ever read through this path, never
                # as plain hits) would be the *oldest* entries and the first
                # eviction victims under pressure — the opposite of what an
                # LRU order is for.
                self._touch(best._cache_key)
                return best
        return None

    @staticmethod
    def footprint(stats: Any) -> int:
        """Approximate cached payload bytes of one GroupStats entry."""
        total = stats.sizes.nbytes + stats.group_codes.nbytes
        if stats._row_labels is not None:
            total += stats._row_labels.nbytes
        if stats._partition is not None:
            total += stats.n_rows * 8
        total += sum(hist.nbytes for hist in stats._hists.values())
        if stats._external is not None:
            total += stats._external[1].nbytes
        return total

    # -- inspection & lifecycle ------------------------------------------------

    def info(self) -> dict:
        """Cumulative counters plus current occupancy and policy."""
        with self._mutex:
            return {
                **self.counters,
                "entries": len(self._entries),
                "bytes": self._cached_bytes,
                "policy": self.policy,
            }

    def occupancy(self) -> dict:
        """Structured snapshot of what currently occupies the store.

        The service/metrics view of residency (where :meth:`info` is the
        counter view): total entries/bytes against the configured budget,
        plus a per-QI-subset breakdown — entry count, accounted bytes, and
        the cached level-sum strata — so an operator can see *which*
        environments and lattice regions a warm store is holding. Taken
        under the mutex; cheap (O(entries)).
        """
        with self._mutex:
            by_names: dict[str, dict[str, Any]] = {}
            for (names, node), _ in self._entries.items():
                slot = by_names.setdefault(
                    ",".join(names), {"entries": 0, "bytes": 0, "strata": set()}
                )
                slot["entries"] += 1
                slot["bytes"] += self._accounted[(names, node)]
                slot["strata"].add(sum(node))
            for slot in by_names.values():
                slot["strata"] = sorted(slot["strata"])
            return {
                "entries": len(self._entries),
                "bytes": self._cached_bytes,
                "cache_bytes": self.cache_bytes,
                "utilization": (
                    round(self._cached_bytes / self.cache_bytes, 4)
                    if self.cache_bytes
                    else 0.0
                ),
                "policy": self.policy,
                "by_names": by_names,
            }

    def resize(self, cache_bytes: int) -> int:
        """Change the byte budget and evict down to it immediately.

        The multi-tenant seam: a tenant's budget is re-sliced across its
        live environment stores as environments come and go, and a shrink
        must take effect now — not at the next insert — or a dormant store
        would squat on bytes its tenant no longer has. At least one entry
        survives (matching the insert-path invariant that a single
        over-budget entry is kept). Returns the number of evictions.
        """
        try:
            budget = check_cache_bytes(cache_bytes)
        except ValueError as exc:
            raise ValueError(f"cache_bytes {exc}") from None
        with self._mutex:
            self.cache_bytes = budget
            evicted = 0
            while len(self._entries) > 1 and self._cached_bytes > self.cache_bytes:
                self._evict_one()
                evicted += 1
            return evicted

    def rebind(self, engine: Any) -> int:
        """Re-home every cached entry's lazy-growth hooks onto ``engine``.

        The cross-request warm-start seam: a store that outlives the
        evaluator it was filled through (the service keeps one per tenant ×
        environment) is handed to the next request's fresh evaluator, and
        its entries' ``_engine`` references — used for lazy histogram /
        row-label growth and byte accounting — must point at the live
        evaluator, not the retired one (which would otherwise pin the
        previous request's table). Safe exactly when the new evaluator is
        built over a byte-identical table and equal hierarchies, which is
        what the environment fingerprint guarantees. Returns the number of
        entries rebound.
        """
        with self._mutex:
            for stats in self._entries.values():
                stats._engine = engine
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached entry (counters survive; they are cumulative).

        The batch planner calls this between waves so a finished wave's
        working set does not stay pinned while the next wave fills its own.
        Cleared keys count as evicted for ``recomputed_after_evict``
        purposes — recomputing them later is still budget thrash.
        """
        with self._mutex:
            for key in self._entries:
                self._remember_evicted(key)
            self._entries.clear()
            self._accounted.clear()
            self._stratum_index.clear()
            self._cached_bytes = 0

    def merge_from(
        self, source: "EngineCacheStore | None", engine: Any = None
    ) -> int:
        """Destructively adopt ``source``'s entries; returns the count adopted.

        The memo merge step of sharded batch execution: a per-worker shard
        store empties into the environment's canonical store between waves.
        Entries the target already holds are dropped (that duplication is
        exactly the sharing a shard gave up); adopted stats are re-homed to
        ``engine`` (the canonical evaluator) when one is given, so their
        lazy growth is accounted against *this* store from now on.
        ``source`` is emptied and its counters are folded into this store's
        — it must be discarded afterwards.

        ``source=None`` merges nothing and returns 0: a worker that died
        before shipping its snapshot simply contributes no memo entries,
        and the supervised merge-back loop need not special-case it.
        """
        if source is None:
            return 0
        with source._mutex:
            items = list(source._entries.items())
            footprints = dict(source._accounted)
            source_counters = dict(source.counters)
            source._entries.clear()
            source._accounted.clear()
            source._stratum_index.clear()
            source._cached_bytes = 0
        adopted = 0
        for key, stats in items:
            with self._mutex:
                if key in self._entries:
                    continue
                if engine is not None:
                    stats._engine = engine
                self._insert(key, stats, footprints[key])
                adopted += 1
        with self._mutex:
            for name, value in source_counters.items():
                self.counters[name] += value
            self.counters["merged"] += adopted
        return adopted

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Key]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return (
            f"EngineCacheStore({len(self._entries)} entries, "
            f"{self._cached_bytes} bytes, policy={self.policy!r})"
        )


#: Safety multiplier applied to the modeled bytes of
#: :func:`estimate_cache_footprint`. The group-count model is an *expected
#: uniform occupancy*; real datasets are skewed and correlated, which only
#: lowers distinct-group counts, so a modest margin suffices where the old
#: ``min(domain, n_rows)`` cap needed ~15x of slack. Calibrated against
#: measured ``EngineCacheStore`` bytes on the Adult schema — the regression
#: test ``test_footprint_estimate_calibrated_on_adult`` pins the estimate
#: within a small factor of measured usage in both directions.
FOOTPRINT_CALIBRATION = 1.3

#: Full-length label arrays priced beyond each names-space bottom: labels
#: lazily resolved for winner / suppression nodes.
_LABEL_SLACK = 2


def _expected_groups(domain: float, n_rows: int) -> float:
    """Expected distinct groups when ``n_rows`` rows land in ``domain`` cells.

    The uniform-occupancy expectation ``D * (1 - (1 - 1/D)**n)``: a smooth
    bound that approaches ``min(D, n)`` at both extremes but tightens it
    most exactly where the old hard cap overshot worst — domains within a
    few orders of magnitude of the row count. Skew and correlation in real
    data only push the realized count further below it.
    """
    if domain <= 1.0:
        return min(max(domain, 0.0), float(n_rows))
    if domain > 2**53:  # 1 - 1/D rounds to 1.0; the expectation is ~n anyway
        return float(n_rows)
    return domain * (1.0 - (1.0 - 1.0 / domain) ** n_rows)


def estimate_cache_footprint(
    hierarchies: Mapping[str, Any],
    qi_names: Sequence[str],
    n_rows: int,
    sensitive_categories: Sequence[int] = (),
    include_subsets: bool = False,
    node_limit: int = 200_000,
) -> int:
    """Upper bound on the memo bytes a full-lattice search pins in the store.

    Derived from the hierarchy LUT label counts and the lattice size alone —
    no evaluator (and no O(n_rows) encoding pass) is needed, which is what
    lets the batch planner size waves before building anything. Terms:

    * every lattice node's group payload: the expected-occupancy group
      count (see :func:`_expected_groups`) of its label-domain product,
      each group costing sizes + representative codes + one histogram row
      per sensitive category requested;
    * row labels: the bottom node of every names-space is computed from rows
      and pins an ``n_rows``-long label array (searches pre-seed the bottom,
      so other nodes roll up); a slack of a few more covers labels lazily
      resolved for winner/suppression nodes;
    * ``include_subsets`` adds Incognito's projected sub-lattices (one per
      non-empty QI subset) to both terms.

    The modeled bytes are scaled by :data:`FOOTPRINT_CALIBRATION` — the
    exposed calibration constant that keeps the estimate a true upper bound
    while letting ``plan="auto"`` pack waves far tighter than the old
    ``min(domain, n_rows)`` cap allowed.

    Lattices larger than ``node_limit`` nodes are priced as if every node
    held ``n_rows`` groups — a deliberate overestimate; the planner then
    simply gives that environment the whole budget.
    """
    names = list(qi_names)
    level_counts: list[list[int]] = []
    for name in names:
        hierarchy = hierarchies[name]
        height = hierarchy.height
        if hasattr(hierarchy, "labels"):
            counts = [len(hierarchy.labels(lv)) for lv in range(height + 1)]
        else:
            # Numeric QI: level 0 is the distinct-value domain (unknown
            # without the data, bounded by n_rows), higher levels intervals.
            counts = [int(n_rows)] + [
                len(hierarchy.intervals(lv)) for lv in range(1, height + 1)
            ]
        level_counts.append(counts)

    per_group = 8 * (1 + len(names) + sum(int(c) for c in sensitive_categories))

    def lattice_groups(counts: list[list[int]]) -> int:
        size = 1
        for levels in counts:
            size *= len(levels)
        if size > node_limit:
            return size * int(n_rows)
        total = 0.0
        for combo in product(*counts):
            domain = 1.0
            for c in combo:
                domain *= max(c, 1)
            total += _expected_groups(domain, n_rows)
        return int(total)

    groups_total = lattice_groups(level_counts)
    label_arrays = 1
    if include_subsets:
        # Every non-empty QI subset gets its own projected lattice and its
        # own from-rows bottom node (Incognito's subset phases).
        from itertools import combinations

        label_arrays = 2 ** len(names) - 1
        for size in range(1, len(names)):
            for subset in combinations(range(len(names)), size):
                groups_total += lattice_groups([level_counts[i] for i in subset])
    labels_bytes = int(n_rows) * 8 * (label_arrays + _LABEL_SLACK)
    return int(FOOTPRINT_CALIBRATION * (groups_total * per_group + labels_bytes))
