"""Frequent-itemset mining and the association-rule utility of set-valued releases.

kᵐ-anonymity generalizes items up a taxonomy; the canonical way to score
what that costs (Terrovitis et al.'s evaluation) is to ask how well the
anonymized transactions still support *market-basket analysis*:

* :func:`apriori` — textbook level-wise frequent-itemset miner over any
  sequence of transactions (frozensets of hashable items); works unchanged
  on raw item codes and on generalized ``(level, code)`` pairs.
* :func:`association_rules` — rules with support / confidence / lift from a
  mined itemset collection.
* :func:`itemset_utility` — the before/after comparison for a kᵐ-anonymized
  :class:`~repro.transactions.TransactionDB`: how many originally-frequent
  itemsets keep a *distinct* image after generalization (images that collide
  are no longer tellable apart) and how much their supports inflate (a
  generalized item matches more transactions, so supports drift upward).

Experiment E28 sweeps k and m and reproduces the expected shape: support
distortion and itemset collisions grow with both, m=2 markedly worse than
m=1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from ..errors import InfeasibleError
from .km_anonymity import TransactionDB

__all__ = [
    "apriori",
    "AssociationRule",
    "association_rules",
    "ItemsetUtility",
    "itemset_utility",
]


def apriori(
    transactions: Sequence[frozenset],
    min_support: float,
    max_size: int = 4,
) -> dict[frozenset, int]:
    """Frequent itemsets (size ≤ ``max_size``) with absolute counts.

    ``min_support`` is a fraction of the transaction count. Classic
    level-wise search: candidates of size s are joins of frequent (s−1)-sets
    whose every (s−1)-subset is frequent (the apriori pruning property).
    """
    if not 0 < min_support <= 1:
        raise InfeasibleError(f"min_support must be in (0, 1], got {min_support}")
    if not transactions:
        return {}
    threshold = min_support * len(transactions)

    item_counts = Counter(item for t in transactions for item in t)
    frequent: dict[frozenset, int] = {
        frozenset([item]): count
        for item, count in item_counts.items()
        if count >= threshold
    }
    current = sorted(frozenset([item]) for item in item_counts if item_counts[item] >= threshold)

    size = 2
    while current and size <= max_size:
        candidates = _candidate_join(current, size)
        if not candidates:
            break
        counts = Counter()
        candidate_set = set(candidates)
        for t in transactions:
            if len(t) < size:
                continue
            for combo in combinations(sorted(t, key=repr), size):
                itemset = frozenset(combo)
                if itemset in candidate_set:
                    counts[itemset] += 1
        survivors = {s: c for s, c in counts.items() if c >= threshold}
        frequent.update(survivors)
        current = sorted(survivors, key=lambda s: sorted(map(repr, s)))
        size += 1
    return frequent


def _candidate_join(frequent_prev: list[frozenset], size: int) -> list[frozenset]:
    """Join step + apriori prune over the previous level's frequent sets."""
    prev = set(frequent_prev)
    candidates = set()
    for i, a in enumerate(frequent_prev):
        for b in frequent_prev[i + 1 :]:
            union = a | b
            if len(union) != size:
                continue
            if all(frozenset(sub) in prev for sub in combinations(union, size - 1)):
                candidates.add(union)
    return sorted(candidates, key=lambda s: sorted(map(repr, s)))


@dataclass(frozen=True)
class AssociationRule:
    """antecedent ⇒ consequent with its standard quality measures."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float


def association_rules(
    frequent: dict[frozenset, int],
    n_transactions: int,
    min_confidence: float = 0.6,
) -> list[AssociationRule]:
    """Derive rules from mined itemsets (both sides must be frequent)."""
    if n_transactions <= 0:
        raise InfeasibleError("need a positive transaction count")
    rules = []
    for itemset, count in frequent.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for antecedent in combinations(sorted(itemset, key=repr), r):
                antecedent = frozenset(antecedent)
                consequent = itemset - antecedent
                if antecedent not in frequent or consequent not in frequent:
                    continue
                confidence = count / frequent[antecedent]
                if confidence < min_confidence:
                    continue
                support = count / n_transactions
                lift = confidence / (frequent[consequent] / n_transactions)
                rules.append(
                    AssociationRule(antecedent, consequent, support, confidence, lift)
                )
    return sorted(rules, key=lambda r: (-r.confidence, -r.support, repr(r.antecedent)))


@dataclass(frozen=True)
class ItemsetUtility:
    """Before/after market-basket utility of a generalized release."""

    n_frequent_original: int
    n_distinct_images: int          # original frequent itemsets with unique images
    collision_fraction: float       # 1 - distinct/original
    mean_support_inflation: float   # mean relative support growth of images
    max_support_inflation: float

    @property
    def preserved_fraction(self) -> float:
        return 0.0 if not self.n_frequent_original else (
            self.n_distinct_images / self.n_frequent_original
        )


def itemset_utility(
    db: TransactionDB,
    level_of_item: np.ndarray,
    min_support: float = 0.05,
    max_size: int = 3,
) -> ItemsetUtility:
    """Score a level assignment's effect on frequent-itemset analysis.

    Mines the original transactions, maps each frequent itemset through the
    item-level assignment, and measures (a) how many itemsets keep distinct
    images — collided itemsets can no longer be distinguished by an analyst
    of the release — and (b) how much the image's support inflates relative
    to the original support.
    """
    original = apriori(db.transactions, min_support, max_size)
    if not original:
        return ItemsetUtility(0, 0, 0.0, 0.0, 0.0)
    generalized = db.generalized(level_of_item)
    n = len(db)

    def image(itemset: frozenset) -> frozenset:
        mapped = set()
        for code in itemset:
            level = int(level_of_item[code])
            mapped_code = int(db.taxonomy.map_codes(np.array([code]), level)[0])
            mapped.add((level, mapped_code))
        return frozenset(mapped)

    images = {itemset: image(itemset) for itemset in original}
    image_counts = Counter(images.values())
    distinct = sum(1 for img in images.values() if image_counts[img] == 1)

    inflations = []
    for itemset, count in original.items():
        img = images[itemset]
        img_support = sum(1 for t in generalized if img <= t)
        inflations.append((img_support - count) / count)
    return ItemsetUtility(
        n_frequent_original=len(original),
        n_distinct_images=distinct,
        collision_fraction=1.0 - distinct / len(original),
        mean_support_inflation=float(np.mean(inflations)),
        max_support_inflation=float(np.max(inflations)),
    )
