"""Set-valued (transaction) data publishing: kᵐ-anonymity."""

from .association import (
    AssociationRule,
    ItemsetUtility,
    apriori,
    association_rules,
    itemset_utility,
)
from .km_anonymity import KmAnonymity, TransactionDB, km_violations

__all__ = [
    "AssociationRule",
    "ItemsetUtility",
    "KmAnonymity",
    "TransactionDB",
    "apriori",
    "association_rules",
    "itemset_utility",
    "km_violations",
]
