"""kᵐ-anonymity for set-valued (transaction) data (Terrovitis et al.).

A transaction dataset (market baskets, search terms, diagnoses) has no fixed
quasi-identifier schema: *any* subset of items an attacker knows acts as
one. kᵐ-anonymity requires that every combination of at most ``m`` items
that occurs in the data is contained in at least ``k`` transactions.

The anonymizer is the paper's *apriori-based global generalization*: items
live in a taxonomy; violating m-item combinations are fixed by replacing
items with their taxonomy parents, chosen greedily by (violations fixed /
items coarsened), until no violating combination remains.

Data model: a :class:`TransactionDB` is a list of item-code sets plus an
item taxonomy (:class:`~repro.core.hierarchy.Hierarchy` over item names).
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from ..core.hierarchy import Hierarchy
from ..errors import InfeasibleError

__all__ = ["TransactionDB", "KmAnonymity", "km_violations"]


class TransactionDB:
    """Set-valued records over a fixed item taxonomy."""

    def __init__(self, transactions: Sequence[Iterable], taxonomy: Hierarchy):
        self.taxonomy = taxonomy
        index = {item: code for code, item in enumerate(taxonomy.ground)}
        self.transactions: list[frozenset] = []
        for items in transactions:
            try:
                self.transactions.append(frozenset(index[item] for item in items))
            except KeyError as exc:
                raise InfeasibleError(
                    f"item {exc.args[0]!r} not in the taxonomy"
                ) from exc

    def __len__(self) -> int:
        return len(self.transactions)

    def item_names(self, codes: Iterable[int]) -> set:
        return {self.taxonomy.ground[code] for code in codes}

    def generalized(self, level_of_item: np.ndarray) -> list[frozenset]:
        """Transactions with each ground item mapped to its assigned level.

        ``level_of_item[g]`` is the generalization level of ground item g;
        items are replaced by ``(level, label-code)`` pairs so different
        levels never collide.
        """
        cache: dict[int, tuple] = {}
        out = []
        for transaction in self.transactions:
            mapped = set()
            for code in transaction:
                key = code
                if key not in cache:
                    level = int(level_of_item[code])
                    mapped_code = int(
                        self.taxonomy.map_codes(np.array([code], dtype=np.int32), level)[0]
                    )
                    cache[key] = (level, mapped_code)
                mapped.add(cache[key])
            out.append(frozenset(mapped))
        return out

    def generalized_names(self, level_of_item: np.ndarray) -> list[set]:
        """Human-readable generalized transactions."""
        out = []
        for transaction in self.generalized(level_of_item):
            out.append(
                {self.taxonomy.labels(level)[code] for level, code in transaction}
            )
        return out


def km_violations(
    transactions: Sequence[frozenset], k: int, m: int, max_report: int | None = None
) -> list[tuple]:
    """All item combinations of size <= m supported by 1..k-1 transactions."""
    support: dict[tuple, int] = defaultdict(int)
    for transaction in transactions:
        items = sorted(transaction)
        for size in range(1, min(m, len(items)) + 1):
            for combo in combinations(items, size):
                support[combo] += 1
    violations = [combo for combo, count in support.items() if count < k]
    violations.sort(key=lambda c: (len(c), c))
    if max_report is not None:
        violations = violations[:max_report]
    return violations


class KmAnonymity:
    """Apriori-style global generalization to kᵐ-anonymity."""

    def __init__(self, k: int, m: int):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.k = int(k)
        self.m = int(m)
        self.name = f"{k}^{m}-anonymity"

    def check(self, db: TransactionDB, level_of_item: np.ndarray | None = None) -> bool:
        levels = (
            level_of_item
            if level_of_item is not None
            else np.zeros(len(db.taxonomy.ground), dtype=np.int64)
        )
        return not km_violations(db.generalized(levels), self.k, self.m, max_report=1)

    def anonymize(self, db: TransactionDB) -> np.ndarray:
        """Return the per-item generalization levels achieving kᵐ-anonymity.

        Greedy loop: while violations exist, raise one level the ground item
        (restricted to items appearing in violations) whose raise fixes the
        most violating combinations per unit of coarsening.
        """
        taxonomy = db.taxonomy
        n_items = len(taxonomy.ground)
        levels = np.zeros(n_items, dtype=np.int64)

        while True:
            generalized = db.generalized(levels)
            violations = km_violations(generalized, self.k, self.m)
            if not violations:
                return levels
            # Which generalized tokens participate in violations?
            offending_tokens = {token for combo in violations for token in combo}
            # Ground items currently mapping to an offending token and still
            # raisable.
            candidates: dict[int, int] = {}
            for code in range(n_items):
                if levels[code] >= taxonomy.height:
                    continue
                level = int(levels[code])
                token = (
                    level,
                    int(taxonomy.map_codes(np.array([code], dtype=np.int32), level)[0]),
                )
                if token in offending_tokens:
                    count = sum(1 for combo in violations if token in combo)
                    candidates[code] = count
            if not candidates:
                raise InfeasibleError(
                    f"cannot reach {self.name}: violating items are fully generalized"
                )
            # Raise the whole sibling group of the best item (global recoding
            # must keep a consistent mapping: raise every ground item that
            # shares the chosen item's current token).
            best = max(candidates, key=lambda code: candidates[code])
            level = int(levels[best])
            token_code = int(
                taxonomy.map_codes(np.array([best], dtype=np.int32), level)[0]
            )
            for code in range(n_items):
                if (
                    levels[code] == level
                    and int(taxonomy.map_codes(np.array([code], dtype=np.int32), level)[0])
                    == token_code
                ):
                    levels[code] = level + 1

    def utility_loss(self, db: TransactionDB, levels: np.ndarray) -> float:
        """Average per-item-occurrence NCP over the generalized database."""
        taxonomy = db.taxonomy
        domain = len(taxonomy.ground)
        if domain <= 1:
            return 0.0
        total, occurrences = 0.0, 0
        leaf_counts = {
            level: taxonomy.leaf_count(level) for level in range(taxonomy.height + 1)
        }
        for transaction in db.transactions:
            for code in transaction:
                level = int(levels[code])
                mapped = int(taxonomy.map_codes(np.array([code], dtype=np.int32), level)[0])
                cover = int(leaf_counts[level][mapped])
                total += (cover - 1) / (domain - 1)
                occurrences += 1
        return total / occurrences if occurrences else 0.0

    def __repr__(self) -> str:
        return f"KmAnonymity(k={self.k}, m={self.m})"
