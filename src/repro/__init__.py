"""repro — a privacy-preserving data publishing (PPDP) library.

Implements the canonical PPDP toolbox: generalization-based anonymization
algorithms (Datafly, Incognito, Mondrian, Top-Down Specialization, Anatomy,
MDAV), privacy models (k-anonymity, ℓ-diversity, t-closeness, δ-presence,
(α,k)-anonymity, ε-differential privacy), attack simulators (record /
attribute / table linkage, composition), and the standard information-loss
metrics — all on a self-contained numpy column store.

Quickstart::

    from repro import Anonymizer, KAnonymity, Mondrian
    from repro.data import load_adult, adult_schema, adult_hierarchies

    table = load_adult(n_rows=5000, seed=0)
    anon = Anonymizer(table, adult_schema(), adult_hierarchies())
    release = anon.apply(KAnonymity(10), algorithm=Mondrian())
    print(release.summary())
    print(anon.risk_report(release))
"""

from ._version import __version__
from .api import (
    AnonymizationConfig,
    AnonymizationResult,
    algorithm_registry,
    metric_registry,
    model_registry,
    run,
    run_batch,
)
from .algorithms import (
    Anatomy,
    BottomUpGeneralization,
    Datafly,
    Flash,
    Incognito,
    KMemberClustering,
    MDAVMicroaggregation,
    Mondrian,
    OLA,
    TopDownSpecialization,
)
from .core import (
    AttributeType,
    Column,
    GeneralizationLattice,
    GroupStats,
    Hierarchy,
    IntervalHierarchy,
    LatticeEvaluator,
    Release,
    Schema,
    Table,
    partition_by_qi,
)
from .core.anonymizer import Anonymizer
from .errors import (
    BudgetError,
    ConfigError,
    HierarchyError,
    InfeasibleError,
    NotFittedError,
    ReproError,
    SchemaError,
)
from .privacy import (
    AlphaKAnonymity,
    CompositeModel,
    DeltaPresence,
    DistinctLDiversity,
    EntropyLDiversity,
    GuardingNode,
    KAnonymity,
    KEAnonymity,
    LKCPrivacy,
    PersonalizedPrivacy,
    RecursiveCLDiversity,
    TCloseness,
)

__all__ = [
    "AlphaKAnonymity",
    "Anatomy",
    "AnonymizationConfig",
    "AnonymizationResult",
    "Anonymizer",
    "AttributeType",
    "BudgetError",
    "Column",
    "CompositeModel",
    "ConfigError",
    "BottomUpGeneralization",
    "Datafly",
    "DeltaPresence",
    "Flash",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "GeneralizationLattice",
    "GroupStats",
    "GuardingNode",
    "Hierarchy",
    "HierarchyError",
    "Incognito",
    "InfeasibleError",
    "IntervalHierarchy",
    "KAnonymity",
    "LatticeEvaluator",
    "KEAnonymity",
    "KMemberClustering",
    "LKCPrivacy",
    "MDAVMicroaggregation",
    "Mondrian",
    "NotFittedError",
    "OLA",
    "PersonalizedPrivacy",
    "RecursiveCLDiversity",
    "Release",
    "ReproError",
    "Schema",
    "SchemaError",
    "TCloseness",
    "Table",
    "TopDownSpecialization",
    "algorithm_registry",
    "metric_registry",
    "model_registry",
    "partition_by_qi",
    "run",
    "run_batch",
    "__version__",
]
