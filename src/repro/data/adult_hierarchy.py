"""Standard generalization hierarchies for the Adult schema.

These mirror the hierarchies ARX and the PPDP papers ship for Adult:
work class into sector, education into stage, marital status into
civil state, country into region, race/sex into suppression-only, and
age into widening intervals (5 → 10 → 20 → 40 → all).
"""

from __future__ import annotations

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from .adult import EDUCATION, MARITAL, NATIVE_COUNTRY, RACE, SEX, WORKCLASS, OCCUPATION

__all__ = ["adult_hierarchies"]


def adult_hierarchies() -> dict:
    """Hierarchies keyed by column name, covering every Adult QI."""
    workclass = Hierarchy.from_tree(
        {
            "Government": ["Federal-gov", "Local-gov", "State-gov"],
            "Private-sector": ["Private"],
            "Self-employed": ["Self-emp-not-inc", "Self-emp-inc"],
            "Unpaid": ["Without-pay"],
        },
        root="*",
    )
    education = Hierarchy.from_tree(
        {
            "No-HS": ["Preschool", "Primary", "Some-HS"],
            "HS-level": ["HS-grad", "Some-college", "Assoc"],
            "Higher-ed": ["Bachelors", "Masters", "Prof-school", "Doctorate"],
        },
        root="*",
    )
    marital = Hierarchy.from_tree(
        {
            "Alone": ["Never-married", "Divorced", "Separated", "Widowed"],
            "Partnered": ["Married"],
        },
        root="*",
    )
    country = Hierarchy.from_tree(
        {
            "North-America": ["United-States", "Canada", "Mexico", "Cuba"],
            "Asia": ["Philippines", "India", "China"],
            "Europe": ["Germany", "England"],
            "Elsewhere": ["Other"],
        },
        root="*",
    )
    occupation = Hierarchy.from_tree(
        {
            "White-collar": [
                "Tech-support", "Sales", "Exec-managerial",
                "Prof-specialty", "Adm-clerical",
            ],
            "Blue-collar": [
                "Craft-repair", "Handlers-cleaners", "Machine-op-inspct",
                "Farming-fishing", "Transport-moving",
            ],
            "Service": ["Other-service", "Protective-serv"],
        },
        root="*",
    )
    race = Hierarchy.flat(RACE)
    sex = Hierarchy.flat(SEX)
    age = IntervalHierarchy.uniform(15, 95, n_bins=16, merge_factor=2)  # 5y → 10y → 20y → 40y → *
    return {
        "workclass": workclass,
        "education": education,
        "marital_status": marital,
        "native_country": country,
        "occupation": occupation,
        "race": race,
        "sex": sex,
        "age": age,
    }
