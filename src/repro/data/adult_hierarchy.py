"""Standard generalization hierarchies for the Adult schema.

These mirror the hierarchies ARX and the PPDP papers ship for Adult:
work class into sector, education into stage, marital status into
civil state, country into region, race/sex into suppression-only, and
age into widening intervals (5 → 10 → 20 → 40 → all).

They are available in two equivalent forms:

* :func:`adult_hierarchies` — live :class:`~repro.core.hierarchy.Hierarchy`
  objects, for the library API;
* :func:`adult_hierarchy_specs` — the same hierarchies as declarative
  builder specs (``adult_hierarchies.json``, shipped next to this module),
  ready to embed under the ``hierarchies`` key of an
  :class:`~repro.api.AnonymizationConfig`. Because every spec pins its
  domain explicitly (``tree``/``levels`` rows, interval ``cuts``), a whole
  Adult job is plain JSON end to end — it can be queued, shipped, and
  replayed with no live objects riding along. The spec format is
  documented in ``docs/api.md``; equivalence with the live objects is
  pinned by ``tests/test_data.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from .adult import EDUCATION, MARITAL, NATIVE_COUNTRY, RACE, SEX, WORKCLASS, OCCUPATION

__all__ = ["adult_hierarchies", "adult_hierarchy_specs"]

_SPEC_PATH = Path(__file__).with_name("adult_hierarchies.json")


def adult_hierarchy_specs() -> dict:
    """The curated Adult hierarchies as JSON-safe builder specs.

    Returns a fresh ``{column: hierarchy spec}`` dict loaded from
    ``adult_hierarchies.json`` — drop it (or a subset of it) under a
    config's ``hierarchies`` key to run Adult jobs as pure data::

        config = AnonymizationConfig.from_dict({
            "quasi_identifiers": ["workclass", "education"],
            "numeric_quasi_identifiers": ["age"],
            "hierarchies": {
                name: spec
                for name, spec in adult_hierarchy_specs().items()
                if name in ("workclass", "education", "age")
            },
            "models": [{"model": "k-anonymity", "k": 5}],
        })

    Building these specs against a table (``build_hierarchies``) yields
    hierarchies level-for-level identical to :func:`adult_hierarchies`.
    """
    return json.loads(_SPEC_PATH.read_text())


def adult_hierarchies() -> dict:
    """Hierarchies keyed by column name, covering every Adult QI."""
    workclass = Hierarchy.from_tree(
        {
            "Government": ["Federal-gov", "Local-gov", "State-gov"],
            "Private-sector": ["Private"],
            "Self-employed": ["Self-emp-not-inc", "Self-emp-inc"],
            "Unpaid": ["Without-pay"],
        },
        root="*",
    )
    education = Hierarchy.from_tree(
        {
            "No-HS": ["Preschool", "Primary", "Some-HS"],
            "HS-level": ["HS-grad", "Some-college", "Assoc"],
            "Higher-ed": ["Bachelors", "Masters", "Prof-school", "Doctorate"],
        },
        root="*",
    )
    marital = Hierarchy.from_tree(
        {
            "Alone": ["Never-married", "Divorced", "Separated", "Widowed"],
            "Partnered": ["Married"],
        },
        root="*",
    )
    country = Hierarchy.from_tree(
        {
            "North-America": ["United-States", "Canada", "Mexico", "Cuba"],
            "Asia": ["Philippines", "India", "China"],
            "Europe": ["Germany", "England"],
            "Elsewhere": ["Other"],
        },
        root="*",
    )
    occupation = Hierarchy.from_tree(
        {
            "White-collar": [
                "Tech-support", "Sales", "Exec-managerial",
                "Prof-specialty", "Adm-clerical",
            ],
            "Blue-collar": [
                "Craft-repair", "Handlers-cleaners", "Machine-op-inspct",
                "Farming-fishing", "Transport-moving",
            ],
            "Service": ["Other-service", "Protective-serv"],
        },
        root="*",
    )
    race = Hierarchy.flat(RACE)
    sex = Hierarchy.flat(SEX)
    age = IntervalHierarchy.uniform(15, 95, n_bins=16, merge_factor=2)  # 5y → 10y → 20y → 40y → *
    return {
        "workclass": workclass,
        "education": education,
        "marital_status": marital,
        "native_country": country,
        "occupation": occupation,
        "race": race,
        "sex": sex,
        "age": age,
    }
