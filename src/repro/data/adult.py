"""Synthetic Adult-shaped census dataset.

The canonical PPDP experiments run on the UCI Adult census extract. This
machine is offline, so :func:`load_adult` generates a deterministic
synthetic table with Adult's schema, approximate published marginals, and
the attribute correlations the experiments exercise:

* age drives marital-status and hours-per-week;
* education drives occupation and (strongly) income;
* the income label (``salary``: ``<=50K`` / ``>50K``) depends on education,
  age, hours, sex, and occupation through a logistic score, yielding the
  familiar ~24% positive rate and learnable structure for the
  classification-metric experiments.

If a real ``adult.data`` file is available, :func:`load_adult_file` parses
it into the same schema; experiments accept either source.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.schema import Schema
from ..core.table import Column, Table

__all__ = [
    "load_adult",
    "load_adult_file",
    "adult_schema",
    "ADULT_CATEGORICAL",
    "ADULT_NUMERIC",
]

WORKCLASS = [
    "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov", "State-gov", "Without-pay",
]
WORKCLASS_P = [0.75, 0.08, 0.035, 0.03, 0.065, 0.038, 0.002]

EDUCATION = [
    "Preschool", "Primary", "Some-HS", "HS-grad", "Some-college",
    "Assoc", "Bachelors", "Masters", "Prof-school", "Doctorate",
]
EDUCATION_P = [0.005, 0.04, 0.075, 0.32, 0.225, 0.075, 0.17, 0.055, 0.02, 0.015]
EDUCATION_YEARS = [1, 5, 9, 10, 12, 13, 14, 15, 16, 16]

MARITAL = ["Never-married", "Married", "Divorced", "Separated", "Widowed"]
OCCUPATION = [
    "Tech-support", "Craft-repair", "Other-service", "Sales",
    "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
    "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving", "Protective-serv",
]
RACE = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
RACE_P = [0.854, 0.096, 0.031, 0.01, 0.009]
SEX = ["Female", "Male"]
NATIVE_COUNTRY = [
    "United-States", "Mexico", "Philippines", "Germany", "Canada",
    "India", "England", "China", "Cuba", "Other",
]
NATIVE_P = [0.895, 0.02, 0.006, 0.005, 0.004, 0.004, 0.003, 0.003, 0.003, 0.057]
SALARY = ["<=50K", ">50K"]

ADULT_CATEGORICAL = [
    "workclass", "education", "marital_status", "occupation",
    "race", "sex", "native_country", "salary",
]
ADULT_NUMERIC = ["age", "education_num", "hours_per_week", "capital_gain"]


def adult_schema(sensitive: str = "occupation") -> Schema:
    """The standard publishing schema used throughout the experiments.

    QIs: age (numeric), workclass, education, marital_status, race, sex,
    native_country. Sensitive: ``occupation`` by default (swap in
    ``salary`` for the classification experiments, where salary is instead
    the mining label and stays insensitive).
    """
    categorical_qis = [
        name
        for name in ["workclass", "education", "marital_status", "race", "sex", "native_country"]
        if name != sensitive
    ]
    insensitive = [
        name
        for name in ["salary", "occupation", "education_num", "hours_per_week", "capital_gain"]
        if name != sensitive
    ]
    return Schema.build(
        quasi_identifiers=categorical_qis,
        numeric_quasi_identifiers=["age"],
        sensitive=[sensitive],
        insensitive=insensitive,
    )


def load_adult(n_rows: int = 5000, seed: int = 0) -> Table:
    """Generate the synthetic Adult-shaped table (deterministic in ``seed``)."""
    rng = np.random.default_rng(seed)

    age = np.clip(rng.normal(38.6, 13.6, n_rows).round(), 17, 90).astype(np.int64)
    education_idx = rng.choice(len(EDUCATION), size=n_rows, p=_norm(EDUCATION_P))
    education = [EDUCATION[i] for i in education_idx]
    education_num = np.array([EDUCATION_YEARS[i] for i in education_idx], dtype=np.int64)
    workclass_idx = rng.choice(len(WORKCLASS), size=n_rows, p=_norm(WORKCLASS_P))
    race_idx = rng.choice(len(RACE), size=n_rows, p=_norm(RACE_P))
    sex_idx = (rng.random(n_rows) < 0.668).astype(int)  # ~2/3 male
    country_idx = rng.choice(len(NATIVE_COUNTRY), size=n_rows, p=_norm(NATIVE_P))

    marital = _marital_from_age(age, rng)
    occupation_idx = _occupation_from_education(education_idx, rng)
    hours = _hours(age, sex_idx, rng)
    capital_gain = _capital_gain(education_idx, rng)
    salary = _salary(age, education_num, hours, sex_idx, occupation_idx, capital_gain, rng)

    return Table(
        [
            Column.categorical("workclass", [WORKCLASS[i] for i in workclass_idx], WORKCLASS),
            Column.categorical("education", education, EDUCATION),
            Column.categorical("marital_status", marital, MARITAL),
            Column.categorical("occupation", [OCCUPATION[i] for i in occupation_idx], OCCUPATION),
            Column.categorical("race", [RACE[i] for i in race_idx], RACE),
            Column.categorical("sex", [SEX[i] for i in sex_idx], SEX),
            Column.categorical(
                "native_country", [NATIVE_COUNTRY[i] for i in country_idx], NATIVE_COUNTRY
            ),
            Column.categorical("salary", [SALARY[i] for i in salary], SALARY),
            Column.numeric("age", age),
            Column.numeric("education_num", education_num),
            Column.numeric("hours_per_week", hours),
            Column.numeric("capital_gain", capital_gain),
        ]
    )


def load_adult_file(path: str | os.PathLike) -> Table:
    """Parse a real UCI ``adult.data`` file into the library schema."""
    raw_columns = [
        "age", "workclass", "fnlwgt", "education", "education_num",
        "marital_status", "occupation", "relationship", "race", "sex",
        "capital_gain", "capital_loss", "hours_per_week", "native_country",
        "salary",
    ]
    rows: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            parts = [p.strip() for p in line.split(",")]
            if len(parts) != len(raw_columns) or "?" in parts:
                continue
            rows.append(dict(zip(raw_columns, parts)))
    marital_map = {
        "Never-married": "Never-married",
        "Married-civ-spouse": "Married",
        "Married-spouse-absent": "Married",
        "Married-AF-spouse": "Married",
        "Divorced": "Divorced",
        "Separated": "Separated",
        "Widowed": "Widowed",
    }
    for row in rows:
        row["marital_status"] = marital_map.get(row["marital_status"], "Never-married")
        row["salary"] = row["salary"].rstrip(".")
        for numeric in ("age", "education_num", "hours_per_week", "capital_gain"):
            row[numeric] = float(row[numeric])
    return Table.from_rows(
        rows,
        categorical=[
            "workclass", "education", "marital_status", "occupation",
            "race", "sex", "native_country", "salary",
        ],
        numeric=ADULT_NUMERIC,
    )


# -- generation internals ----------------------------------------------------


def _norm(p) -> np.ndarray:
    arr = np.asarray(p, dtype=np.float64)
    return arr / arr.sum()


def _marital_from_age(age: np.ndarray, rng: np.random.Generator) -> list[str]:
    out = []
    for a in age:
        if a < 25:
            probs = [0.85, 0.12, 0.02, 0.01, 0.0]
        elif a < 40:
            probs = [0.32, 0.52, 0.11, 0.04, 0.01]
        elif a < 60:
            probs = [0.12, 0.60, 0.20, 0.04, 0.04]
        else:
            probs = [0.06, 0.52, 0.16, 0.03, 0.23]
        out.append(MARITAL[rng.choice(len(MARITAL), p=_norm(probs))])
    return out


def _occupation_from_education(education_idx: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Higher education shifts mass to professional/managerial occupations."""
    n_occ = len(OCCUPATION)
    base = np.ones(n_occ)
    professional = np.array([OCCUPATION.index(o) for o in ("Exec-managerial", "Prof-specialty", "Tech-support")])
    manual = np.array([OCCUPATION.index(o) for o in ("Craft-repair", "Handlers-cleaners", "Machine-op-inspct", "Farming-fishing", "Transport-moving")])
    out = np.empty(education_idx.shape[0], dtype=np.int64)
    for i, edu in enumerate(education_idx):
        weights = base.copy()
        tilt = (edu - 4.5) / 4.5  # -1 .. +1 across the education scale
        weights[professional] *= 1.0 + max(tilt, 0) * 4.0
        weights[manual] *= 1.0 + max(-tilt, 0) * 3.0
        out[i] = rng.choice(n_occ, p=_norm(weights))
    return out


def _hours(age: np.ndarray, sex_idx: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    base = rng.normal(40.4, 12.0, age.shape[0])
    base += np.where(sex_idx == 1, 2.5, -2.5)
    base -= np.where(age > 62, 8.0, 0.0)
    base -= np.where(age < 22, 6.0, 0.0)
    return np.clip(base.round(), 1, 99).astype(np.int64)


def _capital_gain(education_idx: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    has_gain = rng.random(education_idx.shape[0]) < (0.04 + 0.01 * education_idx)
    magnitude = rng.lognormal(8.0, 1.2, education_idx.shape[0])
    return np.where(has_gain, magnitude.round(), 0.0)


def _salary(age, education_num, hours, sex_idx, occupation_idx, capital_gain, rng) -> np.ndarray:
    professional = np.isin(
        occupation_idx,
        [OCCUPATION.index(o) for o in ("Exec-managerial", "Prof-specialty")],
    )
    score = (
        -8.1
        + 0.30 * education_num
        + 0.045 * np.clip(age, 17, 60)
        + 0.025 * hours
        + 0.55 * sex_idx
        + 0.9 * professional
        + 0.00008 * capital_gain
    )
    probability = 1.0 / (1.0 + np.exp(-score))
    return (rng.random(age.shape[0]) < probability).astype(int)
