"""Datasets: synthetic Adult census, hospital discharge, generic generators."""

from .adult import ADULT_CATEGORICAL, ADULT_NUMERIC, adult_schema, load_adult, load_adult_file
from .adult_hierarchy import adult_hierarchies, adult_hierarchy_specs
from .medical import DISEASES, load_medical, medical_hierarchies, medical_schema
from .synthetic import gaussian_numeric, random_scenario, zipf_categorical

__all__ = [
    "ADULT_CATEGORICAL",
    "ADULT_NUMERIC",
    "DISEASES",
    "adult_hierarchies",
    "adult_hierarchy_specs",
    "adult_schema",
    "gaussian_numeric",
    "load_adult",
    "load_adult_file",
    "load_medical",
    "medical_hierarchies",
    "medical_schema",
    "random_scenario",
    "zipf_categorical",
]
