"""Generic synthetic data generators used by tests and benchmarks.

Small, composable generators for stress-testing the substrate without the
full Adult machinery: Zipf-skewed categorical columns, Gaussian/uniform
numeric columns, and a helper that builds a complete publishing scenario
(table + schema + flat hierarchies) in one call.
"""

from __future__ import annotations

import numpy as np

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.schema import Schema
from ..core.table import Column, Table

__all__ = ["zipf_categorical", "gaussian_numeric", "random_scenario"]


def zipf_categorical(
    name: str, n_rows: int, n_values: int, skew: float = 1.2, seed: int = 0
) -> Column:
    """Categorical column with Zipf-distributed value frequencies."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_values + 1, dtype=np.float64)
    probs = ranks**-skew
    probs /= probs.sum()
    values = [f"{name}_{i}" for i in range(n_values)]
    draws = rng.choice(n_values, size=n_rows, p=probs)
    return Column.categorical(name, [values[i] for i in draws], values)


def gaussian_numeric(
    name: str, n_rows: int, mean: float = 0.0, std: float = 1.0, seed: int = 0
) -> Column:
    rng = np.random.default_rng(seed)
    return Column.numeric(name, rng.normal(mean, std, n_rows))


def random_scenario(
    n_rows: int = 500,
    n_categorical_qis: int = 2,
    n_values: int = 8,
    n_sensitive_values: int = 4,
    seed: int = 0,
) -> tuple[Table, Schema, dict]:
    """A complete random publishing scenario for property-based tests.

    Returns ``(table, schema, hierarchies)`` with ``n_categorical_qis``
    Zipf-skewed categorical QIs (binary-tree hierarchies), one numeric QI,
    and one sensitive column.
    """
    rng = np.random.default_rng(seed)
    columns: list[Column] = []
    hierarchies: dict = {}
    qi_names: list[str] = []
    for i in range(n_categorical_qis):
        name = f"qi{i}"
        columns.append(zipf_categorical(name, n_rows, n_values, seed=seed + i))
        hierarchies[name] = _binary_tree_hierarchy([f"{name}_{j}" for j in range(n_values)])
        qi_names.append(name)

    columns.append(Column.numeric("num", rng.normal(50, 15, n_rows).round()))
    hierarchies["num"] = IntervalHierarchy.uniform(-10, 110, n_bins=8, merge_factor=2)

    sensitive_values = [f"s{j}" for j in range(n_sensitive_values)]
    draws = rng.choice(n_sensitive_values, size=n_rows)
    columns.append(Column.categorical("sensitive", [sensitive_values[d] for d in draws], sensitive_values))

    table = Table(columns)
    schema = Schema.build(
        quasi_identifiers=qi_names,
        numeric_quasi_identifiers=["num"],
        sensitive=["sensitive"],
    )
    return table, schema, hierarchies


def _binary_tree_hierarchy(values: list[str]) -> Hierarchy:
    """Balanced binary-merge hierarchy over an ordered value list."""
    rows: dict[str, list] = {v: [] for v in values}
    group = list(range(len(values)))
    width = 2
    while width < 2 * len(values):
        for i, value in enumerate(values):
            rows[value].append(f"g{width}_{i // width}")
        width *= 2
    return Hierarchy.from_levels(rows)
