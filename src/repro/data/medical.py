"""Synthetic hospital-discharge dataset.

The ℓ-diversity and t-closeness papers motivate their models with a small
hospital inpatient table: quasi-identifiers (zipcode, age, nationality) and
a sensitive ``disease`` column whose distribution is skewed (a few common
conditions, a long tail of rare ones). This generator reproduces that
scenario at configurable scale, including:

* zipcode prefixes correlated with nationality (so generalizing zipcodes
  genuinely mixes nationalities — the structure the homogeneity attack
  exploits);
* disease prevalence dependent on age band (the skew the t-closeness
  similarity/skewness attacks exploit).
"""

from __future__ import annotations

import numpy as np

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.schema import Schema
from ..core.table import Column, Table

__all__ = ["load_medical", "medical_schema", "medical_hierarchies", "DISEASES"]

DISEASES = [
    "Flu", "Bronchitis", "Pneumonia", "Gastritis", "Ulcer",
    "Heart-disease", "Cancer", "HIV",
]
# Base prevalence — deliberately skewed (the skewness-attack precondition).
DISEASE_P = [0.30, 0.18, 0.12, 0.14, 0.08, 0.10, 0.06, 0.02]

NATIONALITIES = ["American", "Japanese", "Indian", "Russian", "Brazilian"]
ZIP_PREFIXES = {  # nationality → likely 3-digit zip prefixes
    "American": ["130", "131", "144"],
    "Japanese": ["130", "148"],
    "Indian": ["148", "149"],
    "Russian": ["144", "145"],
    "Brazilian": ["145", "149"],
}


def medical_schema() -> Schema:
    return Schema.build(
        quasi_identifiers=["zipcode", "nationality"],
        numeric_quasi_identifiers=["age"],
        sensitive=["disease"],
    )


def medical_hierarchies() -> dict:
    """Zipcode digit-masking hierarchy, nationality tree, age intervals."""
    zipcodes = sorted(
        {prefix + suffix for prefixes in ZIP_PREFIXES.values() for prefix in prefixes
         for suffix in ("05", "21", "48", "77")}
    )
    rows = {z: [z[:4] + "*", z[:3] + "**", z[:2] + "***", "*"] for z in zipcodes}
    zipcode = Hierarchy.from_levels(rows)
    nationality = Hierarchy.from_tree(
        {
            "Americas": ["American", "Brazilian"],
            "Asia": ["Japanese", "Indian"],
            "Europe": ["Russian"],
        },
        root="*",
    )
    age = IntervalHierarchy.uniform(0, 96, n_bins=16, merge_factor=2)
    return {"zipcode": zipcode, "nationality": nationality, "age": age}


def load_medical(n_rows: int = 3000, seed: int = 0) -> Table:
    """Generate the synthetic discharge table (deterministic in ``seed``)."""
    rng = np.random.default_rng(seed)
    nationality_idx = rng.choice(
        len(NATIONALITIES), size=n_rows, p=[0.55, 0.12, 0.13, 0.10, 0.10]
    )
    zipcodes = []
    for idx in nationality_idx:
        prefix = rng.choice(ZIP_PREFIXES[NATIONALITIES[idx]])
        suffix = rng.choice(["05", "21", "48", "77"])
        zipcodes.append(prefix + suffix)

    age = np.clip(rng.gamma(6.0, 8.0, n_rows).round(), 1, 95).astype(np.int64)
    diseases = _diseases_by_age(age, rng)

    return Table(
        [
            Column.categorical("zipcode", zipcodes),
            Column.categorical("nationality", [NATIONALITIES[i] for i in nationality_idx], NATIONALITIES),
            Column.categorical("disease", diseases, DISEASES),
            Column.numeric("age", age),
        ]
    )


def _diseases_by_age(age: np.ndarray, rng: np.random.Generator) -> list[str]:
    base = np.asarray(DISEASE_P, dtype=np.float64)
    heart, cancer, flu = DISEASES.index("Heart-disease"), DISEASES.index("Cancer"), DISEASES.index("Flu")
    out = []
    for a in age:
        weights = base.copy()
        if a >= 60:
            weights[heart] *= 3.0
            weights[cancer] *= 2.5
            weights[flu] *= 0.5
        elif a <= 15:
            weights[flu] *= 2.0
            weights[heart] *= 0.1
        out.append(DISEASES[rng.choice(len(DISEASES), p=weights / weights.sum())])
    return out
