"""Exception taxonomy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses distinguish schema problems, hierarchy problems,
infeasible anonymization requests, and privacy-budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A table/schema operation referenced a missing or mistyped attribute."""


class HierarchyError(ReproError):
    """A generalization hierarchy is malformed or does not cover a value."""


class InfeasibleError(ReproError):
    """No generalization satisfies the requested privacy constraints.

    Raised, e.g., when even the fully-generalized table (single equivalence
    class) violates a privacy model, or when suppression limits are exceeded.
    """


class BudgetError(ReproError):
    """A differential-privacy accountant has exhausted its budget."""


class ConfigError(ReproError):
    """A declarative job spec (``repro.api``) is malformed.

    Messages always name the offending key or registry name so a bad JSON
    job description can be fixed without reading library source.
    """


class NotFittedError(ReproError):
    """A mining model was asked to predict before being fitted."""
