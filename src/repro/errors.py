"""Exception taxonomy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses distinguish schema problems, hierarchy problems,
infeasible anonymization requests, privacy-budget exhaustion, and — since
the fault-tolerant batch executor — runtime execution failures (timeouts,
deadlines, crashed workers, injected faults).

:func:`classify_error` maps any exception onto the stable taxonomy label
that :class:`repro.api.JobFailure` records and services key their alerting
on; the labels are part of the JSON result schema (``docs/api.md``), so
they change only additively.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A table/schema operation referenced a missing or mistyped attribute."""


class HierarchyError(ReproError):
    """A generalization hierarchy is malformed or does not cover a value."""


class InfeasibleError(ReproError):
    """No generalization satisfies the requested privacy constraints.

    Raised, e.g., when even the fully-generalized table (single equivalence
    class) violates a privacy model, or when suppression limits are exceeded.
    """


class BudgetError(ReproError):
    """A differential-privacy accountant has exhausted its budget."""


class ConfigError(ReproError):
    """A declarative job spec (``repro.api``) is malformed.

    Messages always name the offending key or registry name so a bad JSON
    job description can be fixed without reading library source.
    """


class NotFittedError(ReproError):
    """A mining model was asked to predict before being fitted."""


class ExecutionError(ReproError):
    """A job or batch failed at run time for an operational reason.

    Distinct from :class:`ConfigError` (the request was malformed) and
    :class:`InfeasibleError` (the request is well-formed but unsatisfiable):
    an ``ExecutionError`` means the work itself was interrupted — it may
    well succeed if retried on healthy infrastructure or with a larger
    time budget.
    """


class JobTimeoutError(ExecutionError):
    """A single job exceeded its cooperative ``job_timeout`` budget."""


class BatchDeadlineError(ExecutionError):
    """The whole batch exceeded its cooperative ``batch_deadline`` budget."""


class WorkerCrashError(ExecutionError):
    """A process-backend worker died abnormally (killed, segfault, OOM)."""


class FaultInjectedError(ExecutionError):
    """Raised by an armed :mod:`repro.core.faults` injection point.

    Only ever seen in chaos tests and fault drills; production code never
    raises it unless a fault plan has been armed explicitly.
    """


#: Stable taxonomy labels emitted by :func:`classify_error`, most specific
#: first. ``JobFailure.error["type"]`` is always one of these.
ERROR_TAXONOMY = (
    "timeout",
    "deadline",
    "worker-crash",
    "fault",
    "infeasible",
    "budget",
    "config",
    "schema",
    "hierarchy",
    "not-fitted",
    "repro",
    "resource",
    "os",
    "runtime",
)

_CLASSIFIERS: tuple[tuple[type[BaseException], str], ...] = (
    (JobTimeoutError, "timeout"),
    (BatchDeadlineError, "deadline"),
    (WorkerCrashError, "worker-crash"),
    (FaultInjectedError, "fault"),
    (InfeasibleError, "infeasible"),
    (BudgetError, "budget"),
    (ConfigError, "config"),
    (SchemaError, "schema"),
    (HierarchyError, "hierarchy"),
    (NotFittedError, "not-fitted"),
    (ReproError, "repro"),
    (MemoryError, "resource"),
    (OSError, "os"),
)


def classify_error(exc: BaseException) -> str:
    """Map an exception onto its :data:`ERROR_TAXONOMY` label.

    >>> classify_error(JobTimeoutError("too slow"))
    'timeout'
    >>> classify_error(ValueError("oops"))
    'runtime'
    """
    for exc_type, label in _CLASSIFIERS:
        if isinstance(exc, exc_type):
            return label
    return "runtime"
