"""Aggregate-query workload (the E10 experiment axis).

Random conjunctive COUNT queries of the form

    COUNT(*) WHERE qi_a IN V_a AND qi_b IN V_b AND sensitive = s

evaluated three ways:

* **truth** — on the original table;
* **generalized estimate** — on a generalized release, assuming uniformity
  within a generalized value (a released cell covering ``c`` ground values,
  of which ``m`` are in the predicate, contributes ``m / c``);
* **anatomy estimate** — exact QI predicate on the QIT, sensitive predicate
  estimated from the group's ST distribution.

Error statistic: median relative error over the workload, the standard
reporting in the Anatomy/injection papers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..algorithms.anatomy import AnatomizedRelease
from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.release import Release
from ..core.table import Table

__all__ = ["CountQuery", "random_workload", "true_count", "generalized_count",
           "anatomy_count", "median_relative_error"]


@dataclass(frozen=True)
class CountQuery:
    """Conjunctive predicate: per-attribute allowed ground-value sets."""

    qi_predicates: Mapping[str, frozenset]
    sensitive: str | None = None
    sensitive_value: object | None = None


def random_workload(
    table: Table,
    qi_names: Sequence[str],
    sensitive: str | None = None,
    n_queries: int = 100,
    selectivity: float = 0.5,
    seed: int = 0,
) -> list[CountQuery]:
    """Random queries selecting ~``selectivity`` of each QI's ground domain."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_queries):
        predicates: dict[str, frozenset] = {}
        for name in qi_names:
            col = table.column(name)
            if col.is_categorical:
                domain = list(col.categories)
            else:
                domain = sorted(set(col.values.tolist()))  # type: ignore[union-attr]
            n_pick = max(int(round(len(domain) * selectivity)), 1)
            picked = rng.choice(len(domain), size=n_pick, replace=False)
            predicates[name] = frozenset(domain[i] for i in picked)
        s_value = None
        if sensitive is not None:
            s_categories = table.column(sensitive).categories
            s_value = s_categories[int(rng.integers(len(s_categories)))]
        queries.append(
            CountQuery(qi_predicates=predicates, sensitive=sensitive, sensitive_value=s_value)
        )
    return queries


def true_count(table: Table, query: CountQuery) -> float:
    """Exact answer on the original table."""
    mask = np.ones(table.n_rows, dtype=bool)
    for name, allowed in query.qi_predicates.items():
        col = table.column(name)
        if col.is_categorical:
            allowed_codes = {i for i, c in enumerate(col.categories) if c in allowed}
            mask &= np.isin(col.codes, list(allowed_codes))
        else:
            values = col.values
            assert values is not None
            mask &= np.isin(values, list(allowed))
    if query.sensitive is not None:
        col = table.column(query.sensitive)
        code = col.categories.index(query.sensitive_value)
        mask &= col.codes == code
    return float(mask.sum())


def generalized_count(
    release: Release,
    query: CountQuery,
    hierarchies: Mapping[str, Hierarchy | IntervalHierarchy],
    original: Table | None = None,
) -> float:
    """Uniformity-assumption estimate on a generalized release."""
    table = release.table
    estimate = np.ones(table.n_rows, dtype=np.float64)
    for name, allowed in query.qi_predicates.items():
        col = table.column(name)
        hierarchy = hierarchies[name]
        fractions = _label_overlap_fractions(hierarchy, col.categories, allowed, original, name)
        if col.is_categorical:
            estimate *= fractions[col.codes]
        else:  # untouched numeric column: exact membership
            values = col.values
            assert values is not None
            estimate *= np.isin(values, list(allowed)).astype(np.float64)
    if query.sensitive is not None:
        col = table.column(query.sensitive)
        code = col.categories.index(query.sensitive_value)
        estimate *= (col.codes == code).astype(np.float64)
    return float(estimate.sum())


def anatomy_count(anatomized: AnatomizedRelease, query: CountQuery) -> float:
    """Estimate on an Anatomy (QIT, ST) pair."""
    qit = anatomized.qit
    mask = np.ones(qit.n_rows, dtype=bool)
    for name, allowed in query.qi_predicates.items():
        col = qit.column(name)
        if col.is_categorical:
            allowed_codes = {i for i, c in enumerate(col.categories) if c in allowed}
            mask &= np.isin(col.codes, list(allowed_codes))
        else:
            values = col.values
            assert values is not None
            mask &= np.isin(values, list(allowed))
    if query.sensitive is None:
        return float(mask.sum())
    total = 0.0
    group_ids = qit.values("group_id").astype(np.int64)
    for gid in np.unique(group_ids[mask]):
        st = anatomized.st[int(gid)]
        group_size = sum(st.values())
        fraction = st.get(query.sensitive_value, 0) / group_size if group_size else 0.0
        matched = float((mask & (group_ids == gid)).sum())
        total += matched * fraction
    return total


def median_relative_error(
    truths: Sequence[float], estimates: Sequence[float], sanity: float = 1.0
) -> float:
    """Median of |estimate - truth| / max(truth, sanity)."""
    truths = np.asarray(truths, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    return float(np.median(np.abs(estimates - truths) / np.maximum(truths, sanity)))


def _label_overlap_fractions(
    hierarchy: Hierarchy | IntervalHierarchy,
    labels: Sequence,
    allowed: frozenset,
    original: Table | None,
    name: str,
) -> np.ndarray:
    """For each released label: fraction of its cover inside ``allowed``.

    Categorical labels use hierarchy cover sets; interval labels use the
    fraction of allowed *numeric points* falling in the interval relative to
    the interval's point count in the original data when available, else the
    fraction of allowed values among all distinct values in range.
    """
    out = np.zeros(len(labels), dtype=np.float64)
    if isinstance(hierarchy, Hierarchy):
        ground = hierarchy.ground
        allowed_ground = {g for g in ground if g in allowed}
        cover_index: dict[object, set] = {g: {g} for g in ground}
        for level in range(1, hierarchy.height + 1):
            for code, label in enumerate(hierarchy.labels(level)):
                members = {ground[int(i)] for i in hierarchy.cover_codes(level, code)}
                existing = cover_index.get(label)
                if existing is None or len(members) < len(existing):
                    cover_index[label] = members
        for i, label in enumerate(labels):
            members = cover_index.get(label, set(ground))
            out[i] = len(members & allowed_ground) / len(members) if members else 0.0
        return out

    # IntervalHierarchy: labels look like "[lo-hi)"; allowed is a set of points.
    allowed_points = np.array(sorted(allowed), dtype=np.float64)
    for i, label in enumerate(labels):
        lo, hi = _parse_interval(str(label))
        inside = allowed_points[(allowed_points >= lo) & (allowed_points < hi)]
        if original is not None:
            values = original.values(name)
            in_range = values[(values >= lo) & (values < hi)]
            if in_range.size:
                out[i] = float(np.isin(in_range, inside).mean())
                continue
        width = max(hi - lo, 1e-12)
        out[i] = min(inside.size / width, 1.0)
    return out


def _parse_interval(text: str) -> tuple[float, float]:
    if not (text.startswith("[") and "-" in text):
        value = float(text)
        return value, value + 1e-12
    body = text[1:-1]
    for pos in range(1, len(body)):
        if body[pos] == "-" and body[pos - 1] not in "eE":
            try:
                return float(body[:pos]), float(body[pos + 1 :])
            except ValueError:
                continue
    value = float(body)
    return value, value + 1e-12
