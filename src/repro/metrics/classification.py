"""Classification-utility workload (the survey's CM axis).

Two flavours:

* :func:`classification_metric` — Iyengar's CM: each record is penalized if
  its class label disagrees with the majority label of its equivalence
  class (suppressed records are penalized if they disagree with the global
  majority). Normalized by row count.
* :func:`accuracy_experiment` — empirical workload: train a learner on the
  anonymized QIs to predict a label column, test on a held-out split, and
  compare against (a) the same learner on the original data and (b) the
  majority-vote baseline. This is the series the E4 bench reports.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.release import Release
from ..core.table import Table
from ..errors import SchemaError
from ..mining.naive_bayes import NaiveBayes
from ..mining.split import encode_features, stratified_split

__all__ = ["classification_metric", "accuracy_experiment", "majority_baseline"]


def classification_metric(release: Release, original: Table, label: str) -> float:
    """Iyengar's CM in [0, 1]: fraction of minority-label (or suppressed-
    minority) records."""
    label_codes_full = original.codes(label)
    kept = release.kept_rows
    released_labels = label_codes_full[kept] if kept is not None else label_codes_full
    if released_labels.shape[0] != release.n_rows:
        raise SchemaError("release is not row-aligned with the original table")

    n_original = release.original_n_rows or release.n_rows
    penalty = 0.0
    for group in release.partition().groups:
        counts = np.bincount(released_labels[group])
        penalty += float(group.size - counts.max())

    if release.suppressed:
        global_counts = np.bincount(label_codes_full)
        majority = int(global_counts.argmax())
        if kept is not None:
            dropped = np.setdiff1d(np.arange(n_original), kept, assume_unique=True)
            penalty += float((label_codes_full[dropped] != majority).sum())
        else:  # pragma: no cover - suppressed implies kept_rows recorded
            penalty += release.suppressed
    return penalty / n_original


def majority_baseline(labels: np.ndarray) -> float:
    """Accuracy of always answering the most common label."""
    counts = np.bincount(np.asarray(labels, dtype=np.int64))
    return float(counts.max() / counts.sum())


def accuracy_experiment(
    original: Table,
    release: Release,
    label: str,
    feature_names: Sequence[str] | None = None,
    learner_factory: Callable = NaiveBayes,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> dict:
    """Train-on-anonymized vs train-on-original accuracy comparison.

    Both learners are evaluated on the same held-out rows (of the anonymized
    and original encodings respectively), so the gap isolates the
    generalization damage. Returns a dict with ``original_accuracy``,
    ``anonymized_accuracy``, ``baseline_accuracy``, and ``relative_loss``.
    """
    feature_names = (
        list(feature_names) if feature_names is not None else release.schema.quasi_identifiers
    )
    labels_full = original.codes(label)
    kept = release.kept_rows
    row_map = kept if kept is not None else np.arange(original.n_rows)
    labels = labels_full[row_map]

    anonymized_features = encode_features(release.table, feature_names)
    original_features = encode_features(original, feature_names)[row_map]

    train, test = stratified_split(labels, test_fraction=test_fraction, seed=seed)
    model_original = learner_factory().fit(original_features[train], labels[train])
    model_anonymized = learner_factory().fit(anonymized_features[train], labels[train])

    original_accuracy = model_original.score(original_features[test], labels[test])
    anonymized_accuracy = model_anonymized.score(anonymized_features[test], labels[test])
    baseline = majority_baseline(labels[train])
    denominator = max(original_accuracy - baseline, 1e-12)
    return {
        "original_accuracy": original_accuracy,
        "anonymized_accuracy": anonymized_accuracy,
        "baseline_accuracy": baseline,
        "relative_loss": (original_accuracy - anonymized_accuracy) / denominator,
    }
