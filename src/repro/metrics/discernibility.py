"""Partition-shape metrics.

* **Discernibility metric (DM)** (Bayardo & Agrawal): each record is charged
  the size of its equivalence class; suppressed records are charged the full
  table size. DM = Σ |EC|² + |suppressed| · n.
* **C_avg** (normalized average equivalence-class size, the Mondrian paper's
  metric): ``(n_published / n_classes) / k`` — 1.0 means classes are exactly
  the minimum feasible size, larger means over-generalization.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import EquivalenceClasses
from ..core.release import Release

__all__ = ["discernibility", "c_avg", "discernibility_of_release", "c_avg_of_release"]


def discernibility(partition: EquivalenceClasses, n_total: int, n_suppressed: int = 0) -> float:
    """DM over an explicit partition; ``n_total`` is the original row count."""
    sizes = partition.sizes().astype(np.float64)
    return float((sizes**2).sum() + n_suppressed * n_total)


def c_avg(partition: EquivalenceClasses, k: int) -> float:
    """Normalized average equivalence-class size against target ``k``."""
    if len(partition) == 0 or k < 1:
        return float("inf")
    published = float(partition.sizes().sum())
    return (published / len(partition)) / k


def discernibility_of_release(release: Release) -> float:
    n_total = release.original_n_rows or release.n_rows
    return discernibility(release.partition(), n_total, release.suppressed)


def c_avg_of_release(release: Release, k: int) -> float:
    return c_avg(release.partition(), k)
