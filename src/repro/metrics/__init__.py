"""Information-loss and utility metrics."""

from .classification import accuracy_experiment, classification_metric, majority_baseline
from .discernibility import c_avg, c_avg_of_release, discernibility, discernibility_of_release
from .distribution import (
    cramers_v,
    distribution_report,
    hellinger,
    js_divergence,
    kl_divergence,
    marginal_distance,
    pairwise_association_error,
    total_variation,
)
from .entropy_loss import column_entropy_loss, non_uniform_entropy
from .loss import gcp, iloss, minimal_distortion, ncp_column
from .precision import precision
from .query import (
    CountQuery,
    anatomy_count,
    generalized_count,
    median_relative_error,
    random_workload,
    true_count,
)

__all__ = [
    "CountQuery",
    "accuracy_experiment",
    "anatomy_count",
    "c_avg",
    "c_avg_of_release",
    "classification_metric",
    "column_entropy_loss",
    "cramers_v",
    "distribution_report",
    "hellinger",
    "js_divergence",
    "kl_divergence",
    "marginal_distance",
    "pairwise_association_error",
    "total_variation",
    "discernibility",
    "discernibility_of_release",
    "gcp",
    "generalized_count",
    "iloss",
    "majority_baseline",
    "median_relative_error",
    "minimal_distortion",
    "ncp_column",
    "non_uniform_entropy",
    "precision",
    "random_workload",
    "true_count",
]
