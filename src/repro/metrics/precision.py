"""Samarati/Sweeney precision (Prec) metric.

The earliest generalization-loss metric: each cell is charged the fraction
of its hierarchy climbed — ``level / height`` for full-domain categorical
recodings — and Prec is one minus the average charge:

    Prec(RT) = 1 − (Σ_cells level_of(cell) / height_of(attribute)) / (|cells|)

For node (full-domain) releases this is exact from the node vector; for
local recodings we charge each released label the lowest hierarchy level it
appears at.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.release import Release
from ..errors import SchemaError

__all__ = ["precision"]


def precision(
    release: Release,
    hierarchies: Mapping[str, Hierarchy | IntervalHierarchy],
    qi_names: Sequence[str] | None = None,
) -> float:
    """Prec in [0, 1]; 1 = untouched data, 0 = fully generalized."""
    qi_names = list(qi_names) if qi_names is not None else release.schema.quasi_identifiers
    if not qi_names:
        raise SchemaError("precision needs at least one quasi-identifier")

    total_charge = 0.0
    n_cells = 0
    for position, name in enumerate(qi_names):
        hierarchy = hierarchies[name]
        height = max(hierarchy.height, 1)
        if release.node is not None:
            level = int(release.node[position])
            total_charge += release.n_rows * (level / height)
            n_cells += release.n_rows
            continue
        column = release.table.column(name)
        if not column.is_categorical:
            n_cells += release.n_rows  # untouched numeric: zero charge
            continue
        level_of_label = _label_levels(hierarchy)
        charges = np.array(
            [level_of_label.get(label, hierarchy.height) for label in column.categories],
            dtype=np.float64,
        )
        total_charge += float(charges[column.codes].sum()) / height
        n_cells += release.n_rows
    # Suppressed records are fully generalized cells.
    total_charge += release.suppressed * len(qi_names)
    n_cells += release.suppressed * len(qi_names)
    if release.suppressed:
        # The per-row cells above counted only published rows; align counts.
        pass
    return 1.0 - total_charge / n_cells if n_cells else 1.0


def _label_levels(hierarchy: Hierarchy | IntervalHierarchy) -> dict:
    """Lowest hierarchy level at which each label appears."""
    levels: dict = {}
    if isinstance(hierarchy, Hierarchy):
        for level in range(hierarchy.height + 1):
            for label in hierarchy.labels(level):
                levels.setdefault(label, level)
        return levels
    for level in range(1, hierarchy.height + 1):
        for interval in hierarchy.intervals(level):
            levels.setdefault(hierarchy.label(interval), level)
    return levels
