"""Generalization information-loss metrics.

* **NCP** (Normalized Certainty Penalty) per cell: for a categorical value
  generalized to a hierarchy node covering ``c`` of ``|domain|`` ground
  values, NCP = ``(c - 1) / (|domain| - 1)`` (0 for unchanged, 1 for fully
  suppressed). For a numeric value generalized to an interval of width ``w``
  over a domain span ``S``, NCP = ``w / S``.
* **GCP** (Global Certainty Penalty): average NCP over all cells of the
  release; suppressed records count as fully lost (NCP 1 per QI cell).
* **ILoss** (Xiao & Tao): same per-cell fraction but summed, optionally with
  per-attribute weights.
* **Minimal distortion** (Samarati): one unit per cell-level generalization
  step; only meaningful for full-domain releases that carry a lattice node.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.release import Release
from ..core.table import Table
from ..errors import SchemaError

__all__ = ["ncp_column", "gcp", "iloss", "minimal_distortion"]


def ncp_column(
    original: Table,
    released: Table,
    name: str,
    hierarchy: Hierarchy | IntervalHierarchy,
    kept_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Per-row NCP of one quasi-identifier in the released table.

    ``kept_rows`` maps released rows back to original rows when suppression
    dropped records; the returned array is aligned with the *released* table.
    """
    released_col = released.column(name)
    if isinstance(hierarchy, IntervalHierarchy):
        if not released_col.is_categorical:
            return np.zeros(released.n_rows)  # untouched numeric column
        widths = _interval_widths(released_col.categories)
        span = hierarchy.span
        return widths[released_col.codes] / span

    # Categorical: cost of each released label = (leaves covered - 1)/(|dom|-1)
    domain_size = len(hierarchy.ground)
    if domain_size <= 1:
        return np.zeros(released.n_rows)
    cover = _label_cover_counts(hierarchy, released_col.categories)
    return (cover[released_col.codes] - 1) / (domain_size - 1)


def gcp(
    original: Table,
    release: Release,
    hierarchies: Mapping[str, Hierarchy | IntervalHierarchy],
    qi_names: Sequence[str] | None = None,
) -> float:
    """Global Certainty Penalty in [0, 1]; suppressed rows cost 1 per cell."""
    qi_names = list(qi_names) if qi_names is not None else release.schema.quasi_identifiers
    if not qi_names:
        raise SchemaError("GCP needs at least one quasi-identifier")
    released = release.table
    per_cell_total = 0.0
    for name in qi_names:
        per_cell_total += float(
            ncp_column(original, released, name, hierarchies[name], release.kept_rows).sum()
        )
    n_original = release.original_n_rows or released.n_rows
    suppressed_cost = float(release.suppressed * len(qi_names))
    return (per_cell_total + suppressed_cost) / (n_original * len(qi_names))


def iloss(
    original: Table,
    release: Release,
    hierarchies: Mapping[str, Hierarchy | IntervalHierarchy],
    weights: Mapping[str, float] | None = None,
) -> float:
    """Weighted sum of per-cell loss fractions (un-normalized GCP variant)."""
    qi_names = release.schema.quasi_identifiers
    total = 0.0
    for name in qi_names:
        weight = (weights or {}).get(name, 1.0)
        total += weight * float(
            ncp_column(original, release.table, name, hierarchies[name], release.kept_rows).sum()
        )
        total += weight * release.suppressed
    return total


def minimal_distortion(release: Release) -> int:
    """Total generalization steps applied (node releases only)."""
    if release.node is None:
        raise SchemaError("minimal distortion requires a full-domain (node) release")
    return int(sum(release.node)) * release.n_rows


# -- helpers -------------------------------------------------------------------


def _label_cover_counts(hierarchy: Hierarchy, labels: Sequence) -> np.ndarray:
    """For each released label, how many ground values it covers.

    Released labels can come from any hierarchy level (local recoding mixes
    levels), so build a label → cover-count index across all levels. Ground
    labels cover 1. Unknown labels (e.g. ``"*"`` from suppression) cover the
    whole domain.
    """
    index: dict = {value: 1 for value in hierarchy.ground}
    for level in range(1, hierarchy.height + 1):
        counts = hierarchy.leaf_count(level)
        for code, label in enumerate(hierarchy.labels(level)):
            # Keep the smallest cover if a label string repeats across levels.
            existing = index.get(label)
            cover = int(counts[code])
            if existing is None or cover < existing:
                index[label] = cover
    domain_size = len(hierarchy.ground)
    return np.array([index.get(label, domain_size) for label in labels], dtype=np.float64)


def _interval_widths(labels: Sequence) -> np.ndarray:
    """Width of each ``"[lo-hi)"`` / ``"[lo-hi]"`` label; 0 for point labels."""
    widths = np.zeros(len(labels))
    for i, label in enumerate(labels):
        text = str(label)
        if text.startswith("[") and "-" in text:
            body = text[1:-1]
            lo, hi = _split_interval(body)
            widths[i] = hi - lo
    return widths


def _split_interval(body: str) -> tuple[float, float]:
    """Split ``"lo-hi"`` handling negative numbers and scientific notation."""
    for pos in range(1, len(body)):
        if body[pos] == "-" and body[pos - 1] not in "eE":
            try:
                return float(body[:pos]), float(body[pos + 1 :])
            except ValueError:
                continue
    value = float(body)
    return value, value
