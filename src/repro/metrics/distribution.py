"""Distributional utility metrics.

Loss metrics like NCP/GCP score *cell-level* distortion. Synthetic-data
pipelines (the DP synthesizers, Anatomy, slicing) are instead judged on how
well the released data preserve *statistics*: marginal distributions and
pairwise association structure. This module provides the standard distances
and a one-call utility report:

* :func:`total_variation`, :func:`kl_divergence`, :func:`js_divergence`,
  :func:`hellinger` — f-divergences between two discrete distributions.
* :func:`marginal_distance` — any of the above between the original and
  released marginal of one column.
* :func:`cramers_v` / :func:`pairwise_association_error` — Cramér's V
  association matrix and its preservation across a release.
* :func:`distribution_report` — per-column and pairwise summary used by the
  synthesizer benchmarks (E24) and examples.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from ..core.table import Table
from ..errors import SchemaError

__all__ = [
    "total_variation",
    "kl_divergence",
    "js_divergence",
    "hellinger",
    "marginal_distance",
    "cramers_v",
    "pairwise_association_error",
    "distribution_report",
]

_DISTANCES = {}


def _register(fn):
    _DISTANCES[fn.__name__] = fn
    return fn


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise SchemaError(f"distributions have different shapes: {p.shape} vs {q.shape}")
    if (p < 0).any() or (q < 0).any():
        raise SchemaError("distributions must be non-negative")
    p_sum, q_sum = p.sum(), q.sum()
    if p_sum <= 0 or q_sum <= 0:
        raise SchemaError("distributions must have positive mass")
    return p / p_sum, q / q_sum


@_register
def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """TV distance: half the L1 distance; in [0, 1]."""
    p, q = _validate_pair(p, q)
    return float(0.5 * np.abs(p - q).sum())


@_register
def kl_divergence(p: np.ndarray, q: np.ndarray, smoothing: float = 1e-9) -> float:
    """KL(p ‖ q) with additive smoothing so empty released cells stay finite."""
    p, q = _validate_pair(p, q)
    if smoothing:
        p = (p + smoothing) / (1.0 + smoothing * p.size)
        q = (q + smoothing) / (1.0 + smoothing * q.size)
    support = p > 0
    if (q[support] <= 0).any():
        return float("inf")
    return float(np.sum(p[support] * np.log(p[support] / q[support])))


@_register
def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen–Shannon divergence (symmetric, bounded by log 2)."""
    p, q = _validate_pair(p, q)
    m = 0.5 * (p + q)
    # 0.5 * (p + q) underflows to 0 when a cell holds the smallest subnormal
    # float, which would send kl_divergence to inf on a cell the mixture
    # actually covers; max(p, q) is a valid stand-in (>= the true m up to a
    # factor of 2, so the log 2 bound still holds).
    underflow = (m == 0) & ((p > 0) | (q > 0))
    if underflow.any():
        m = np.where(underflow, np.maximum(p, q), m)
    js = 0.5 * kl_divergence(p, m, smoothing=0.0) + 0.5 * kl_divergence(q, m, smoothing=0.0)
    # Rounding in the two KL sums can leave a ~1e-18 negative residue when
    # p and q are (nearly) identical; the true divergence is >= 0.
    return max(js, 0.0)


@_register
def hellinger(p: np.ndarray, q: np.ndarray) -> float:
    """Hellinger distance; in [0, 1]."""
    p, q = _validate_pair(p, q)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p) - np.sqrt(q)) ** 2)))


def _marginal(table: Table, column: str) -> np.ndarray:
    col = table.column(column)
    if not col.is_categorical:
        raise SchemaError(f"distribution metrics need categorical columns; got numeric {column!r}")
    return np.bincount(col.codes, minlength=len(col.categories)).astype(np.float64)


def _aligned_marginals(original: Table, released: Table, column: str) -> tuple[np.ndarray, np.ndarray]:
    """Marginals of both tables over the *union* of the two category lists."""
    orig_col, rel_col = original.column(column), released.column(column)
    if not orig_col.is_categorical or not rel_col.is_categorical:
        raise SchemaError(
            f"distribution metrics need categorical columns; {column!r} is numeric"
        )
    union = list(orig_col.categories)
    index = {v: i for i, v in enumerate(union)}
    for v in rel_col.categories:
        if v not in index:
            index[v] = len(union)
            union.append(v)
    p = np.zeros(len(union))
    q = np.zeros(len(union))
    for value, count in orig_col.value_counts().items():
        p[index[value]] += count
    for value, count in rel_col.value_counts().items():
        q[index[value]] += count
    return p, q


def marginal_distance(
    original: Table, released: Table, column: str, metric: str = "total_variation"
) -> float:
    """Distance between the original and released marginal of one column."""
    if metric not in _DISTANCES:
        raise SchemaError(f"unknown metric {metric!r}; have {sorted(_DISTANCES)}")
    p, q = _aligned_marginals(original, released, column)
    return _DISTANCES[metric](p, q)


def cramers_v(table: Table, col_a: str, col_b: str) -> float:
    """Cramér's V association between two categorical columns; in [0, 1].

    The bias-uncorrected version (chi² / (n · min(r−1, c−1)))^½ — the
    released-vs-original *difference* is what matters, and both sides use
    the same estimator.
    """
    a, b = table.codes(col_a), table.codes(col_b)
    n_a = len(table.column(col_a).categories)
    n_b = len(table.column(col_b).categories)
    joint = np.zeros((n_a, n_b))
    np.add.at(joint, (a, b), 1.0)
    n = joint.sum()
    if n == 0:
        return 0.0
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.where(expected > 0, (joint - expected) ** 2 / expected, 0.0).sum()
    k = min((row > 0).sum(), (col > 0).sum())
    if k <= 1:
        return 0.0
    return float(np.sqrt(chi2 / (n * (k - 1))))


def pairwise_association_error(
    original: Table, released: Table, columns: Sequence[str]
) -> float:
    """Mean |ΔCramér's V| over all column pairs — structure preservation."""
    pairs = list(combinations(columns, 2))
    if not pairs:
        raise SchemaError("need at least two columns for pairwise association")
    errors = [
        abs(cramers_v(original, a, b) - cramers_v(released, a, b)) for a, b in pairs
    ]
    return float(np.mean(errors))


def distribution_report(
    original: Table, released: Table, columns: Sequence[str]
) -> dict:
    """One-call utility summary for a released/synthetic table.

    Returns per-column TV/JS distances, their averages, and the pairwise
    association error. All columns must be categorical in both tables.
    """
    per_column = {}
    for name in columns:
        per_column[name] = {
            "tv": marginal_distance(original, released, name, "total_variation"),
            "js": marginal_distance(original, released, name, "js_divergence"),
        }
    report = {
        "per_column": per_column,
        "avg_tv": float(np.mean([v["tv"] for v in per_column.values()])),
        "avg_js": float(np.mean([v["js"] for v in per_column.values()])),
    }
    if len(columns) >= 2:
        report["association_error"] = pairwise_association_error(original, released, columns)
    return report
