"""Non-uniform entropy information loss.

Measures, per quasi-identifier cell, how much information (in bits) is lost
by generalization: a released value ``g`` that covers ground values with
empirical frequencies ``p_1..p_c`` (conditional on ``g``) costs the entropy
of that conditional distribution. Summing over cells gives the total
uncertainty introduced; normalizing by the entropy of the fully-suppressed
table maps it to [0, 1].

Unlike NCP, this metric is *data-aware*: generalizing a value that is nearly
always the same ground value costs almost nothing.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.hierarchy import Hierarchy, IntervalHierarchy
from ..core.release import Release
from ..core.table import Table
from ..errors import SchemaError

__all__ = ["non_uniform_entropy", "column_entropy_loss"]


def column_entropy_loss(
    original: Table,
    release: Release,
    name: str,
    hierarchy: Hierarchy | IntervalHierarchy,
) -> float:
    """Total conditional entropy (bits) introduced on one categorical QI."""
    released_col = release.table.column(name)
    if not released_col.is_categorical:
        return 0.0  # untouched numeric column loses nothing

    original_col = original.column(name)
    kept = release.kept_rows
    if original_col.is_categorical:
        ground_codes = original_col.codes
    else:
        # Numeric original: discretize to the hierarchy's base bins so the
        # conditional distribution is over base intervals.
        assert isinstance(hierarchy, IntervalHierarchy)
        ground_codes = hierarchy.bin_values(original_col.values, 1)
    if kept is not None:
        ground_codes = ground_codes[kept]
    released_codes = released_col.codes
    if released_codes.shape[0] != ground_codes.shape[0]:
        raise SchemaError(
            f"released column {name!r} is not aligned with the original table; "
            "pass the release's kept_rows"
        )

    total_bits = 0.0
    for code in np.unique(released_codes):
        mask = released_codes == code
        counts = np.bincount(ground_codes[mask])
        total_bits += float(mask.sum()) * _entropy_bits(counts)
    return total_bits


def non_uniform_entropy(
    original: Table,
    release: Release,
    hierarchies: Mapping[str, Hierarchy | IntervalHierarchy],
    qi_names: Sequence[str] | None = None,
) -> float:
    """Normalized entropy loss in [0, 1] across all quasi-identifiers."""
    qi_names = list(qi_names) if qi_names is not None else release.schema.quasi_identifiers
    lost = 0.0
    worst = 0.0
    kept = release.kept_rows
    for name in qi_names:
        lost += column_entropy_loss(original, release, name, hierarchies[name])
        original_col = original.column(name)
        if original_col.is_categorical:
            ground_codes = original_col.codes
        else:
            hierarchy = hierarchies[name]
            assert isinstance(hierarchy, IntervalHierarchy)
            ground_codes = hierarchy.bin_values(original_col.values, 1)
        if kept is not None:
            ground_codes = ground_codes[kept]
        worst += float(ground_codes.shape[0]) * _entropy_bits(np.bincount(ground_codes))
    if worst == 0:
        return 0.0
    return min(lost / worst, 1.0)


def _entropy_bits(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())
