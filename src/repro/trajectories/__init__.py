"""Trajectory (spatio-temporal) data publishing: LKC-privacy by suppression."""

from .anonymize import TrajectoryLKC
from .attack import subsequence_linkage_attack
from .model import Doublet, TrajectoryDB, generate_trajectories, is_subsequence

__all__ = [
    "Doublet",
    "TrajectoryDB",
    "TrajectoryLKC",
    "generate_trajectories",
    "is_subsequence",
    "subsequence_linkage_attack",
]
