"""Subsequence-linkage attack on trajectory releases.

Simulates the LKC adversary: for sampled victims, draw a random
``L``-doublet subsequence of the victim's *original* trajectory as the
attacker's background knowledge, then match it against the published
database. Reports identity disclosure (unique/small candidate sets) and
attribute disclosure (confidence of the victim's sensitive value among
candidates).
"""

from __future__ import annotations

import numpy as np

from .model import TrajectoryDB, is_subsequence

__all__ = ["subsequence_linkage_attack"]


def subsequence_linkage_attack(
    original: TrajectoryDB,
    published: TrajectoryDB,
    l: int,
    n_victims: int = 100,
    seed: int = 0,
) -> dict:
    """Attack the published DB with L-doublet knowledge from the original.

    The published database must be row-aligned with the original (global
    suppression preserves order). Knowledge doublets that were suppressed
    simply fail to match any published doublet — the attacker still uses
    them, which is the conservative (strongest-attacker) reading.
    """
    if len(original) != len(published):
        raise ValueError("original and published databases must be row-aligned")
    rng = np.random.default_rng(seed)
    victims = rng.choice(len(original), size=min(n_victims, len(original)), replace=False)

    unique = 0
    candidate_sizes = []
    confidences = []
    for victim in victims:
        trajectory = original.trajectories[victim]
        if not trajectory:
            continue
        size = min(l, len(trajectory))
        picks = np.sort(rng.choice(len(trajectory), size=size, replace=False))
        knowledge = tuple(trajectory[i] for i in picks)
        candidates = [
            i
            for i, published_trajectory in enumerate(published.trajectories)
            if is_subsequence(knowledge, published_trajectory)
        ]
        if not candidates:
            # Suppression erased the evidence: attacker learns nothing.
            candidate_sizes.append(len(published))
            continue
        candidate_sizes.append(len(candidates))
        if len(candidates) == 1:
            unique += 1
        if original.sensitive is not None:
            victim_value = original.sensitive[victim]
            values = [original.sensitive[i] for i in candidates]
            confidences.append(values.count(victim_value) / len(values))

    n = len(candidate_sizes)
    return {
        "unique_match_rate": unique / n if n else 0.0,
        "avg_candidates": float(np.mean(candidate_sizes)) if candidate_sizes else 0.0,
        "min_candidates": int(np.min(candidate_sizes)) if candidate_sizes else 0,
        "avg_sensitive_confidence": float(np.mean(confidences)) if confidences else 0.0,
    }
