"""Trajectory data model and synthetic generator.

A trajectory record is a sequence of *doublets* ``(location, time)`` plus an
optional sensitive attribute (e.g. diagnosis at the visited clinic). The
attacker model (Mohammed, Fung & Debbabi, "walking in the crowd") assumes an
adversary who observed at most ``L`` doublets of the victim as a
*subsequence* of the victim's trajectory.

The generator produces grid random-walks with hotspot structure — a few
popular location/time doublets plus individually rare detours, which is
exactly what makes real trajectory data re-identifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Doublet", "TrajectoryDB", "generate_trajectories", "is_subsequence"]


Doublet = tuple  # (location: str, time: int)


@dataclass
class TrajectoryDB:
    """A list of trajectories plus optional per-record sensitive values."""

    trajectories: list
    sensitive: list | None = None

    def __post_init__(self):
        self.trajectories = [tuple(t) for t in self.trajectories]
        if self.sensitive is not None and len(self.sensitive) != len(self.trajectories):
            raise ValueError("sensitive values must align with trajectories")

    def __len__(self) -> int:
        return len(self.trajectories)

    def n_doublets(self) -> int:
        return sum(len(t) for t in self.trajectories)

    def doublet_universe(self) -> set:
        return {d for t in self.trajectories for d in t}

    def support(self, subsequence: Sequence) -> list[int]:
        """Indices of trajectories containing ``subsequence`` (in order)."""
        return [
            i
            for i, trajectory in enumerate(self.trajectories)
            if is_subsequence(subsequence, trajectory)
        ]

    def subsequences_up_to(self, max_len: int) -> dict:
        """Support counts of every doublet subsequence of length <= max_len.

        Enumerates per-trajectory combinations (trajectories are short in
        this model; the paper caps |trajectory| ~ 10-20).
        """
        counts: dict[tuple, set] = {}
        for index, trajectory in enumerate(self.trajectories):
            seen: set[tuple] = set()
            for size in range(1, min(max_len, len(trajectory)) + 1):
                for combo in combinations(range(len(trajectory)), size):
                    seq = tuple(trajectory[i] for i in combo)
                    if seq not in seen:
                        seen.add(seq)
                        counts.setdefault(seq, set()).add(index)
        return {seq: len(holders) for seq, holders in counts.items()}

    def suppress(self, doublets: Iterable) -> "TrajectoryDB":
        """Globally remove the given doublets from every trajectory."""
        removed = set(doublets)
        pruned = [
            tuple(d for d in trajectory if d not in removed)
            for trajectory in self.trajectories
        ]
        return TrajectoryDB(trajectories=pruned, sensitive=self.sensitive)


def is_subsequence(needle: Sequence, haystack: Sequence) -> bool:
    """True iff ``needle`` appears in ``haystack`` preserving order."""
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


def generate_trajectories(
    n_records: int = 300,
    grid: int = 5,
    n_times: int = 6,
    walk_length: int = 6,
    hotspot_bias: float = 0.7,
    sensitive_values: Sequence[str] = ("flu", "hiv", "diabetes", "none"),
    seed: int = 0,
) -> TrajectoryDB:
    """Random-walk trajectories over a grid with popular hotspots.

    Each step picks either a hotspot location (probability ``hotspot_bias``)
    or a uniform random cell; time advances monotonically. The sensitive
    value weakly depends on one hotspot (visiting the "clinic" raises the
    chance of a diagnosis), giving the confidence dimension of LKC something
    to bound.
    """
    rng = np.random.default_rng(seed)
    locations = [f"L{x}{y}" for x in range(grid) for y in range(grid)]
    hotspots = list(rng.choice(locations, size=3, replace=False))
    clinic = hotspots[0]

    trajectories = []
    sensitive = []
    for _ in range(n_records):
        n_steps = int(rng.integers(max(walk_length - 2, 2), walk_length + 3))
        times = np.sort(rng.choice(n_times, size=min(n_steps, n_times), replace=False))
        steps = []
        visited_clinic = False
        for t in times:
            if rng.random() < hotspot_bias:
                location = hotspots[int(rng.integers(len(hotspots)))]
            else:
                location = locations[int(rng.integers(len(locations)))]
            if location == clinic:
                visited_clinic = True
            steps.append((location, int(t)))
        trajectories.append(tuple(steps))
        if visited_clinic and rng.random() < 0.5:
            sensitive.append(sensitive_values[int(rng.integers(len(sensitive_values) - 1))])
        else:
            sensitive.append(sensitive_values[-1])
    return TrajectoryDB(trajectories=trajectories, sensitive=sensitive)
