"""LKC-privacy for trajectories via greedy global doublet suppression.

Privacy requirement (Mohammed, Fung & Debbabi): for every doublet
subsequence ``q`` with ``|q| <= L`` occurring in the database,

* support(q) >= K  (identity: an L-doublet observer finds >= K candidates),
* conf(s | q) <= C for every sensitive value s (attribute disclosure).

Anonymization is the paper's greedy *global suppression*: compute the
violating subsequences, score each doublet by

    score(d) = (#violations containing d + 1) / (#instances of d suppressed + 1)

and repeatedly suppress the highest-scoring doublet until no violations
remain. Suppression is global (every instance of the doublet disappears),
which keeps the output truthful — published trajectories are subsequences
of the originals.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import InfeasibleError
from .model import TrajectoryDB

__all__ = ["TrajectoryLKC"]


class TrajectoryLKC:
    """Greedy global-suppression anonymizer for the trajectory LKC model."""

    def __init__(self, l: int, k: int, c: float = 1.0, interesting: str | None = None):
        if l < 1:
            raise ValueError(f"L must be >= 1, got {l}")
        if k < 1:
            raise ValueError(f"K must be >= 1, got {k}")
        if not 0 < c <= 1:
            raise ValueError(f"C must lie in (0, 1], got {c}")
        self.l = int(l)
        self.k = int(k)
        self.c = float(c)
        # Sensitive value whose confidence is bounded; None bounds all values
        # except the designated "non-sensitive" last category.
        self.interesting = interesting
        self.name = f"trajectory-LKC(L={l},K={k},C={c:g})"

    # -- checking --------------------------------------------------------

    def violations(self, db: TrajectoryDB) -> list[tuple]:
        """All subsequences (|q| <= L) violating the K or C condition."""
        out = []
        for seq, support in db.subsequences_up_to(self.l).items():
            if support < self.k:
                out.append(seq)
                continue
            if db.sensitive is not None and self._confidence(db, seq) > self.c + 1e-12:
                out.append(seq)
        return out

    def check(self, db: TrajectoryDB) -> bool:
        return not self.violations(db)

    def _confidence(self, db: TrajectoryDB, seq: tuple) -> float:
        holders = db.support(seq)
        if not holders:
            return 0.0
        assert db.sensitive is not None
        values = [db.sensitive[i] for i in holders]
        if self.interesting is not None:
            return values.count(self.interesting) / len(values)
        counts: dict = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        return max(counts.values()) / len(values)

    # -- anonymization -----------------------------------------------------

    def anonymize(self, db: TrajectoryDB, max_rounds: int = 10_000) -> tuple[TrajectoryDB, dict]:
        """Suppress doublets greedily until LKC holds.

        Returns (anonymized_db, info) where info records the suppressed
        doublets and the fraction of doublet instances retained.
        """
        current = db
        suppressed: list = []
        original_instances = db.n_doublets()
        if original_instances == 0:
            raise InfeasibleError("empty trajectory database")

        for _ in range(max_rounds):
            violations = self.violations(current)
            if not violations:
                break
            instance_counts = _instance_counts(current)
            per_doublet_violations: dict = defaultdict(int)
            for seq in violations:
                for doublet in set(seq):
                    per_doublet_violations[doublet] += 1
            best = max(
                per_doublet_violations,
                key=lambda d: (per_doublet_violations[d] + 1.0)
                / (instance_counts.get(d, 0) + 1.0),
            )
            suppressed.append(best)
            current = current.suppress([best])
        else:  # pragma: no cover - bounded by doublet universe size
            raise InfeasibleError("suppression did not converge")

        if not self.check(current):
            # All remaining trajectories may have become empty.
            raise InfeasibleError(
                "cannot satisfy the LKC requirement by suppression alone"
            )
        info = {
            "suppressed_doublets": suppressed,
            "instances_retained": current.n_doublets() / original_instances,
            "empty_trajectories": sum(1 for t in current.trajectories if not t),
        }
        return current, info

    def __repr__(self) -> str:
        return f"TrajectoryLKC(L={self.l}, K={self.k}, C={self.c})"


def _instance_counts(db: TrajectoryDB) -> dict:
    counts: dict = defaultdict(int)
    for trajectory in db.trajectories:
        for doublet in trajectory:
            counts[doublet] += 1
    return counts
