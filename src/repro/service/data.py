"""Data specs: how jobs reference the table they anonymize.

A job or batch payload carries a ``data`` object in one of two forms:

* inline — ``{"csv": "<header+rows>", "categorical": [...], "numeric": [...]}``;
  the CSV text travels inside the request (and inside the replay log, which
  is what makes a replay self-contained).
* by path — ``{"path": "relative/file.csv", "categorical": [...], ...}``;
  only allowed when the server was started with ``--data-root``, and the
  resolved path must stay inside that root (no ``..`` escapes, no symlink
  tricks — both sides are resolved before the containment check).

Both forms load through :func:`repro.core.io.read_csv` — the same parser the
CLI uses — so a job submitted over HTTP sees exactly the table the CLI would
build, and :func:`release_csv_bytes` serializes through
:func:`repro.core.io.write_csv` so the streamed release is byte-identical to
a CLI output file.

The digest returned by :func:`load_data_spec` is a sha256 over the raw CSV
bytes plus the declared column roles. It namespaces warm-cache stores: cached
``GroupStats`` hold row-level group codes, so reusing them is only sound when
the table contents are byte-identical — the digest makes that precise.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any

import numpy as np

from ..core.io import read_csv, write_csv
from ..core.table import Table
from ..errors import ConfigError

__all__ = ["TableCache", "load_data_spec", "release_csv_bytes", "table_sha256"]


def _resolve_raw(
    spec: Any, data_root: str | os.PathLike | None
) -> tuple[bytes, list[str], list[str], dict]:
    """Validate a spec and fetch its raw CSV bytes *without parsing*.

    Split out so the digest — raw bytes + declared roles — is computable
    before the (much more expensive) parse, which lets :class:`TableCache`
    answer repeat submissions of the same data from the parsed table.
    """
    if not isinstance(spec, dict):
        raise ConfigError("'data' must be an object with 'csv' or 'path'")
    categorical = _roles(spec, "categorical")
    numeric = _roles(spec, "numeric")
    if "csv" in spec:
        text = spec["csv"]
        if not isinstance(text, str) or not text.strip():
            raise ConfigError("'data.csv' must be non-empty CSV text")
        raw = text.encode()
        normalized = {"csv": text}
    elif "path" in spec:
        if data_root is None:
            raise ConfigError(
                "'data.path' requires the server to be started with a data root"
            )
        root = Path(data_root).resolve()
        target = (root / str(spec["path"])).resolve()
        if root != target and root not in target.parents:
            raise ConfigError(f"'data.path' {spec['path']!r} escapes the data root")
        if not target.is_file():
            raise ConfigError(f"'data.path' {spec['path']!r} not found under data root")
        raw = target.read_bytes()
        normalized = {"path": str(spec["path"])}
    else:
        raise ConfigError("'data' must provide either 'csv' (inline) or 'path'")
    if categorical:
        normalized["categorical"] = list(categorical)
    if numeric:
        normalized["numeric"] = list(numeric)
    return raw, categorical, numeric, normalized


def _parse(raw: bytes, categorical: list[str], numeric: list[str]) -> Table:
    # read_csv is path-based by contract; round-trip through a temp file
    # rather than forking a second parser for file-like objects.
    handle = tempfile.NamedTemporaryFile("wb", suffix=".csv", delete=False)
    try:
        handle.write(raw)
        handle.close()
        return read_csv(handle.name, categorical=categorical, numeric=numeric)
    finally:
        handle.close()
        os.unlink(handle.name)


def _digest(raw: bytes, categorical: list[str], numeric: list[str]) -> str:
    return hashlib.sha256(
        raw + json.dumps([sorted(categorical), sorted(numeric)]).encode()
    ).hexdigest()


def load_data_spec(
    spec: Any, data_root: str | os.PathLike | None = None
) -> tuple[Table, str, dict]:
    """Resolve a ``data`` payload into ``(table, digest, normalized_spec)``.

    ``normalized_spec`` is what the replay log records: for inline data it
    embeds the CSV text verbatim; for path data it keeps the original
    relative path (a replay then needs the same ``--data-root``).
    """
    raw, categorical, numeric, normalized = _resolve_raw(spec, data_root)
    table = _parse(raw, categorical, numeric)
    return table, _digest(raw, categorical, numeric), normalized


class TableCache:
    """Content-addressed memo of parsed tables, keyed by the data digest.

    The dataset-side half of warm serving: a tenant re-submitting the
    same bytes should skip the Python-level CSV parse just as it skips
    lattice evaluation. Content addressing makes sharing across tenants
    safe — equal digest means equal bytes and roles, and tables are
    treated as immutable everywhere downstream. Bounded LRU (dict order
    doubles as recency, the same trick as the engine store)."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._tables: dict[str, Table] = {}

    def load(
        self, spec: Any, data_root: str | os.PathLike | None = None
    ) -> tuple[Table, str, dict]:
        """:func:`load_data_spec`, memoized on the content digest."""
        raw, categorical, numeric, normalized = _resolve_raw(spec, data_root)
        digest = _digest(raw, categorical, numeric)
        with self._lock:
            table = self._tables.pop(digest, None)
            if table is not None:
                self._tables[digest] = table  # LRU touch
                return table, digest, normalized
        table = _parse(raw, categorical, numeric)
        with self._lock:
            self._tables[digest] = table
            while len(self._tables) > self.capacity:
                self._tables.pop(next(iter(self._tables)))
        return table, digest, normalized


def table_sha256(table: Table) -> str:
    """Fast content digest of a table: names, categories, raw value buffers.

    The digest the replay log and job records pin releases with. Hashes
    the numpy buffers directly instead of serializing to CSV, so stamping
    every completed job stays cheap; two tables digest equal iff they
    publish the same decoded values in the same order (same contract as
    ``Table.fingerprint()``, at buffer speed)."""
    digest = hashlib.sha256()
    for name in table.column_names:
        column = table.column(name)
        digest.update(name.encode())
        if column.is_categorical:
            digest.update(repr(list(column.categories)).encode())
            digest.update(np.ascontiguousarray(column.codes).data)
        else:
            digest.update(np.ascontiguousarray(column.values).data)
    return digest.hexdigest()


def release_csv_bytes(table: Table) -> bytes:
    """Serialize a release table exactly as ``repro anonymize -o out.csv`` would."""
    handle = tempfile.NamedTemporaryFile("w", suffix=".csv", delete=False)
    try:
        handle.close()
        write_csv(table, handle.name)
        return Path(handle.name).read_bytes()
    finally:
        os.unlink(handle.name)


def _roles(spec: dict, key: str) -> list[str]:
    value = spec.get(key, [])
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(v, str) for v in value
    ):
        raise ConfigError(f"'data.{key}' must be a list of column names")
    return list(value)
