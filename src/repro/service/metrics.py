"""Service telemetry: counters and latency histograms for ``/metrics``.

Everything here is stdlib-only, thread-safe, and cheap to read — the
``/metrics`` endpoint snapshots under one lock while queue workers observe
under the same lock, so a scrape never sees a half-updated histogram.

Latencies are recorded into fixed log-spaced buckets
(:data:`LATENCY_BUCKETS`, 1 ms → 60 s) in the cumulative "observations at
or below this bound" convention, so the JSON snapshot converts directly to
a Prometheus-style histogram if an exporter ever fronts the service.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

__all__ = ["LATENCY_BUCKETS", "LatencyHistogram", "ServiceMetrics"]

#: Histogram bucket upper bounds in seconds (log-spaced, 1 ms → 60 s);
#: observations above the last bound land in the implicit +Inf bucket.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (unlocked; callers hold the lock)."""

    __slots__ = ("_counts", "count", "total")

    def __init__(self) -> None:
        self._counts = [0] * (len(LATENCY_BUCKETS) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(LATENCY_BUCKETS, seconds)] += 1
        self.count += 1
        self.total += seconds

    def snapshot(self) -> dict[str, Any]:
        """Cumulative ``le`` buckets plus count/sum, JSON-safe."""
        buckets = []
        running = 0
        for bound, n in zip(LATENCY_BUCKETS, self._counts):
            running += n
            buckets.append({"le": bound, "count": running})
        buckets.append({"le": "inf", "count": self.count})
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "avg": round(self.total / self.count, 6) if self.count else 0.0,
            "buckets": buckets,
        }


class ServiceMetrics:
    """The service's counter/histogram registry.

    Tracks job lifecycle counts (accepted / completed / failed / rejected)
    globally and per tenant, plus two latency histograms: ``queue_seconds``
    (accept → start, the queueing delay under load) and ``run_seconds``
    (start → finish, the execution cost — where warm tenant caches show up
    as a left-shifted distribution).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {
            "accepted": 0, "completed": 0, "failed": 0, "rejected": 0,
        }
        self._by_tenant: dict[str, dict[str, int]] = {}
        self.queue_seconds = LatencyHistogram()
        self.run_seconds = LatencyHistogram()

    def _tenant(self, tenant: str) -> dict[str, int]:
        slot = self._by_tenant.get(tenant)
        if slot is None:
            slot = self._by_tenant[tenant] = {
                "accepted": 0, "completed": 0, "failed": 0,
            }
        return slot

    def accepted(self, tenant: str, jobs: int = 1) -> None:
        with self._lock:
            self._counts["accepted"] += jobs
            self._tenant(tenant)["accepted"] += jobs

    def rejected(self, jobs: int = 1) -> None:
        with self._lock:
            self._counts["rejected"] += jobs

    def finished(
        self,
        tenant: str,
        ok: bool,
        queue_seconds: float,
        run_seconds: float,
    ) -> None:
        with self._lock:
            key = "completed" if ok else "failed"
            self._counts[key] += 1
            self._tenant(tenant)[key] += 1
            self.queue_seconds.observe(queue_seconds)
            self.run_seconds.observe(run_seconds)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "jobs": dict(self._counts),
                "by_tenant": {t: dict(c) for t, c in self._by_tenant.items()},
                "queue_seconds": self.queue_seconds.snapshot(),
                "run_seconds": self.run_seconds.snapshot(),
            }
