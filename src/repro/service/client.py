"""Thin stdlib HTTP client for the anonymization service.

``urllib.request`` only — the client must be importable anywhere the
library is, including the CI smoke job and the benchmark harness. Errors
come back as :class:`ServiceError` carrying the HTTP status and the
server's ``error`` message, so callers can branch on 503 (queue full,
retry later) versus 400 (fix the payload).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Client bound to one base URL and one tenant."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8035",
        tenant: str | None = None,
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- submission ------------------------------------------------------------

    def submit_job(self, config: dict, data: dict, **options: Any) -> dict:
        """POST /v1/jobs; returns ``{"job_id", "batch_id", "status"}``."""
        payload = {"config": config, "data": data, **options}
        return self._request("POST", "/v1/jobs", payload)

    def submit_batch(self, jobs: list[dict], data: dict, **options: Any) -> dict:
        """POST /v1/batches; returns ``{"batch_id", "job_ids", "status"}``."""
        payload = {"jobs": jobs, "data": data, **options}
        return self._request("POST", "/v1/batches", payload)

    # -- retrieval -------------------------------------------------------------

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def batch(self, batch_id: str) -> dict:
        return self._request("GET", f"/v1/batches/{batch_id}")

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state (``done``/``failed``)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(poll)

    def release_csv(self, job_id: str) -> bytes:
        """GET /v1/jobs/{id}/release — the anonymized table, CSV bytes."""
        return self._request("GET", f"/v1/jobs/{job_id}/release", raw=True)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # -- plumbing --------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None, raw: bool = False
    ) -> Any:
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                content = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read()
            try:
                message = json.loads(detail).get("error", detail.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = detail.decode(errors="replace")
            raise ServiceError(exc.code, message) from None
        return content if raw else json.loads(content)
