"""Per-tenant warm cache registry with budget slicing and eviction ladder.

The service's whole reason to stay resident is this module: one
:class:`~repro.core.cache.EngineCacheStore` per (tenant, environment
fingerprint) survives across requests, so a tenant's second batch over the
same data and QI roles starts warm — node statistics computed last request
are memo hits now — while every other tenant's traffic stays isolated in
its own stores.

The environment fingerprint is ``sha256(data digest + evaluator key)``:
cached ``GroupStats`` hold row-level group codes, so warm reuse is sound
only over a byte-identical table (the data digest) evaluated under
identical QI roles / hierarchies / chunking (the evaluator key from
:func:`repro.api.executor._environment_key`).

Budgets form a ladder, applied in order whenever a store is created:

1. **slice** — a tenant's ``cache_bytes`` is divided equally across its
   live environment stores (shrinks evict immediately via
   :meth:`EngineCacheStore.resize`);
2. **environment LRU** — a tenant over its ``max_environments`` drops its
   least-recently-used environment store;
3. **tenant LRU** — when the sum of live tenants' budgets exceeds the
   global ``service_cache_bytes``, whole least-recently-used tenants are
   evicted (never the one currently being served).

Recency is a monotone counter, not wall-clock time, so eviction order is
deterministic under test.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Mapping

from ..core.cache import DEFAULT_CACHE_BYTES, EngineCacheStore, check_cache_bytes
from ..errors import ConfigError

__all__ = ["TenantCaches", "TenantPolicy"]

#: A slice never shrinks below this — a store too small to hold one node's
#: stats would thrash instead of warming.
MIN_SLICE_BYTES = 1 << 20


class TenantPolicy:
    """Validated per-tenant knobs (from the ``--tenants-config`` JSON)."""

    __slots__ = ("cache_bytes", "max_environments")

    def __init__(self, cache_bytes: int, max_environments: int):
        try:
            self.cache_bytes = check_cache_bytes(cache_bytes)
        except ValueError as exc:
            raise ConfigError(f"tenant cache_bytes {exc}") from None
        if int(max_environments) < 1:
            raise ConfigError(
                f"tenant max_environments must be >= 1, got {max_environments}"
            )
        self.max_environments = int(max_environments)


class TenantCaches:
    """Registry of warm :class:`EngineCacheStore` objects, one per
    (tenant, environment fingerprint).

    Parameters
    ----------
    tenants_config:
        mapping of tenant name -> ``{"cache_bytes": int, "max_environments":
        int}`` (both optional per tenant). Unknown tenants get the defaults.
    default_cache_bytes / default_max_environments:
        policy for tenants absent from ``tenants_config``.
    service_cache_bytes:
        global cap on the sum of live tenants' budgets; exceeding it evicts
        whole LRU tenants.
    """

    def __init__(
        self,
        tenants_config: Mapping[str, Any] | None = None,
        default_cache_bytes: int = DEFAULT_CACHE_BYTES,
        default_max_environments: int = 4,
        service_cache_bytes: int = 4 * DEFAULT_CACHE_BYTES,
    ):
        self._default = TenantPolicy(default_cache_bytes, default_max_environments)
        self._policies: dict[str, TenantPolicy] = {}
        for tenant, spec in dict(tenants_config or {}).items():
            if not isinstance(spec, dict):
                raise ConfigError(f"tenant {tenant!r}: config must be an object")
            unknown = set(spec) - {"cache_bytes", "max_environments"}
            if unknown:
                raise ConfigError(
                    f"tenant {tenant!r}: unknown keys {sorted(unknown)}"
                )
            self._policies[tenant] = TenantPolicy(
                spec.get("cache_bytes", default_cache_bytes),
                spec.get("max_environments", default_max_environments),
            )
        try:
            self.service_cache_bytes = check_cache_bytes(service_cache_bytes)
        except ValueError as exc:
            raise ConfigError(f"service_cache_bytes {exc}") from None
        self._lock = threading.Lock()
        # tenant -> fingerprint -> store; dict order doubles as LRU order
        # at both levels (touch = pop + re-insert), mirroring the store's
        # own recency trick.
        self._stores: dict[str, dict[str, EngineCacheStore]] = {}
        self._clock = 0
        self.counters = {"environments_evicted": 0, "tenants_evicted": 0}

    def policy(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self._default)

    @staticmethod
    def fingerprint(data_digest: str, evaluator_key: str) -> str:
        """Environment identity: byte-identical data × identical evaluator."""
        return hashlib.sha256(
            (data_digest + "\x00" + evaluator_key).encode()
        ).hexdigest()

    def stores_for(
        self, tenant: str, data_digest: str, evaluator_keys: list[str]
    ) -> dict[str, EngineCacheStore]:
        """The ``cache_stores`` mapping for one batch of a tenant's jobs.

        Returns ``{evaluator_key: store}`` — keyed the way
        :func:`repro.api.run_batch` expects — creating stores (and walking
        the eviction ladder) for fingerprints not yet resident. Safe to
        call concurrently; a tenant's own batch never evicts its sibling
        environments mid-flight beyond what the ladder demands.
        """
        with self._lock:
            per_tenant = self._stores.pop(tenant, {})
            self._stores[tenant] = per_tenant  # tenant LRU touch
            policy = self.policy(tenant)
            out: dict[str, EngineCacheStore] = {}
            for evaluator_key in evaluator_keys:
                fp = self.fingerprint(data_digest, evaluator_key)
                store = per_tenant.pop(fp, None)
                if store is None:
                    store = EngineCacheStore(
                        cache_limit=None, cache_bytes=policy.cache_bytes
                    )
                per_tenant[fp] = store  # environment LRU touch
                out[evaluator_key] = store
            # Ladder step 2: environment LRU within the tenant.
            protected = {
                self.fingerprint(data_digest, k) for k in evaluator_keys
            }
            while len(per_tenant) > policy.max_environments:
                victim = next(
                    (fp for fp in per_tenant if fp not in protected), None
                )
                if victim is None:
                    break  # one batch legitimately spans > max_environments
                del per_tenant[victim]
                self.counters["environments_evicted"] += 1
            # Ladder step 1: equal re-slice of the tenant budget.
            slice_bytes = max(
                policy.cache_bytes // max(len(per_tenant), 1), MIN_SLICE_BYTES
            )
            for store in per_tenant.values():
                if store.cache_bytes != slice_bytes:
                    store.resize(slice_bytes)
            # Ladder step 3: global tenant LRU (never the tenant in hand).
            while (
                sum(self.policy(t).cache_bytes for t in self._stores if self._stores[t])
                > self.service_cache_bytes
                and len([t for t in self._stores if self._stores[t]]) > 1
            ):
                victim_tenant = next(
                    (t for t in self._stores if t != tenant and self._stores[t]),
                    None,
                )
                if victim_tenant is None:
                    break
                self._stores[victim_tenant] = {}
                self.counters["tenants_evicted"] += 1
            return out

    def occupancy(self) -> dict[str, Any]:
        """Per-tenant residency for ``/metrics``: budgets, live environments,
        and each store's byte occupancy."""
        with self._lock:
            tenants = {}
            for tenant, per_tenant in self._stores.items():
                if not per_tenant:
                    continue
                policy = self.policy(tenant)
                tenants[tenant] = {
                    "cache_bytes": policy.cache_bytes,
                    "max_environments": policy.max_environments,
                    "environments": {
                        fp[:12]: {
                            "bytes": (occ := store.occupancy())["bytes"],
                            "entries": occ["entries"],
                            "slice_bytes": store.cache_bytes,
                            "counters": dict(store.counters),
                        }
                        for fp, store in per_tenant.items()
                    },
                }
            return {
                "service_cache_bytes": self.service_cache_bytes,
                "counters": dict(self.counters),
                "tenants": tenants,
            }
