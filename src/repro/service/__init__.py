"""Long-lived anonymization service: HTTP job API over the batch executor.

The library's resident deployment form. A process that stays up between
requests can keep :class:`~repro.core.cache.EngineCacheStore` objects warm
per tenant and environment, so repeat workloads — the common case for a
publishing pipeline that re-anonymizes the same table under evolving
configs — skip straight to memo hits instead of re-scanning rows.

Layering (each module usable on its own):

* :mod:`~repro.service.server` — ``AnonymizationService`` (state) +
  ``create_server`` (``ThreadingHTTPServer`` front end);
* :mod:`~repro.service.queue` — bounded admission queue and worker pool
  draining through :func:`repro.api.run_batch`;
* :mod:`~repro.service.tenants` — per-tenant warm stores, budget slicing,
  eviction ladder;
* :mod:`~repro.service.replay` — append-only JSONL audit log, replayable
  to byte-identical releases;
* :mod:`~repro.service.metrics` — counters and latency histograms;
* :mod:`~repro.service.data` — inline-CSV / data-root resolution;
* :mod:`~repro.service.client` — stdlib HTTP client.

Start one from the CLI: ``repro serve --port 8035``.
"""

from .client import ServiceClient, ServiceError
from .metrics import ServiceMetrics
from .queue import BatchWork, JobQueue, JobRecord, QueueFull
from .replay import ReplayLog, read_events, replay
from .server import AnonymizationService, create_server
from .tenants import TenantCaches

__all__ = [
    "AnonymizationService",
    "BatchWork",
    "JobQueue",
    "JobRecord",
    "QueueFull",
    "ReplayLog",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "TenantCaches",
    "create_server",
    "read_events",
    "replay",
]
