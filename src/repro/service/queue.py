"""Bounded job queue draining through :func:`repro.api.run_batch`.

The HTTP layer turns every request into one :class:`BatchWork` item (a
single job is a batch of one) and calls :meth:`JobQueue.submit` — which
never blocks: a full queue raises :class:`QueueFull` and the handler
answers 503, so backpressure is visible to clients instead of piling up
as threads. A fixed pool of worker threads drains the queue; each item
runs as one ``run_batch`` call with ``on_error="collect"`` (a failing job
yields a recorded failure, never a crashed worker) and with the tenant's
warm stores injected via ``cache_stores`` — the hand-off point between
the service's resident state and the executor's planner.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..api import AnonymizationConfig, JobFailure, run_batch
from ..api.executor import _environment_key
from ..core.table import Table
from .data import table_sha256
from .metrics import ServiceMetrics
from .replay import ReplayLog
from .tenants import TenantCaches

__all__ = ["BatchWork", "JobQueue", "JobRecord", "QueueFull"]

#: run_batch knobs a batch payload may set; everything else is fixed by
#: the service (notably ``on_error`` — always "collect").
BATCH_OPTIONS = (
    "workers",
    "plan",
    "backend",
    "job_timeout",
    "batch_deadline",
    "retries",
    "retry_backoff",
)


class QueueFull(Exception):
    """The admission queue is at capacity — surface as HTTP 503."""


@dataclass
class JobRecord:
    """One accepted job, from admission to terminal state."""

    id: str
    batch_id: str
    tenant: str
    config: AnonymizationConfig
    status: str = "queued"  # queued -> running -> done | failed
    result: Any = None  # AnonymizationResult | JobFailure | None
    error: dict[str, Any] | None = None
    release_sha256: str | None = None
    enqueued_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.id,
            "batch_id": self.batch_id,
            "tenant": self.tenant,
            "status": self.status,
            "enqueued_at": self.enqueued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.status == "done" and self.result is not None:
            out["result"] = self.result.to_dict()
            out["release_sha256"] = self.release_sha256
        elif self.status == "failed" and self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class BatchWork:
    """One queue item: a tenant's configs over one resolved table."""

    batch_id: str
    tenant: str
    records: list[JobRecord]
    table: Table
    data_digest: str
    options: dict[str, Any] = field(default_factory=dict)


class JobQueue:
    """Fixed worker pool over a bounded admission queue."""

    def __init__(
        self,
        caches: TenantCaches,
        metrics: ServiceMetrics,
        replay: ReplayLog,
        workers: int = 2,
        depth: int = 32,
    ):
        if workers < 1:
            raise ValueError(f"queue workers must be >= 1, got {workers}")
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.caches = caches
        self.metrics = metrics
        self.replay = replay
        self.capacity = depth
        self._queue: "queue.Queue[BatchWork | None]" = queue.Queue(maxsize=depth)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self) -> int:
        return len(self._threads)

    def depth(self) -> int:
        return self._queue.qsize()

    def submit(self, work: BatchWork) -> None:
        try:
            self._queue.put_nowait(work)
        except queue.Full:
            self.metrics.rejected(len(work.records))
            raise QueueFull(
                f"queue at capacity ({self.capacity} batches)"
            ) from None

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting sentinel-terminated workers; drain then join."""
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    # -- worker side -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            work = self._queue.get()
            if work is None:
                return
            try:
                self._run(work)
            except Exception as exc:  # planner-level failure: fail the batch
                self._fail_batch(work, exc)
            finally:
                self._queue.task_done()

    def _run(self, work: BatchWork) -> None:
        started = time.time()
        start_mono = time.monotonic()
        for record in work.records:
            record.status = "running"
            record.started_at = started
        evaluator_keys: list[str] = []
        for record in work.records:
            key = _environment_key(record.config)[0]
            if key not in evaluator_keys:
                evaluator_keys.append(key)
        stores = self.caches.stores_for(
            work.tenant, work.data_digest, evaluator_keys
        )
        results = run_batch(
            [record.config for record in work.records],
            work.table,
            on_error="collect",
            cache_stores=stores,
            **work.options,
        )
        finished = time.time()
        run_seconds = time.monotonic() - start_mono
        queue_seconds = max(0.0, started - work.records[0].enqueued_at)
        for record, result in zip(work.records, results):
            record.finished_at = finished
            record.result = result
            if isinstance(result, JobFailure):
                record.status = "failed"
                record.error = result.to_dict()
                self.replay.completed(
                    record.id,
                    "failed",
                    error=f"{result.error_type}: {result.error.get('message')}",
                )
                self.metrics.finished(
                    work.tenant, False, queue_seconds, run_seconds
                )
            else:
                record.status = "done"
                record.release_sha256 = table_sha256(result.release.table)
                self.replay.completed(
                    record.id, "ok", release_sha256=record.release_sha256
                )
                self.metrics.finished(
                    work.tenant, True, queue_seconds, run_seconds
                )

    def _fail_batch(self, work: BatchWork, exc: Exception) -> None:
        finished = time.time()
        error = {"error": f"{type(exc).__name__}: {exc}"}
        for record in work.records:
            record.status = "failed"
            record.error = dict(error)
            record.finished_at = finished
            self.replay.completed(record.id, "failed", error=error["error"])
            self.metrics.finished(work.tenant, False, 0.0, 0.0)
