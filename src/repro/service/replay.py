"""Append-only JSONL replay log.

Every accepted job writes one ``accepted`` event (tenant, config, data
spec); every finished job writes one ``completed`` event (status, release
digest). The log is the service's audit trail *and* a deterministic rerun
script: :func:`replay` re-executes each accepted job through the same
:func:`repro.api.run` path and checks the fresh release digest against the
recorded one — byte-identical or it reports a mismatch.

Events are single JSON lines with sorted keys, flushed per write, so a
``tail -f`` of the log is always well-formed and a crash loses at most the
event being written.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator

from ..api import AnonymizationConfig, run
from .data import load_data_spec, table_sha256

__all__ = ["ReplayLog", "read_events", "replay"]


class ReplayLog:
    """Thread-safe appender of replay events (no-op when ``path`` is None)."""

    def __init__(self, path: str | Path | None):
        self.path = None if path is None else Path(path)
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.touch()

    def accepted(
        self,
        job_id: str,
        tenant: str,
        config: dict,
        data: dict,
        batch_id: str,
        options: dict | None = None,
    ) -> None:
        self._append(
            {
                "event": "accepted",
                "job_id": job_id,
                "batch_id": batch_id,
                "tenant": tenant,
                "config": config,
                "data": data,
                "options": options or {},
            }
        )

    def completed(
        self,
        job_id: str,
        status: str,
        release_sha256: str | None = None,
        error: str | None = None,
    ) -> None:
        event: dict[str, Any] = {
            "event": "completed",
            "job_id": job_id,
            "status": status,
        }
        if release_sha256 is not None:
            event["release_sha256"] = release_sha256
        if error is not None:
            event["error"] = error
        self._append(event)

    def _append(self, event: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(event, sort_keys=True)
        with self._lock, open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield replay events in log order, skipping blank lines."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def replay(
    path: str | Path, data_root: str | Path | None = None
) -> list[dict[str, Any]]:
    """Re-run every accepted job in the log; report digest agreement.

    Returns one record per accepted job:
    ``{"job_id", "status", "release_sha256", "recorded_sha256", "match"}``.
    ``match`` is None when the original run never completed or failed (no
    recorded digest to compare against).
    """
    accepted: list[dict] = []
    recorded: dict[str, dict] = {}
    for event in read_events(path):
        if event["event"] == "accepted":
            accepted.append(event)
        elif event["event"] == "completed":
            recorded[event["job_id"]] = event
    report = []
    for event in accepted:
        config = AnonymizationConfig.from_dict(event["config"])
        table, _, _ = load_data_spec(event["data"], data_root=data_root)
        entry: dict[str, Any] = {"job_id": event["job_id"]}
        try:
            result = run(config, table)
        except Exception as exc:  # infeasible jobs are part of the log too
            entry["status"] = "failed"
            entry["error"] = f"{type(exc).__name__}: {exc}"
            prior = recorded.get(event["job_id"])
            entry["match"] = (
                prior is not None and prior.get("status") == "failed"
            ) or None
        else:
            digest = table_sha256(result.release.table)
            entry["status"] = "ok"
            entry["release_sha256"] = digest
            prior = recorded.get(event["job_id"])
            entry["recorded_sha256"] = None if prior is None else prior.get("release_sha256")
            entry["match"] = (
                None
                if prior is None or prior.get("release_sha256") is None
                else digest == prior["release_sha256"]
            )
        report.append(entry)
    return report
