"""The anonymization service: HTTP front end over the job queue.

Stdlib-only by design (``http.server.ThreadingHTTPServer``): the service
must run wherever the library runs, with no framework dependency. Endpoints:

====== ============================ ==============================================
Method Path                         Purpose
====== ============================ ==============================================
POST   ``/v1/jobs``                 submit one job ``{"config": ..., "data": ...}``
POST   ``/v1/batches``              submit ``{"jobs": [...], "data": ..., knobs}``
GET    ``/v1/jobs/{id}``            job status; full result dict once done
GET    ``/v1/jobs/{id}/release``    the anonymized release as ``text/csv``
GET    ``/v1/batches/{id}``         status of every job in the batch
GET    ``/healthz``                 liveness: version, queue depth, worker count
GET    ``/metrics``                 counters, latency histograms, cache occupancy
====== ============================ ==============================================

Tenancy is a header: ``X-Tenant`` (default ``"public"``) namespaces both
the warm cache stores and job visibility — reading another tenant's job id
is a 404, indistinguishable from an id that never existed.

Admission is synchronous and cheap (parse config, resolve data, register
records, enqueue); execution happens on the queue's worker threads. A full
queue answers 503 with ``Retry-After`` rather than blocking the handler.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .._version import __version__
from ..api import AnonymizationConfig
from ..api.executor import BACKENDS, PLANS
from ..errors import ConfigError, ReproError, SchemaError
from .data import TableCache, release_csv_bytes
from .metrics import ServiceMetrics
from .queue import BATCH_OPTIONS, BatchWork, JobQueue, JobRecord, QueueFull
from .replay import ReplayLog
from .tenants import TenantCaches

__all__ = ["AnonymizationService", "create_server"]

DEFAULT_TENANT = "public"
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")
_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9]+)(/release)?$")
_BATCH_PATH = re.compile(r"^/v1/batches/([A-Za-z0-9]+)$")


class AnonymizationService:
    """Service state: tenant caches, metrics, replay log, queue, registry.

    Owns everything that outlives a request; the HTTP handler below is a
    stateless router over this object, so tests can drive the service
    directly without a socket.
    """

    def __init__(
        self,
        tenants_config: dict | None = None,
        queue_workers: int = 2,
        queue_depth: int = 32,
        replay_path: str | None = None,
        data_root: str | None = None,
        service_cache_bytes: int | None = None,
        default_cache_bytes: int | None = None,
    ):
        tenant_kwargs: dict[str, Any] = {"tenants_config": tenants_config}
        if service_cache_bytes is not None:
            tenant_kwargs["service_cache_bytes"] = service_cache_bytes
        if default_cache_bytes is not None:
            tenant_kwargs["default_cache_bytes"] = default_cache_bytes
        self.caches = TenantCaches(**tenant_kwargs)
        self.metrics = ServiceMetrics()
        self.replay = ReplayLog(replay_path)
        self.queue = JobQueue(
            self.caches,
            self.metrics,
            self.replay,
            workers=queue_workers,
            depth=queue_depth,
        )
        self.data_root = data_root
        # Content-addressed parse memo: warm serving covers the dataset
        # too — re-submitting the same bytes skips the CSV parse.
        self.tables = TableCache()
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._batches: dict[str, list[str]] = {}
        self._counter = 0

    # -- admission -------------------------------------------------------------

    def submit_job(self, tenant: str, payload: Any) -> dict[str, Any]:
        """One job = a batch of one; same pipeline, same warm stores."""
        if not isinstance(payload, dict) or "config" not in payload:
            raise ConfigError("job payload must be {'config': ..., 'data': ...}")
        batch_payload = {
            k: v for k, v in payload.items() if k not in ("config",)
        }
        batch_payload["jobs"] = [payload["config"]]
        out = self.submit_batch(tenant, batch_payload)
        return {
            "job_id": out["job_ids"][0],
            "batch_id": out["batch_id"],
            "status": "queued",
        }

    def submit_batch(self, tenant: str, payload: Any) -> dict[str, Any]:
        if not isinstance(payload, dict):
            raise ConfigError("batch payload must be a JSON object")
        jobs = payload.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise ConfigError("'jobs' must be a non-empty list of configs")
        configs = [AnonymizationConfig.from_dict(job) for job in jobs]
        table, digest, normalized = self.tables.load(
            payload.get("data"), data_root=self.data_root
        )
        options = self._batch_options(payload)
        with self._lock:
            self._counter += 1
            batch_id = f"b{self._counter:08d}"
            records = []
            for config in configs:
                self._counter += 1
                record = JobRecord(
                    id=f"j{self._counter:08d}",
                    batch_id=batch_id,
                    tenant=tenant,
                    config=config,
                )
                records.append(record)
                self._jobs[record.id] = record
            self._batches[batch_id] = [record.id for record in records]
        work = BatchWork(
            batch_id=batch_id,
            tenant=tenant,
            records=records,
            table=table,
            data_digest=digest,
            options=options,
        )
        try:
            self.queue.submit(work)
        except QueueFull:
            with self._lock:  # admission failed: leave no orphan records
                for record in records:
                    self._jobs.pop(record.id, None)
                self._batches.pop(batch_id, None)
            raise
        self.metrics.accepted(tenant, len(records))
        for record, job_spec in zip(records, jobs):
            self.replay.accepted(
                record.id, tenant, job_spec, normalized, batch_id, options
            )
        return {
            "batch_id": batch_id,
            "job_ids": [record.id for record in records],
            "status": "queued",
        }

    @staticmethod
    def _batch_options(payload: dict) -> dict[str, Any]:
        known = set(BATCH_OPTIONS) | {"jobs", "data"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown batch keys {sorted(unknown)}; "
                f"options: {', '.join(BATCH_OPTIONS)}"
            )
        options: dict[str, Any] = {}
        for key in BATCH_OPTIONS:
            if key not in payload or payload[key] is None:
                continue
            value = payload[key]
            if key in ("workers", "retries"):
                if not isinstance(value, int) or value < 0 or key == "workers" and value < 1:
                    raise ConfigError(f"'{key}' must be a positive integer")
            elif key in ("job_timeout", "batch_deadline", "retry_backoff"):
                if not isinstance(value, (int, float)) or value < 0:
                    raise ConfigError(f"'{key}' must be a non-negative number")
            elif key == "plan" and value not in PLANS:
                raise ConfigError(f"'plan' must be one of {sorted(PLANS)}")
            elif key == "backend" and value not in BACKENDS:
                raise ConfigError(f"'backend' must be one of {sorted(BACKENDS)}")
            options[key] = value
        return options

    # -- lookup ----------------------------------------------------------------

    def job(self, tenant: str, job_id: str) -> JobRecord | None:
        with self._lock:
            record = self._jobs.get(job_id)
        # Tenant mismatch is indistinguishable from absence by design.
        if record is None or record.tenant != tenant:
            return None
        return record

    def batch(self, tenant: str, batch_id: str) -> list[JobRecord] | None:
        with self._lock:
            job_ids = self._batches.get(batch_id)
            records = None if job_ids is None else [self._jobs[j] for j in job_ids]
        if records is None or any(r.tenant != tenant for r in records):
            return None
        return records

    def release_bytes(self, tenant: str, job_id: str) -> bytes | None:
        """CSV bytes of a finished job's release; None if absent, a string
        status if the job exists but has no release yet."""
        record = self.job(tenant, job_id)
        if record is None:
            return None
        if record.status != "done" or record.result is None:
            raise _NotReady(record.status)
        return release_csv_bytes(record.result.release.table)

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "queue": {
                "depth": self.queue.depth(),
                "capacity": self.queue.capacity,
                "workers": self.queue.workers,
            },
            "jobs": len(self._jobs),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        snap = self.metrics.snapshot()
        snap["queue"] = {
            "depth": self.queue.depth(),
            "capacity": self.queue.capacity,
            "workers": self.queue.workers,
        }
        snap["caches"] = self.caches.occupancy()
        return snap

    def close(self) -> None:
        self.queue.close()


class _NotReady(Exception):
    """Release requested before the job reached ``done``."""

    def __init__(self, status: str):
        super().__init__(status)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    """Stateless router; all state lives on :attr:`service`."""

    service: AnonymizationService  # bound by create_server
    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{__version__}"
    #: 16 MiB request-body ceiling — inline CSV is the only large payload.
    max_body = 16 << 20

    # -- routing ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        tenant = self._tenant()
        if tenant is None:
            return
        if self.path == "/healthz":
            self._json(200, self.service.healthz())
        elif self.path == "/metrics":
            self._json(200, self.service.metrics_snapshot())
        elif match := _JOB_PATH.match(self.path):
            job_id, want_release = match.group(1), bool(match.group(2))
            if want_release:
                self._send_release(tenant, job_id)
            else:
                record = self.service.job(tenant, job_id)
                if record is None:
                    self._json(404, {"error": f"no such job {job_id!r}"})
                else:
                    self._json(200, record.to_dict())
        elif match := _BATCH_PATH.match(self.path):
            records = self.service.batch(tenant, match.group(1))
            if records is None:
                self._json(404, {"error": f"no such batch {match.group(1)!r}"})
            else:
                self._json(
                    200,
                    {
                        "batch_id": match.group(1),
                        "jobs": [r.to_dict() for r in records],
                    },
                )
        else:
            self._json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        tenant = self._tenant()
        if tenant is None:
            return
        payload = self._body()
        if payload is _INVALID:
            return
        try:
            if self.path == "/v1/jobs":
                self._json(202, self.service.submit_job(tenant, payload))
            elif self.path == "/v1/batches":
                self._json(202, self.service.submit_batch(tenant, payload))
            else:
                self._json(404, {"error": f"unknown path {self.path!r}"})
        except QueueFull as exc:
            self._json(503, {"error": str(exc)}, headers={"Retry-After": "1"})
        except (ConfigError, SchemaError) as exc:
            self._json(400, {"error": str(exc)})
        except ReproError as exc:
            self._json(400, {"error": f"{type(exc).__name__}: {exc}"})

    # -- plumbing --------------------------------------------------------------

    def _tenant(self) -> str | None:
        tenant = self.headers.get("X-Tenant", DEFAULT_TENANT)
        if not _TENANT_RE.match(tenant):
            self._json(400, {"error": f"invalid X-Tenant {tenant!r}"})
            return None
        return tenant

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._json(400, {"error": "request body required"})
            return _INVALID
        if length > self.max_body:
            self._json(413, {"error": f"body exceeds {self.max_body} bytes"})
            return _INVALID
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            self._json(400, {"error": f"invalid JSON: {exc}"})
            return _INVALID

    def _send_release(self, tenant: str, job_id: str) -> None:
        try:
            body = self.service.release_bytes(tenant, job_id)
        except _NotReady as exc:
            self._json(
                409, {"error": f"job {job_id!r} is {exc.status}, not done"}
            )
            return
        if body is None:
            self._json(404, {"error": f"no such job {job_id!r}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/csv; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; the service's own telemetry is /metrics.
        pass


_INVALID = object()


def create_server(
    service: AnonymizationService,
    host: str = "127.0.0.1",
    port: int = 8035,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over ``service`` (not yet serving)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
