"""CART-style decision tree on integer-coded categorical features.

Splits are equality tests ``feature == value`` chosen to minimize weighted
Gini impurity; growth stops at ``max_depth``, ``min_samples_split``, or
purity. This is the second learner of the classification-metric experiments
(the survey's CM axis is learner-agnostic; two learners let the benches show
the ordering is stable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import NotFittedError

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    prediction: int
    feature: int | None = None
    value: int | None = None
    left: "_Node | None" = None  # feature == value
    right: "_Node | None" = None  # feature != value


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts / total
    return float(1.0 - (probs**2).sum())


class DecisionTree:
    """Binary decision tree with categorical equality splits."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 20):
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self._root: _Node | None = None
        self._n_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        self._n_classes = int(labels.max()) + 1
        self._root = self._grow(features, labels, depth=0)
        return self

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(labels, minlength=self._n_classes)
        node = _Node(prediction=int(counts.argmax()))
        if (
            depth >= self.max_depth
            or labels.size < self.min_samples_split
            or counts.max() == labels.size
        ):
            return node

        parent_gini = _gini(counts)
        best_gain, best_feature, best_value = 1e-9, None, None
        for j in range(features.shape[1]):
            column = features[:, j]
            for value in np.unique(column):
                mask = column == value
                n_left = int(mask.sum())
                if n_left == 0 or n_left == labels.size:
                    continue
                left_counts = np.bincount(labels[mask], minlength=self._n_classes)
                right_counts = counts - left_counts
                weighted = (
                    n_left * _gini(left_counts)
                    + (labels.size - n_left) * _gini(right_counts)
                ) / labels.size
                gain = parent_gini - weighted
                if gain > best_gain:
                    best_gain, best_feature, best_value = gain, j, int(value)

        if best_feature is None:
            return node
        mask = features[:, best_feature] == best_value
        node.feature = best_feature
        node.value = best_value
        node.left = self._grow(features[mask], labels[mask], depth + 1)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("call fit() before predicting")
        features = np.asarray(features, dtype=np.int64)
        out = np.empty(features.shape[0], dtype=np.int64)
        for i in range(features.shape[0]):
            node = self._root
            while node.feature is not None:
                node = node.left if features[i, node.feature] == node.value else node.right
                assert node is not None
            out[i] = node.prediction
        return out

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(features) == np.asarray(labels)).mean())

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise NotFittedError("call fit() first")
        return walk(self._root)
