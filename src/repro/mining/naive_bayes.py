"""Categorical naive Bayes with Laplace smoothing.

Works on integer-encoded feature matrices (see
:func:`repro.mining.split.encode_features`). Used by the
classification-metric experiments; kept deliberately simple and dependency
free (sklearn is not available in this environment).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError

__all__ = ["NaiveBayes"]


class NaiveBayes:
    """Multinomial naive Bayes over integer-coded categorical features."""

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError(f"smoothing alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: list[np.ndarray] | None = None
        self._n_values: list[int] | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "NaiveBayes":
        features = np.asarray(features, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        n_rows, n_features = features.shape
        n_classes = int(labels.max()) + 1

        class_counts = np.bincount(labels, minlength=n_classes).astype(np.float64)
        self._log_prior = np.log(class_counts + self.alpha) - np.log(
            n_rows + self.alpha * n_classes
        )

        self._log_likelihood = []
        self._n_values = []
        for j in range(n_features):
            n_values = int(features[:, j].max()) + 1
            counts = np.zeros((n_classes, n_values))
            np.add.at(counts, (labels, features[:, j]), 1.0)
            smoothed = counts + self.alpha
            smoothed /= smoothed.sum(axis=1, keepdims=True)
            self._log_likelihood.append(np.log(smoothed))
            self._n_values.append(n_values)
        return self

    def predict_log_proba(self, features: np.ndarray) -> np.ndarray:
        if self._log_prior is None or self._log_likelihood is None:
            raise NotFittedError("call fit() before predicting")
        features = np.asarray(features, dtype=np.int64)
        scores = np.tile(self._log_prior, (features.shape[0], 1))
        for j, table in enumerate(self._log_likelihood):
            codes = np.clip(features[:, j], 0, table.shape[1] - 1)
            scores += table[:, codes].T
        return scores

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_log_proba(features).argmax(axis=1)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on a held-out set."""
        return float((self.predict(features) == np.asarray(labels)).mean())
