"""Train/test splitting and feature encoding for the mining workloads.

The classification-metric experiments train a learner on (anonymized) QI
columns to predict a label column. Classifiers here work on integer-encoded
feature matrices; :func:`encode_features` turns any mix of categorical and
numeric table columns into such a matrix (numeric columns are quantile-
binned so every learner sees discrete codes).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.table import Table

__all__ = ["train_test_split", "encode_features", "stratified_split"]


def train_test_split(
    n_rows: int, test_fraction: float = 0.3, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled (train_indices, test_indices) split."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_rows)
    n_test = max(int(round(n_rows * test_fraction)), 1)
    return np.sort(order[n_test:]), np.sort(order[:n_test])


def stratified_split(
    labels: np.ndarray, test_fraction: float = 0.3, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Split preserving label proportions in both halves."""
    rng = np.random.default_rng(seed)
    train_parts, test_parts = [], []
    for label in np.unique(labels):
        rows = np.flatnonzero(labels == label)
        rng.shuffle(rows)
        n_test = max(int(round(rows.size * test_fraction)), 1) if rows.size > 1 else 0
        test_parts.append(rows[:n_test])
        train_parts.append(rows[n_test:])
    return np.sort(np.concatenate(train_parts)), np.sort(np.concatenate(test_parts))


def encode_features(
    table: Table, feature_names: Sequence[str], n_numeric_bins: int = 10
) -> np.ndarray:
    """Integer-encoded (n_rows, n_features) matrix from table columns."""
    columns = []
    for name in feature_names:
        col = table.column(name)
        if col.is_categorical:
            columns.append(col.codes.astype(np.int64))
        else:
            assert col.values is not None
            edges = np.quantile(col.values, np.linspace(0, 1, n_numeric_bins + 1)[1:-1])
            columns.append(np.searchsorted(np.unique(edges), col.values).astype(np.int64))
    return np.stack(columns, axis=1)
