"""Built-in mining models for the classification-utility experiments."""

from .decision_tree import DecisionTree
from .knn import KNearestNeighbors
from .naive_bayes import NaiveBayes
from .split import encode_features, stratified_split, train_test_split

__all__ = [
    "DecisionTree",
    "KNearestNeighbors",
    "NaiveBayes",
    "encode_features",
    "stratified_split",
    "train_test_split",
]
