"""k-nearest-neighbour classifier with Hamming distance.

Third learner for the classification experiments. Distance between two
integer-coded feature vectors is the number of positions where they differ
(Hamming), which treats generalized values as plain categories — exactly how
an analyst consuming an anonymized release would.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError

__all__ = ["KNearestNeighbors"]


class KNearestNeighbors:
    """Majority vote among the k Hamming-nearest training rows."""

    def __init__(self, k: int = 5, chunk_size: int = 256):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.chunk_size = int(chunk_size)
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._n_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNearestNeighbors":
        self._features = np.asarray(features, dtype=np.int64)
        self._labels = np.asarray(labels, dtype=np.int64)
        self._n_classes = int(self._labels.max()) + 1
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._features is None or self._labels is None:
            raise NotFittedError("call fit() before predicting")
        features = np.asarray(features, dtype=np.int64)
        k = min(self.k, self._features.shape[0])
        out = np.empty(features.shape[0], dtype=np.int64)
        # Chunked to bound the (chunk x train) distance matrix memory.
        for start in range(0, features.shape[0], self.chunk_size):
            chunk = features[start : start + self.chunk_size]
            distances = (chunk[:, None, :] != self._features[None, :, :]).sum(axis=2)
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            for i in range(chunk.shape[0]):
                votes = np.bincount(self._labels[nearest[i]], minlength=self._n_classes)
                out[start + i] = int(votes.argmax())
        return out

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(features) == np.asarray(labels)).mean())
