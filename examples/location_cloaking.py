"""Location privacy: spatial k-anonymity for a location-based service.

A navigation app forwards user queries ("nearest pharmacy?") through a
cloaking anonymizer so the service never sees exact positions. This example
builds a city with a dense downtown and sparse suburbs, cloaks a query from
every user with the adaptive quadtree, audits the release with the
location-linkage attack, and shows why a fixed-resolution grid is the wrong
tool for clustered populations.

Run with::

    python examples/location_cloaking.py
"""

import numpy as np

from repro.spatial import (
    BoundingBox,
    GridCloak,
    QuadTreeCloak,
    location_linkage_attack,
)

CITY = BoundingBox(0.0, 10.0, 0.0, 10.0)  # a 10km x 10km city


def build_city(seed: int = 0):
    """2,000 downtown users in ~1 km², 500 spread across the city."""
    rng = np.random.default_rng(seed)
    downtown = rng.normal([3.0, 3.0], 0.35, (2000, 2))
    suburbs = rng.uniform(0, 10, (500, 2))
    pts = np.clip(np.vstack([downtown, suburbs]), 0.0, 10.0)
    return pts[:, 0], pts[:, 1]


def main() -> None:
    x, y = build_city()
    k = 20
    print(f"city: {x.size} users, k = {k}")

    # 1. Cloak one downtown query and one suburban query.
    cloak = QuadTreeCloak(x, y, k=k, max_depth=9, bounds=CITY)
    for label, user in [("downtown", 0), ("suburban", 2400)]:
        q = cloak.cloak(user)
        r = q.region
        print(
            f"\n{label} user at ({x[user]:.2f}, {y[user]:.2f}) km -> region "
            f"[{r.x_lo:.2f}-{r.x_hi:.2f}] x [{r.y_lo:.2f}-{r.y_hi:.2f}] km "
            f"({r.area:.3f} km², {q.k_achieved} users inside)"
        )

    # 2. Audit the whole batch with the linkage attack.
    queries = cloak.cloak_all()
    audit = location_linkage_attack(queries, x, y, k, CITY)
    print(
        f"\nlinkage audit over {audit.n_queries} queries: "
        f"min candidates {audit.min_candidates} (need >= {k}), "
        f"max pin-down probability {audit.max_pin_probability:.4f}, "
        f"violations {audit.violations}"
    )
    assert audit.k_anonymous

    # 3. Average region size: adaptivity vs fixed grids.
    dense = np.mean([queries[u].region.area for u in range(2000)])
    sparse = np.mean([queries[u].region.area for u in range(2000, 2500)])
    print(f"\nadaptive quadtree: downtown avg {dense:.4f} km², suburbs avg {sparse:.3f} km²")
    print("fixed grids (downtown avg area):")
    for resolution in (4, 8, 16, 64):
        grid = GridCloak(x, y, k=k, resolution=resolution, bounds=CITY)
        g_dense = np.mean([grid.cloak(u).region.area for u in range(2000)])
        cell = (10.0 / resolution) ** 2
        print(f"  res {resolution:>2} ({cell:6.3f} km² cells): {g_dense:.4f} km²")
    print(
        "\na coarse grid over-cloaks downtown; a fine grid must be re-tuned as"
        "\ndensity shifts — the quadtree adapts per query with one parameter."
    )


if __name__ == "__main__":
    main()
