"""Continuous (multi-version) publishing with m-invariance.

A hospital republishes its inpatient table monthly: patients are admitted
and discharged between versions. This example shows:

1. the cross-version intersection attack succeeding against naive
   per-version bucketization, and
2. the m-invariant publisher defeating it with a handful of counterfeit
   records.

Run with::

    python examples/continuous_publishing.py
"""

import numpy as np

from repro.sequential import MInvariance, MInvariantPublisher, cross_version_attack

DISEASES = ["flu", "bronchitis", "gastritis", "heart-disease", "diabetes", "asthma"]


def simulate_patients(n_versions, n_patients, churn, publisher_factory, seed):
    rng = np.random.default_rng(seed)
    records = {i: DISEASES[rng.integers(len(DISEASES))] for i in range(n_patients)}
    publisher = publisher_factory(0)
    releases = []
    next_id = n_patients
    for version in range(n_versions):
        if version:
            records = {
                rid: d for rid, d in records.items() if rng.random() > churn
            }
            admissions = {
                next_id + i: DISEASES[rng.integers(len(DISEASES))]
                for i in range(int(n_patients * churn))
            }
            next_id += len(admissions)
            records.update(admissions)
            if publisher_factory(version) is not publisher:
                publisher = publisher_factory(version) or publisher
        releases.append(publisher.publish(dict(records)))
    return releases


def main() -> None:
    m, churn, n = 3, 0.35, 600

    # Naive custodian: re-buckets from scratch every month.
    naive_publishers = {}

    def fresh_each_month(version):
        naive_publishers[version] = MInvariantPublisher(m=m, seed=100 + version)
        return naive_publishers[version]

    naive = simulate_patients(4, n, churn, fresh_each_month, seed=7)
    attack_naive = cross_version_attack(naive)
    print("naive monthly rebucketization (each version individually "
          f"{m}-diverse):")
    print(f"  surviving patients observed in >= 2 versions: "
          f"{attack_naive['n_survivors']}")
    print(f"  diagnosis pinned by intersection: "
          f"{attack_naive['pinned_fraction']:.1%}")
    print(f"  avg candidate diagnoses left:    "
          f"{attack_naive['avg_candidates']:.2f}")

    # m-invariant custodian: one publisher maintaining signatures.
    keeper = MInvariantPublisher(m=m, seed=7)
    invariant = simulate_patients(4, n, churn, lambda v: keeper, seed=7)
    attack_invariant = cross_version_attack(invariant)
    counterfeits = sum(r.counterfeits for r in invariant)
    total_published = sum(r.n_records() for r in invariant)
    assert MInvariance(m).check(invariant)
    print(f"\n{m}-invariant publishing (signatures frozen across versions):")
    print(f"  diagnosis pinned by intersection: "
          f"{attack_invariant['pinned_fraction']:.1%}")
    print(f"  avg candidate diagnoses left:    "
          f"{attack_invariant['avg_candidates']:.2f}")
    print(f"  price: {counterfeits} counterfeit records among "
          f"{total_published} published ({counterfeits / total_published:.2%})")


if __name__ == "__main__":
    main()
