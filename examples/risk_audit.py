"""Risk audit of an already-published release, including the composition
attack a naive custodian misses.

Scenario: a data custodian published two "safe" 8-anonymous views of the
same patient table to two different partners. This script audits each view
in isolation (both look fine) and then runs the intersection attack a
colluding pair of partners could mount.

Run with::

    python examples/risk_audit.py
"""

from repro import Anonymizer, KAnonymity, Mondrian
from repro.attacks import (
    background_knowledge_attack,
    homogeneity_attack,
    intersection_attack,
    linkage_risks,
    simulate_linkage,
)
from repro.data import load_medical, medical_hierarchies, medical_schema


def audit_single(name, table, release):
    linkage = linkage_risks(release)
    simulated = simulate_linkage(table, release, n_targets=300, seed=1)
    homogeneity = homogeneity_attack(release, confidence=0.9)
    background = background_knowledge_attack(release, eliminated=1, confidence=0.9)
    print(f"\n--- audit: {name} ---")
    print(f"  prosecutor max risk:        {linkage['prosecutor_max_risk']:.3f}")
    print(f"  marketer risk:              {linkage['marketer_risk']:.3f}")
    print(f"  simulated unique matches:   {simulated['unique_match_rate']:.1%}")
    print(f"  homogeneity exposure (90%): {homogeneity['exposed_fraction']:.1%}")
    print(f"  with 1 fact eliminated:     {background['exposed_fraction']:.1%}")


def main() -> None:
    table = load_medical(n_rows=4000, seed=21)
    anonymizer = Anonymizer(table, medical_schema(), medical_hierarchies())

    view_a = anonymizer.apply(KAnonymity(8), algorithm=Mondrian("strict"))
    view_b = anonymizer.apply(KAnonymity(8), algorithm=Mondrian("relaxed"))

    audit_single("view A (strict Mondrian, k=8)", table, view_a)
    audit_single("view B (relaxed Mondrian, k=8)", table, view_b)

    print("\n--- collusion: intersecting view A with view B ---")
    joint = intersection_attack(view_a, view_b)
    print(f"  shared records:                {joint['n_shared']}")
    print(f"  avg joint candidate set:       {joint['avg_intersection']:.2f} (k was 8)")
    print(f"  min joint candidate set:       {joint['min_intersection']}")
    print(f"  records below k:               {joint['below_k_fraction']:.1%}")
    print(f"  sensitive value pinned:        {joint['sensitive_pinned_fraction']:.1%}")
    print(
        "\nLesson: k-anonymity does not compose. Publish one view, or use a "
        "composable guarantee (differential privacy) for repeated releases."
    )


if __name__ == "__main__":
    main()
