"""Publishing location trajectories under the LKC adversary model.

A transit operator wants to release rider trajectories (location, time
doublets) for urban-planning research. An adversary who physically observed
a victim at L points can use them as a subsequence query. This example:

1. quantifies raw re-identification with the subsequence-linkage attack,
2. anonymizes with greedy global doublet suppression to LKC-privacy,
3. re-runs the attack and reports the utility retained.

Run with::

    python examples/trajectory_release.py
"""

from repro.trajectories import (
    TrajectoryLKC,
    generate_trajectories,
    subsequence_linkage_attack,
)


def main() -> None:
    db = generate_trajectories(
        n_records=400, grid=6, n_times=8, walk_length=7, seed=17
    )
    print(f"{len(db)} trajectories, {db.n_doublets()} doublets, "
          f"{len(db.doublet_universe())} distinct (location, time) pairs")

    l = 2
    raw = subsequence_linkage_attack(db, db, l=l, n_victims=200, seed=3)
    print(f"\nattack with L={l} observed doublets, raw release:")
    print(f"  uniquely re-identified: {raw['unique_match_rate']:.1%}")
    print(f"  avg candidate set:      {raw['avg_candidates']:.1f}")
    print(f"  sensitive confidence:   {raw['avg_sensitive_confidence']:.2f}")

    for k in (5, 20):
        model = TrajectoryLKC(l=l, k=k, c=0.8)
        anonymized, info = model.anonymize(db)
        attack = subsequence_linkage_attack(db, anonymized, l=l, n_victims=200, seed=3)
        print(f"\nafter {model.name} (global suppression of "
              f"{len(info['suppressed_doublets'])} doublets):")
        print(f"  uniquely re-identified: {attack['unique_match_rate']:.1%}")
        print(f"  min candidate set:      {attack['min_candidates']}")
        print(f"  sensitive confidence:   {attack['avg_sensitive_confidence']:.2f}")
        print(f"  doublet instances kept: {info['instances_retained']:.1%}")
        print(f"  emptied trajectories:   {info['empty_trajectories']}")

    print(
        "\nTradeoff: raising K strengthens the linkage bound but suppresses "
        "more of the movement data — the LKC dial for trajectory publishing."
    )


if __name__ == "__main__":
    main()
