"""Algorithm shootout: every anonymizer on the same task, one table.

Runs Datafly, Bottom-Up Generalization, Incognito, Flash, Mondrian (both
modes), TDS, Anatomy, and MDAV
against 5-anonymity (or their closest native guarantee) on the same census
extract, and prints the standard metric battery for each — the quick way to
pick an algorithm for a new dataset.

Run with::

    python examples/algorithm_shootout.py
"""

import time

from repro import (
    Anatomy,
    BottomUpGeneralization,
    Datafly,
    Flash,
    Incognito,
    KAnonymity,
    MDAVMicroaggregation,
    Mondrian,
    TopDownSpecialization,
)
from repro.attacks import linkage_risks
from repro.data import adult_hierarchies, adult_schema, load_adult
from repro.metrics import discernibility_of_release, gcp, non_uniform_entropy

K = 5


def main() -> None:
    table = load_adult(n_rows=3000, seed=9)
    schema = adult_schema()
    hierarchies = adult_hierarchies()

    algorithms = [
        Datafly(),
        BottomUpGeneralization(),
        Incognito(max_suppression=0.02),
        Flash(max_suppression=0.02),
        Mondrian("strict"),
        Mondrian("relaxed"),
        TopDownSpecialization(target="salary"),
    ]

    header = f"{'algorithm':>22} | {'time':>7} | {'classes':>7} | {'GCP':>6} | {'entropy':>7} | {'DM':>10} | {'max risk':>8}"
    print(header)
    print("-" * len(header))
    for algo in algorithms:
        start = time.perf_counter()
        release = algo.anonymize(table, schema, hierarchies, [KAnonymity(K)])
        elapsed = time.perf_counter() - start
        print(
            f"{algo.name:>22} | {elapsed:6.2f}s | {len(release.partition()):>7} | "
            f"{gcp(table, release, hierarchies):6.3f} | "
            f"{non_uniform_entropy(table, release, hierarchies):7.3f} | "
            f"{discernibility_of_release(release):10.0f} | "
            f"{linkage_risks(release)['prosecutor_max_risk']:8.3f}"
        )

    # Anatomy and MDAV provide different guarantees; report them separately.
    start = time.perf_counter()
    anatomy_release = Anatomy(l=5).anonymize(table, schema, hierarchies)
    print(
        f"\nanatomy[l=5]: {time.perf_counter() - start:.2f}s, "
        f"{len(anatomy_release.info['anatomized'].st)} groups, "
        f"{anatomy_release.suppressed} residual rows dropped "
        "(publishes exact QIs + separated sensitive table)"
    )

    start = time.perf_counter()
    mdav_release = MDAVMicroaggregation(K).anonymize(table, schema, hierarchies)
    print(
        f"mdav[k={K}]: {time.perf_counter() - start:.2f}s, "
        f"{len(mdav_release.info['groups'])} groups, "
        f"SSE {mdav_release.info['sse']:.0f} "
        "(replaces numeric QIs by group centroids, keeps them numeric)"
    )


if __name__ == "__main__":
    main()
