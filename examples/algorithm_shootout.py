"""Algorithm shootout: every anonymizer on the same task, one batch call.

Each contender is one declarative job spec; ``run_batch`` executes them all
against the same census extract and — because the engine-backed full-domain
searches (Datafly, Incognito, Flash) agree on roles and hierarchies —
shares one lattice-evaluation engine across them, so a node checked by one
search is a cache hit for the next. The engine's cache counters at the end
show the sharing. Bottom-Up, Mondrian, and TDS materialize their own
candidates; Anatomy and MDAV provide different guarantees (and a different
``anonymize`` signature), so they run through the library API.

Run with::

    python examples/algorithm_shootout.py
"""

from repro import Anatomy, MDAVMicroaggregation
from repro.api import AnonymizationConfig, run_batch
from repro.data import adult_hierarchies, adult_schema, load_adult

K = 5

ALGORITHMS = [
    {"algorithm": "datafly"},
    {"algorithm": "bottom-up", "max_suppression": 0.05},
    {"algorithm": "incognito", "max_suppression": 0.02},
    {"algorithm": "flash", "max_suppression": 0.02},
    {"algorithm": "mondrian", "mode": "strict"},
    {"algorithm": "mondrian", "mode": "relaxed"},
    {"algorithm": "tds", "target": "salary"},
]


def main() -> None:
    table = load_adult(n_rows=3000, seed=9)
    schema = adult_schema()
    hierarchies = adult_hierarchies()

    base = {
        "quasi_identifiers": schema.categorical_quasi_identifiers,
        "numeric_quasi_identifiers": schema.numeric_quasi_identifiers,
        "sensitive": schema.sensitive,
        "models": [{"model": "k-anonymity", "k": K}],
        "metrics": ["gcp", "non_uniform_entropy", "discernibility", "linkage"],
    }
    configs = [
        AnonymizationConfig.from_dict({**base, "algorithm": spec})
        for spec in ALGORITHMS
    ]
    results = run_batch(configs, table, hierarchies=hierarchies)

    header = (
        f"{'algorithm':>22} | {'time':>7} | {'classes':>7} | {'GCP':>6} | "
        f"{'entropy':>7} | {'DM':>10} | {'max risk':>8}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        release = result.release
        print(
            f"{release.algorithm:>22} | {result.timings['anonymize']:6.2f}s | "
            f"{len(release.partition()):>7} | "
            f"{result.metrics['gcp']:6.3f} | "
            f"{result.metrics['non_uniform_entropy']:7.3f} | "
            f"{result.metrics['discernibility']:10.0f} | "
            f"{result.metrics['linkage']['prosecutor_max_risk']:8.3f}"
        )

    engines = [result.engine for result in results if result.engine is not None]
    if engines:
        info = engines[0].cache_info()
        print(
            f"\nshared lattice engine: {info['from_rows']} nodes computed from rows, "
            f"{info['rollups']} rolled up, {info['hits']} cache hits across "
            f"{len(engines)} engine-backed jobs"
        )

    # Anatomy and MDAV provide different guarantees; report them separately.
    import time

    start = time.perf_counter()
    anatomy_release = Anatomy(l=5).anonymize(table, schema, hierarchies)
    print(
        f"\nanatomy[l=5]: {time.perf_counter() - start:.2f}s, "
        f"{len(anatomy_release.info['anatomized'].st)} groups, "
        f"{anatomy_release.suppressed} residual rows dropped "
        "(publishes exact QIs + separated sensitive table)"
    )

    start = time.perf_counter()
    mdav_release = MDAVMicroaggregation(K).anonymize(table, schema, hierarchies)
    print(
        f"mdav[k={K}]: {time.perf_counter() - start:.2f}s, "
        f"{len(mdav_release.info['groups'])} groups, "
        f"SSE {mdav_release.info['sse']:.0f} "
        "(replaces numeric QIs by group centroids, keeps them numeric)"
    )


if __name__ == "__main__":
    main()
