"""Syntactic anonymization vs differential privacy on the same workload.

The two halves of the PPDP toolbox answer different questions:

* generalization/anatomy publish *records* an analyst can query freely;
* differential privacy publishes *answers* (or synthetic records) with a
  formal, attacker-independent guarantee.

This example runs the same COUNT workload against (a) a Mondrian release,
(b) an Anatomy release, (c) DP noisy answers at several ε, and (d) a DP
synthetic table — and shows where the accuracy crossovers fall. It also
demonstrates budget accounting and composition.

Run with::

    python examples/dp_vs_anonymization.py
"""

import numpy as np

from repro import Anatomy, KAnonymity, Mondrian
from repro.data import load_medical, medical_hierarchies, medical_schema
from repro.dp import BudgetAccountant, ChainSynthesizer, LaplaceMechanism
from repro.errors import BudgetError
from repro.metrics import (
    anatomy_count,
    generalized_count,
    median_relative_error,
    random_workload,
    true_count,
)


def main() -> None:
    table = load_medical(n_rows=4000, seed=5)
    schema = medical_schema()
    hierarchies = medical_hierarchies()

    workload = random_workload(
        table, ["zipcode", "nationality"], "disease", n_queries=80, seed=1
    )
    truths = [true_count(table, q) for q in workload]

    print("median relative error on an 80-query COUNT workload:\n")

    # (a) generalization
    release = Mondrian().anonymize(table, schema, hierarchies, [KAnonymity(6)])
    general = [generalized_count(release, q, hierarchies, original=table) for q in workload]
    print(f"  mondrian k=6:        {median_relative_error(truths, general):.3f}")

    # (b) anatomy
    anatomized, _ = Anatomy(l=3).anatomize(table, schema)
    anatomy = [anatomy_count(anatomized, q) for q in workload]
    print(f"  anatomy l=3:         {median_relative_error(truths, anatomy):.3f}")

    # (c) interactive DP at several budgets (each query costs eps/|workload|)
    rng = np.random.default_rng(7)
    for total_epsilon in (0.5, 2.0, 8.0):
        per_query = total_epsilon / len(workload)
        mech = LaplaceMechanism(per_query)
        noisy = mech.randomize(np.asarray(truths), rng)
        print(
            f"  DP interactive eps={total_epsilon:<4}: "
            f"{median_relative_error(truths, noisy):.3f} "
            f"(per-query eps {per_query:.4f})"
        )

    # (d) DP synthetic data: pay once, query forever (post-processing free).
    synthetic = ChainSynthesizer(epsilon=2.0, seed=7).fit_sample(
        table, columns=["zipcode", "nationality", "disease"]
    )
    synth_answers = [true_count(synthetic, q) for q in workload]
    print(f"  DP synthetic eps=2:  {median_relative_error(truths, synth_answers):.3f}")

    # Budget accounting: the custodian caps total spend at eps=1.
    print("\nbudget accounting demo (cap eps=1.0):")
    accountant = BudgetAccountant(epsilon_cap=1.0)
    accountant.spend(0.4)
    print(f"  after one 0.4 release: spent {accountant.spent_epsilon():.1f}, "
          f"remaining {accountant.remaining_epsilon():.1f}")
    accountant.spend(0.5)
    try:
        accountant.spend(0.2)
    except BudgetError as exc:
        print(f"  third release blocked: {exc}")


if __name__ == "__main__":
    main()
