"""Publishing market-basket (set-valued) data with kᵐ-anonymity.

Transaction data has no fixed quasi-identifier schema — any m items an
attacker observed (a neighbour's shopping, a pharmacy visit) can identify a
basket. This example builds a purchase log over a product taxonomy, shows a
concrete m-item re-identification, then anonymizes to kᵐ-anonymity and
reports the utility bill.

Run with::

    python examples/set_valued_publishing.py
"""

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.transactions import KmAnonymity, TransactionDB, km_violations


def build_taxonomy() -> Hierarchy:
    return Hierarchy.from_tree(
        {
            "pharmacy": {
                "chronic": ["insulin", "statins", "antiretrovirals"],
                "everyday": ["aspirin", "vitamins", "bandages"],
            },
            "grocery": {
                "fresh": ["milk", "eggs", "apples", "lettuce"],
                "packaged": ["pasta", "cereal", "coffee"],
            },
        }
    )


def main() -> None:
    taxonomy = build_taxonomy()
    items = list(taxonomy.ground)
    rng = np.random.default_rng(13)
    popularity = 1.0 / np.arange(1, len(items) + 1) ** 1.1
    popularity /= popularity.sum()
    baskets = []
    for _ in range(500):
        size = int(rng.integers(2, 6))
        picks = rng.choice(len(items), size=size, replace=False, p=popularity)
        baskets.append({items[i] for i in picks})
    db = TransactionDB(baskets, taxonomy)

    k, m = 5, 2
    model = KmAnonymity(k=k, m=m)
    raw_levels = np.zeros(len(items), dtype=np.int64)
    violations = km_violations(db.generalized(raw_levels), k, m)
    print(f"{len(baskets)} baskets over {len(items)} products")
    print(f"raw data: {len(violations)} item combinations of size <= {m} "
          f"match fewer than {k} baskets")
    example = violations[-1]  # tokens are (level, code) pairs
    names = sorted(str(taxonomy.labels(level)[code]) for level, code in example)
    print(f"  e.g. an attacker who saw someone buy {names} can "
          f"narrow them to < {k} baskets — and read the rest of the basket")

    levels = model.anonymize(db)
    assert model.check(db, levels)
    loss = model.utility_loss(db, levels)
    print(f"\nafter {model.name} generalization: 0 violating combinations")
    print(f"per-item-occurrence information loss (NCP): {loss:.3f}")

    raised = {
        items[i]: int(levels[i]) for i in range(len(items)) if levels[i] > 0
    }
    print(f"items generalized ({len(raised)}/{len(items)}):")
    for item, level in sorted(raised.items(), key=lambda kv: -kv[1])[:8]:
        label_code = taxonomy.map_codes(
            np.array([items.index(item)], dtype=np.int32), level
        )[0]
        print(f"  {item:>16} -> {taxonomy.labels(level)[label_code]}")

    sample = db.generalized_names(levels)[0]
    print(f"\nfirst published basket: {sorted(str(x) for x in sample)}")


if __name__ == "__main__":
    main()
