"""Hospital discharge publishing: defeating the homogeneity and skewness
attacks.

Walks the ℓ-diversity / t-closeness motivating scenario end to end, with
each publishing policy written as a declarative job — the three configs
differ only in their ``models`` list, and ``run_batch`` shares one lattice
engine across them:

1. publish with k-anonymity only and *run the attacks* to show the leak;
2. add distinct ℓ-diversity — homogeneity attack dies, skew remains;
3. add t-closeness — skewness attack dies too;
4. compare the information-loss bill for each step.

Run with::

    python examples/hospital_release.py
"""

from repro.api import AnonymizationConfig, run_batch
from repro.attacks import homogeneity_attack, skewness_gain
from repro.data import load_medical, medical_hierarchies

K_ONLY = [{"model": "k-anonymity", "k": 4}]
DIVERSE = K_ONLY + [{"model": "distinct-l-diversity", "l": 3, "sensitive": "disease"}]
CLOSE = DIVERSE + [{"model": "t-closeness", "t": 0.2, "sensitive": "disease"}]

STEPS = [
    ("k=4 only", K_ONLY),
    ("k=4 + distinct 3-diversity", DIVERSE),
    ("k=4 + 3-diversity + 0.2-closeness", CLOSE),
]


def audit(name, result):
    release = result.release
    homogeneity = homogeneity_attack(release, confidence=0.95)
    skew = skewness_gain(release)
    print(f"\n--- {name} ---")
    print(f"  classes: {len(release.partition())}, min size: "
          f"{release.equivalence_class_sizes().min()}")
    print(f"  homogeneity: {homogeneity['exposed_fraction']:.1%} of patients in "
          f">=95%-confident classes (max confidence "
          f"{homogeneity['max_inference_confidence']:.2f})")
    print(f"  skewness: max EMD from global disease distribution "
          f"{skew['max_emd']:.3f}, belief amplification "
          f"{skew['max_belief_amplification']:.1f}x")
    print(f"  information loss (GCP): {result.metrics['gcp']:.3f}")


def main() -> None:
    table = load_medical(n_rows=4000, seed=3)

    configs = [
        AnonymizationConfig.from_dict(
            {
                "quasi_identifiers": ["zipcode", "nationality"],
                "numeric_quasi_identifiers": ["age"],
                "sensitive": ["disease"],
                "models": models,
                "algorithm": {"algorithm": "mondrian", "mode": "strict"},
                "metrics": ["gcp"],
            }
        )
        for _, models in STEPS
    ]
    results = run_batch(configs, table, hierarchies=medical_hierarchies())

    # Step 1: k-anonymity alone. Identity is protected, the disease is not:
    # some 4-person classes are all "Flu" — anyone placed there is outed.
    # Step 2: require 3 distinct diseases per class.
    # Step 3: additionally bound each class's disease distribution to stay
    # within EMD 0.2 of the hospital-wide distribution.
    for (name, _), result in zip(STEPS, results):
        audit(name, result)

    print(
        "\nEach step buys a strictly stronger attacker guarantee and costs "
        "strictly more utility — the PPDP tradeoff in one screen."
    )


if __name__ == "__main__":
    main()
