"""Hospital discharge publishing: defeating the homogeneity and skewness
attacks.

Walks the ℓ-diversity / t-closeness motivating scenario end to end:

1. publish with k-anonymity only and *run the attacks* to show the leak;
2. add distinct ℓ-diversity — homogeneity attack dies, skew remains;
3. add t-closeness — skewness attack dies too;
4. compare the information-loss bill for each step.

Run with::

    python examples/hospital_release.py
"""

from repro import (
    Anonymizer,
    DistinctLDiversity,
    KAnonymity,
    TCloseness,
)
from repro.attacks import homogeneity_attack, skewness_gain
from repro.data import load_medical, medical_hierarchies, medical_schema
from repro.metrics import gcp


def audit(name, table, hierarchies, release):
    homogeneity = homogeneity_attack(release, confidence=0.95)
    skew = skewness_gain(release)
    loss = gcp(table, release, hierarchies)
    print(f"\n--- {name} ---")
    print(f"  classes: {len(release.partition())}, min size: "
          f"{release.equivalence_class_sizes().min()}")
    print(f"  homogeneity: {homogeneity['exposed_fraction']:.1%} of patients in "
          f">=95%-confident classes (max confidence "
          f"{homogeneity['max_inference_confidence']:.2f})")
    print(f"  skewness: max EMD from global disease distribution "
          f"{skew['max_emd']:.3f}, belief amplification "
          f"{skew['max_belief_amplification']:.1f}x")
    print(f"  information loss (GCP): {loss:.3f}")


def main() -> None:
    table = load_medical(n_rows=4000, seed=3)
    schema = medical_schema()
    hierarchies = medical_hierarchies()
    anonymizer = Anonymizer(table, schema, hierarchies)

    # Step 1: k-anonymity alone. Identity is protected, the disease is not:
    # some 4-person classes are all "Flu" — anyone placed there is outed.
    k_only = anonymizer.apply(KAnonymity(4))
    audit("k=4 only", table, hierarchies, k_only)

    # Step 2: require 3 distinct diseases per class.
    diverse = anonymizer.apply(KAnonymity(4), DistinctLDiversity(3, "disease"))
    audit("k=4 + distinct 3-diversity", table, hierarchies, diverse)

    # Step 3: additionally bound each class's disease distribution to stay
    # within EMD 0.2 of the hospital-wide distribution.
    close = anonymizer.apply(
        KAnonymity(4),
        DistinctLDiversity(3, "disease"),
        TCloseness(0.2, "disease"),
    )
    audit("k=4 + 3-diversity + 0.2-closeness", table, hierarchies, close)

    print(
        "\nEach step buys a strictly stronger attacker guarantee and costs "
        "strictly more utility — the PPDP tradeoff in one screen."
    )


if __name__ == "__main__":
    main()
