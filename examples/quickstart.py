"""Quickstart: anonymize a census extract and audit the release.

Run with::

    python examples/quickstart.py
"""

from repro import Anonymizer, DistinctLDiversity, KAnonymity, Mondrian
from repro.data import adult_hierarchies, adult_schema, load_adult
from repro.metrics import accuracy_experiment


def main() -> None:
    # 1. Load data. The generator reproduces the UCI Adult schema offline;
    #    swap in load_adult_file("adult.data") if you have the real file.
    table = load_adult(n_rows=5000, seed=0)
    print(f"original: {table}")

    # 2. Declare the publishing scenario: which attributes link externally
    #    (quasi-identifiers), which are sensitive, and how values generalize.
    schema = adult_schema()  # QIs: age + 6 categoricals; sensitive: occupation
    anonymizer = Anonymizer(table, schema, adult_hierarchies())

    # 3. Anonymize: 10-anonymity plus 3-diversity on occupation, via Mondrian.
    release = anonymizer.apply(
        KAnonymity(10),
        DistinctLDiversity(3, "occupation"),
        algorithm=Mondrian("strict"),
    )
    print("\nrelease summary:")
    for key, value in release.summary().items():
        print(f"  {key}: {value}")

    # 4. Audit: re-identification risk and information loss.
    print("\nrisk report:")
    for key, value in anonymizer.risk_report(release).items():
        print(f"  {key}: {value:.4f}")
    print("\nutility report:")
    for key, value in anonymizer.utility_report(release).items():
        print(f"  {key}: {value:.4f}")

    # 5. Check the release still supports mining: predict income from the
    #    anonymized quasi-identifiers.
    result = accuracy_experiment(table, release, "salary", seed=1)
    print("\nclassification workload (predict salary):")
    print(f"  trained on original:   {result['original_accuracy']:.3f}")
    print(f"  trained on anonymized: {result['anonymized_accuracy']:.3f}")
    print(f"  majority baseline:     {result['baseline_accuracy']:.3f}")

    # 6. Inspect a few published rows.
    print("\nfirst rows of the release:")
    for row in release.table.head(3).to_rows():
        print(f"  {row}")


if __name__ == "__main__":
    main()
