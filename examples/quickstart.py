"""Quickstart: describe an anonymization job declaratively, run it, audit it.

The job is plain data — roles, models, algorithm, metrics — so the exact
same description can be saved as JSON, replayed by the CLI
(``python -m repro in.csv out.csv --config job.json``), or queued by a
service. Only the curated Adult generalization trees are passed as live
objects (they have no JSON spec form); everything else round-trips.

Run with::

    python examples/quickstart.py
"""

from repro.api import AnonymizationConfig, run
from repro.data import adult_hierarchies, load_adult
from repro.metrics import accuracy_experiment

CONFIG = {
    # 1. The publishing scenario: which attributes link externally
    #    (quasi-identifiers), which are sensitive, which to drop.
    "quasi_identifiers": [
        "workclass", "education", "marital_status", "race", "sex", "native_country",
    ],
    "numeric_quasi_identifiers": ["age"],
    "sensitive": ["occupation"],
    # 2. The guarantee: 10-anonymity plus 3 distinct occupations per class.
    "models": [
        {"model": "k-anonymity", "k": 10},
        {"model": "distinct-l-diversity", "l": 3, "sensitive": "occupation"},
    ],
    # 3. The algorithm, and the audit metrics to compute into the result.
    "algorithm": {"algorithm": "mondrian", "mode": "strict"},
    "metrics": ["linkage", "gcp", "discernibility", "c_avg"],
}


def main() -> None:
    # The generator reproduces the UCI Adult schema offline; swap in
    # load_adult_file("adult.data") if you have the real file.
    table = load_adult(n_rows=5000, seed=0)
    print(f"original: {table}")

    config = AnonymizationConfig.from_dict(CONFIG)
    print(f"\njob as JSON ({len(config.to_json())} bytes): replayable via "
          "`python -m repro in.csv out.csv --config job.json`")

    result = run(config, table, hierarchies=adult_hierarchies())
    release = result.release

    print("\nrelease summary:")
    for key, value in release.summary().items():
        print(f"  {key}: {value}")

    print("\nrequested metrics:")
    for name, value in result.metrics.items():
        if isinstance(value, dict):
            print(f"  {name}:")
            for k, v in value.items():
                print(f"    {k}: {v:.4f}")
        else:
            print(f"  {name}: {value:.4f}")
    print("\nphase timings:")
    for phase, seconds in result.timings.items():
        print(f"  {phase}: {seconds * 1000:.1f} ms")

    # 4. Check the release still supports mining: predict income from the
    #    anonymized quasi-identifiers.
    outcome = accuracy_experiment(table, release, "salary", seed=1)
    print("\nclassification workload (predict salary):")
    print(f"  trained on original:   {outcome['original_accuracy']:.3f}")
    print(f"  trained on anonymized: {outcome['anonymized_accuracy']:.3f}")
    print(f"  majority baseline:     {outcome['baseline_accuracy']:.3f}")

    # 5. Inspect a few published rows.
    print("\nfirst rows of the release:")
    for row in release.table.head(3).to_rows():
        print(f"  {row}")


if __name__ == "__main__":
    main()
