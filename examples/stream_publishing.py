"""Continuous publishing: anonymize a live record stream with CASTLE.

A hospital admission feed must be published to a research consumer within a
bounded delay — no batching over the whole day. CASTLE clusters arriving
records and releases each one generalized to a region shared by at least k
peers. This example streams admissions, shows the emitted generalized
records, and compares information loss across delay budgets against the
batch (Mondrian) lower bound.

Run with::

    python examples/stream_publishing.py
"""

import numpy as np

from repro import KAnonymity, Mondrian, Schema
from repro.core import Column, Hierarchy, IntervalHierarchy, Table
from repro.metrics import gcp
from repro.streams import Castle, StreamTuple

WARDS = {
    "surgical": ["orthopedics", "cardiac-surgery"],
    "medical": ["cardiology", "oncology"],
    "acute": ["emergency", "intensive-care"],
}


def admissions(n: int, seed: int):
    """Synthetic admission feed: (age, ward) per arriving patient."""
    rng = np.random.default_rng(seed)
    wards = sorted(w for group in WARDS.values() for w in group)
    for position in range(n):
        yield StreamTuple(
            position=position,
            numeric={"age": float(np.clip(rng.normal(55, 18), 0, 100))},
            categorical={"ward": int(rng.integers(0, len(wards)))},
            payload=f"admission-{position}",
        )


def run_stream(delta: int, n: int = 1500, k: int = 5):
    ward_hierarchy = Hierarchy.from_tree(WARDS, root="hospital")
    castle = Castle(
        k=k,
        delta=delta,
        numeric_ranges={"age": (0, 100)},
        hierarchies={"ward": ward_hierarchy},
        beta=20,
    )
    emitted = []
    for record in admissions(n, seed=42):
        emitted.extend(castle.push(record))
    emitted.extend(castle.flush())
    return emitted, castle


def main() -> None:
    k, n = 5, 1500

    # 1. Stream with a mid-sized delay budget; inspect the first emissions.
    emitted, castle = run_stream(delta=60, n=n, k=k)
    print(f"streamed {n} admissions, emitted {len(emitted)} (k={k}, delta=60)")
    print(f"cluster activity: {castle.stats}")
    print("\nfirst three published records:")
    for record in emitted[:3]:
        lo, hi = record.generalized["age"]
        print(
            f"  {record.payload}: age=[{lo:.0f}-{hi:.0f}], "
            f"ward={record.generalized['ward']}, "
            f"shared by {record.cluster_size} patients (loss={record.loss:.3f})"
        )

    # 2. The privacy/latency dial: loss falls as the delay budget grows.
    print("\navg information loss vs delay budget:")
    for delta in (10, 30, 60, 150, 400):
        records, _ = run_stream(delta=delta, n=n, k=k)
        loss = float(np.mean([r.loss for r in records]))
        print(f"  delta={delta:>4}: {loss:.4f}")

    # 3. Batch lower bound: Mondrian over the complete table.
    rng = np.random.default_rng(42)
    rows = list(admissions(n, seed=42))
    wards = sorted(w for group in WARDS.values() for w in group)
    table = Table(
        [
            Column.numeric("age", [r.numeric["age"] for r in rows]),
            Column.categorical("ward", [wards[r.categorical["ward"]] for r in rows]),
        ]
    )
    schema = Schema.build(quasi_identifiers=["ward"], numeric_quasi_identifiers=["age"])
    hierarchies = {
        "ward": Hierarchy.from_tree(WARDS, root="hospital"),
        "age": IntervalHierarchy.uniform(0, 100, 20),
    }
    release = Mondrian().anonymize(table, schema, hierarchies, [KAnonymity(k)])
    print(f"\nbatch Mondrian GCP (sees the whole table): {gcp(table, release, hierarchies):.4f}")
    print("a streaming publisher can approach, but not beat, the batch loss.")


if __name__ == "__main__":
    main()
