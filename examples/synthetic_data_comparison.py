"""Differentially private synthetic data: MWEM vs chain synthesizer.

A statistics office wants to release a fully synthetic microdata file under
a fixed privacy budget. Two strategies are on the table:

* **ChainSynthesizer** (PrivBayes-style): fixes a Bayesian chain of noisy
  2-way marginals — workload-oblivious, scales to many columns.
* **MWEM**: adapts to a declared query workload — tighter on those queries,
  but confined to a low-dimensional cross domain.

This example fits both at several budgets, scores them on workload error
and on distributional utility (marginal TV distance, pairwise association
preservation), and tracks the cumulative spend with RDP-style accounting.

Run with::

    python examples/synthetic_data_comparison.py
"""

import numpy as np

from repro.data import load_adult
from repro.dp import (
    BudgetAccountant,
    ChainSynthesizer,
    MWEM,
    marginal_workload,
    workload_avg_error,
)
from repro.dp.mwem import _Domain
from repro.metrics import distribution_report

COLUMNS = ["sex", "race", "marital_status", "workclass"]


def main() -> None:
    table = load_adult(n_rows=8000, seed=0).select(COLUMNS)
    workload = marginal_workload(table, COLUMNS, ways=(1, 2))
    domain = _Domain(table, COLUMNS)
    true_hist = domain.histogram(table)
    print(f"original: {table}")
    print(f"domain cells: {domain.n_cells}, workload queries: {len(workload)}")

    accountant = BudgetAccountant(epsilon_cap=20.0)

    print(f"\n{'epsilon':>8} | {'mwem err':>9} | {'chain err':>9} | {'mwem tv':>8} | {'chain tv':>8} | {'mwem assoc':>10} | {'chain assoc':>11}")
    for epsilon in (0.25, 1.0, 4.0):
        mwem = MWEM(epsilon=epsilon, n_iterations=30, seed=0).fit(
            table, COLUMNS, workload, accountant=accountant
        )
        mwem_table = mwem.sample(table.n_rows, seed=1)

        chain = ChainSynthesizer(epsilon=epsilon, seed=0)
        chain_table = chain.fit_sample(table, COLUMNS, accountant=accountant)

        mwem_err = workload_avg_error(true_hist, mwem.synthetic_histogram, workload)
        chain_err = workload_avg_error(true_hist, domain.histogram(chain_table), workload)

        mwem_report = distribution_report(table, mwem_table, COLUMNS)
        chain_report = distribution_report(table, chain_table, COLUMNS)
        print(
            f"{epsilon:>8} | {mwem_err:>9.1f} | {chain_err:>9.1f} | "
            f"{mwem_report['avg_tv']:>8.4f} | {chain_report['avg_tv']:>8.4f} | "
            f"{mwem_report['association_error']:>10.4f} | {chain_report['association_error']:>11.4f}"
        )

    print(f"\ncumulative budget spent (basic composition): eps = {accountant.spent_epsilon():.2f}")

    # Peek at a few synthetic rows from the strongest release.
    mwem = MWEM(epsilon=4.0, n_iterations=30, seed=0).fit(table, COLUMNS, workload)
    synthetic = mwem.sample(5, seed=7)
    print("\nsample synthetic records (eps=4 MWEM):")
    for row in synthetic.to_rows():
        print(f"  {row}")

    # The uniform straw man, for scale.
    uniform = np.full(domain.n_cells, true_hist.sum() / domain.n_cells)
    print(f"\nuniform-distribution workload error: {workload_avg_error(true_hist, uniform, workload):.1f}")
    print("both synthesizers sit far below this; with enough iterations MWEM")
    print("overtakes the chain on its declared workload at moderate budgets.")


if __name__ == "__main__":
    main()
