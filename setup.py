import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-sourced version: parsed (not imported) from repro/_version.py so a
# build does not need the runtime dependencies installed.
_version_text = (Path(__file__).parent / "src" / "repro" / "_version.py").read_text()
VERSION = re.search(r'^__version__ = "([^"]+)"', _version_text, re.M).group(1)

setup(
    name="repro",
    version=VERSION,
    description="Privacy-preserving data publishing: algorithms, models, attacks, and an anonymization service",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.data": ["*.json"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
