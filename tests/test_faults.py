"""Fault tolerance: deterministic injection, retries, deadlines, the ladder.

Pins the robustness contracts of the batch executor:

* the fault-injection subsystem (``repro.core.faults``) is deterministic —
  the same seed always produces the same failure sequence — and plans are
  validated, JSON round-trippable, and scoped by :func:`faults.injection`;
* cooperative deadlines interrupt jobs at the engine's node-evaluation
  checkpoints as :class:`JobTimeoutError` / :class:`BatchDeadlineError`;
* ``run_batch(on_error="collect")`` isolates failing jobs as structured
  :class:`JobFailure` records with the taxonomy label, per-attempt timings,
  and the exponential ``retry_backoff * 2**(attempt-1)`` schedule;
* nonsense policy combinations are rejected at validation time with
  key-naming :class:`ConfigError` messages;
* a process-backend worker killed mid-batch (``os._exit`` via the
  ``worker-kill`` point) is survived through the degradation ladder: every
  job still gets a result, surviving releases are byte-identical to the
  fault-free sequential run, and no shared-memory segment leaks;
* the CLI surfaces the same policy (``--on-error``, ``--retries``,
  ``--job-timeout``) with failure summaries and exit-code semantics.
"""

import glob
import json

import pytest

from repro.api import AnonymizationConfig, FailurePolicy, JobFailure, run, run_batch
from repro.api import executor as executor_module
from repro.cli import main as cli_main
from repro.core import faults
from repro.core.deadline import Deadline, current_deadline, deadline_scope, tightest
from repro.core.io import read_csv
from repro.errors import (
    BatchDeadlineError,
    ConfigError,
    FaultInjectedError,
    InfeasibleError,
    JobTimeoutError,
    classify_error,
)

CSV_TEXT = (
    "zipcode,job,age,disease\n"
    "13053,engineer,29,flu\n"
    "13068,teacher,31,hiv\n"
    "13053,engineer,35,ulcer\n"
    "13068,nurse,40,flu\n"
    "14850,teacher,22,flu\n"
    "14850,nurse,24,cancer\n"
    "14853,engineer,28,hiv\n"
    "14853,teacher,33,ulcer\n"
)

JOB = {
    "quasi_identifiers": ["zipcode", "job"],
    "numeric_quasi_identifiers": ["age"],
    "sensitive": ["disease"],
    "models": [{"model": "k-anonymity", "k": 2}],
    "algorithm": {"algorithm": "flash"},
}

#: k so large no generalization satisfies it — the stock failing job.
INFEASIBLE = {**JOB, "models": [{"model": "k-anonymity", "k": 10**9}]}


def _configs(*dicts):
    return [AnonymizationConfig.from_dict(d) for d in dicts]


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(CSV_TEXT)
    return path


@pytest.fixture
def table(csv_path):
    return read_csv(
        csv_path, categorical=["zipcode", "job", "disease"], numeric=["age"]
    )


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed (env read stays lazy)."""
    faults.reset()
    yield
    faults.reset()


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            faults.FaultPlan({"no-such-point": {}})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            faults.FaultPlan({"evaluate-node": {"whenever": 3}})

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5, True, "half"])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="key 'rate'"):
            faults.FaultPlan({"evaluate-node": {"rate": rate}})

    @pytest.mark.parametrize("value", [0, -1, 1.5, True])
    def test_bad_at_every_rejected(self, value):
        with pytest.raises(ValueError, match="positive integer"):
            faults.FaultPlan({"evaluate-node": {"at": value}})

    def test_bad_error_family_rejected(self):
        with pytest.raises(ValueError, match="key 'error'"):
            faults.FaultPlan({"evaluate-node": {"error": "kaboom"}})

    def test_json_round_trip(self):
        plan = faults.FaultPlan({"worker-kill": {"at": 2, "kill": True}}, seed=7)
        clone = faults.FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert clone.to_dict() == plan.to_dict()

    def test_injection_scope_restores_previous_state(self):
        assert not faults.any_armed()
        with faults.injection({"points": {"evaluate-node": {}}}):
            assert faults.any_armed()
        assert not faults.any_armed()

    def test_env_var_arms_lazily(self, monkeypatch):
        plan = {"points": {"evaluate-node": {"at": 1}}, "seed": 3}
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(plan))
        faults.reset()
        assert faults.any_armed()
        assert faults.export_plan() == plan

    def test_invalid_env_var_is_a_loud_error(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "{not json")
        faults.reset()
        with pytest.raises(ValueError, match="not valid JSON"):
            faults.any_armed()


class TestDeterminism:
    def test_rate_decisions_are_a_pure_function_of_seed(self):
        spec = {"rate": 0.5}
        first = [faults._decide(spec, 7, "evaluate-node", n) for n in range(1, 101)]
        second = [faults._decide(spec, 7, "evaluate-node", n) for n in range(1, 101)]
        other = [faults._decide(spec, 8, "evaluate-node", n) for n in range(1, 101)]
        assert first == second
        assert first != other
        assert 20 < sum(first) < 80  # the hash draw actually approximates rate

    def test_same_seed_same_failure_sequence(self, table):
        configs = _configs(JOB, {**JOB, "metrics": ["gcp"]}, JOB)
        plan = {"points": {"evaluate-node": {"rate": 0.4}}, "seed": 11}

        def fired_log():
            with faults.injection(plan):
                results = run_batch(configs, table, on_error="collect")
                log = faults.fired()
            statuses = [r.status for r in results]
            return log, statuses

        first_log, first_statuses = fired_log()
        second_log, second_statuses = fired_log()
        assert first_log == second_log
        assert first_statuses == second_statuses
        assert any(isinstance(s, str) and s == "failed" for s in first_statuses)

    def test_at_triggers_exactly_once(self, table):
        with faults.injection({"points": {"evaluate-node": {"at": 1}}}):
            results = run_batch(_configs(JOB), table, on_error="collect")
            assert faults.fired() == [("evaluate-node", 1)]
        (failure,) = results
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "fault"

    def test_match_filter_only_counts_eligible_calls(self):
        faults.arm({"points": {"worker-kill": {"at": 1, "match": {"env": 1}}}})
        faults.fire("worker-kill", env=0, job=0)  # filtered out, not counted
        with pytest.raises(FaultInjectedError):
            faults.fire("worker-kill", env=1, job=0)


class TestDeadlines:
    def test_requires_exactly_one_clock(self):
        with pytest.raises(ValueError, match="exactly one"):
            Deadline()
        with pytest.raises(ValueError, match="exactly one"):
            Deadline(1.0, walltime=1.0)

    def test_kind_selects_the_taxonomy_error(self):
        with pytest.raises(JobTimeoutError):
            Deadline(1e-9, kind="job-timeout").check()
        with pytest.raises(BatchDeadlineError):
            Deadline(walltime=0.0, kind="batch-deadline").check()

    def test_tightest_picks_least_remaining(self):
        loose = Deadline(100.0)
        tight = Deadline(0.5)
        assert tightest(loose, None, tight) is tight
        assert tightest(None, None) is None

    def test_scope_nesting_and_explicit_clear(self):
        outer = Deadline(100.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_config_job_timeout_interrupts_run(self, table):
        config = AnonymizationConfig.from_dict({**JOB, "job_timeout": 0.01})
        plan = {"points": {"evaluate-node": {"delay": 0.05}}}
        with faults.injection(plan):
            with pytest.raises(JobTimeoutError, match="job timeout"):
                run(config, table)

    def test_batch_deadline_collects_deadline_failures(self, table):
        configs = _configs(JOB, JOB, JOB)
        plan = {"points": {"evaluate-node": {"delay": 0.05, "every": 1}}}
        with faults.injection(plan):
            results = run_batch(
                configs, table, on_error="collect", batch_deadline=0.02
            )
        assert all(isinstance(r, JobFailure) for r in results)
        assert {r.error_type for r in results} == {"deadline"}

    def test_deadline_failures_are_not_retried(self, table):
        plan = {"points": {"evaluate-node": {"delay": 0.05, "every": 1}}}
        with faults.injection(plan):
            (failure,) = run_batch(
                _configs(JOB),
                table,
                on_error="collect",
                batch_deadline=0.02,
                retries=3,
            )
        assert isinstance(failure, JobFailure)
        assert len(failure.attempts) == 1  # BatchDeadlineError is non-retryable


class TestRetries:
    def test_retry_succeeds_after_transient_fault(self, table):
        with faults.injection({"points": {"evaluate-node": {"at": 1}}}):
            (result,) = run_batch(
                _configs(JOB), table, on_error="collect", retries=1
            )
        assert result.status == "ok"
        assert result.attempts == 2
        assert result.error["type"] == "fault"  # audit trail of attempt 1
        assert result.release is not None

    def test_backoff_schedule_is_exponential(self, table, monkeypatch):
        sleeps = []
        monkeypatch.setattr(executor_module, "_sleep", sleeps.append)
        plan = {"points": {"evaluate-node": {"every": 1}}}
        with faults.injection(plan):
            (failure,) = run_batch(
                _configs(JOB),
                table,
                on_error="collect",
                retries=3,
                retry_backoff=0.001,
            )
        assert isinstance(failure, JobFailure)
        assert len(failure.attempts) == 4
        assert sleeps == [0.001, 0.002, 0.004]
        assert [a["backoff"] for a in failure.attempts[:-1]] == sleeps
        assert "backoff" not in failure.attempts[-1]

    def test_collect_isolates_the_bad_job(self, table):
        results = run_batch(
            _configs(JOB, INFEASIBLE, JOB), table, on_error="collect"
        )
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        failure = results[1]
        assert failure.error_type == "infeasible"
        assert failure.error["message"] in failure.error["traceback"]
        payload = failure.to_dict()
        assert payload["status"] == "failed"
        assert payload["attempts"][0]["attempt"] == 1

    def test_raise_mode_keeps_the_historic_contract(self, table):
        with pytest.raises(InfeasibleError):
            run_batch(_configs(JOB, INFEASIBLE), table)

    def test_result_to_dict_carries_status_and_attempts(self, table):
        (result,) = run_batch(_configs(JOB), table)
        payload = result.to_dict()
        assert payload["status"] == "ok"
        assert payload["attempts"] == 1
        assert "error" not in payload


class TestPolicyValidation:
    @pytest.mark.parametrize(
        ("kwargs", "key"),
        [
            ({"on_error": "ignore"}, "on_error"),
            ({"on_error": "collect", "job_timeout": 0}, "job_timeout"),
            ({"on_error": "collect", "job_timeout": float("inf")}, "job_timeout"),
            ({"on_error": "collect", "batch_deadline": -3}, "batch_deadline"),
            ({"on_error": "collect", "retries": -1}, "retries"),
            ({"on_error": "collect", "retries": 1.5}, "retries"),
            ({"on_error": "collect", "retries": 1, "retry_backoff": -0.1},
             "retry_backoff"),
        ],
    )
    def test_key_naming_messages(self, kwargs, key):
        with pytest.raises(ConfigError, match=f"key '{key}'"):
            FailurePolicy(**kwargs)

    def test_retries_require_collect(self):
        with pytest.raises(ConfigError, match="only applies with on_error='collect'"):
            FailurePolicy(retries=2)

    def test_backoff_requires_retries(self):
        with pytest.raises(ConfigError, match="without 'retries'"):
            FailurePolicy(on_error="collect", retry_backoff=0.5)

    def test_run_batch_validates_before_running(self, table):
        with pytest.raises(ConfigError, match="key 'retries'"):
            run_batch(_configs(JOB), table, retries=1)

    def test_config_job_timeout_validated(self):
        with pytest.raises(ConfigError, match="key 'job_timeout'"):
            AnonymizationConfig.from_dict({**JOB, "job_timeout": -1})

    def test_classify_covers_the_new_errors(self):
        assert classify_error(JobTimeoutError("x")) == "timeout"
        assert classify_error(BatchDeadlineError("x")) == "deadline"
        assert classify_error(FaultInjectedError("x")) == "fault"


class TestDegradationLadder:
    def _sweep(self):
        return _configs(
            JOB,
            {**JOB, "models": [{"model": "k-anonymity", "k": 3}]},
            {**JOB, "quasi_identifiers": ["zipcode"]},
            {**JOB, "quasi_identifiers": ["zipcode"],
             "models": [{"model": "k-anonymity", "k": 4}]},
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_killed_worker_recovers_byte_identical(self, table, tmp_path, workers):
        configs = self._sweep()
        sequential = run_batch(configs, table)
        before = _shm_segments()
        plan = {
            "points": {
                "worker-kill": {
                    "kill": True,
                    "at": 1,
                    "once_file": str(tmp_path / f"kill.{workers}.latch"),
                }
            }
        }
        with faults.injection(plan):
            recovered = run_batch(
                configs,
                table,
                workers=workers,
                backend="process",
                on_error="collect",
            )
        assert _shm_segments() == before  # the arena never leaks a segment
        assert len(recovered) == len(configs)
        for seq, rec in zip(sequential, recovered):
            assert rec.status == "ok"
            assert seq.release.node == rec.release.node
            assert seq.release.table.fingerprint() == rec.release.table.fingerprint()

    def test_supervision_events_record_the_crash(self, table, tmp_path):
        from repro.api.executor import BatchPlanner

        plan = {
            "points": {
                "worker-kill": {
                    "kill": True,
                    "at": 1,
                    "once_file": str(tmp_path / "kill.latch"),
                }
            }
        }
        planner = BatchPlanner(
            self._sweep(), table, workers=2, backend="process", on_error="collect"
        )
        with faults.injection(plan):
            results = planner.execute()
        assert all(r.status == "ok" for r in results)
        events = [e["event"] for e in planner.supervision_events]
        assert "worker-crashed" in events or "worker-pool-broken" in events

    def test_shm_attach_fault_degrades_to_parent(self, table, tmp_path):
        """Every worker failing to attach still completes the batch."""
        plan = {"points": {"shm-attach": {"error": "os", "every": 1}}}
        configs = self._sweep()
        sequential = run_batch(configs, table)
        before = _shm_segments()
        with faults.injection(plan):
            recovered = run_batch(
                configs, table, workers=2, backend="process", on_error="collect"
            )
        assert _shm_segments() == before
        for seq, rec in zip(sequential, recovered):
            assert rec.status == "ok"
            assert seq.release.table.fingerprint() == rec.release.table.fingerprint()


class TestFaultsCLI:
    def _write_batch(self, tmp_path, jobs):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        return str(path)

    def test_collect_skips_failed_outputs_and_exits_1(
        self, csv_path, tmp_path, capsys
    ):
        jobs = self._write_batch(tmp_path, [JOB, INFEASIBLE, JOB])
        out = tmp_path / "out.csv"
        code = cli_main(
            [str(csv_path), str(out), "--config", jobs, "--on-error", "collect"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert (tmp_path / "out.1.csv").exists()
        assert not (tmp_path / "out.2.csv").exists()
        assert (tmp_path / "out.3.csv").exists()
        assert "job 2 failed [infeasible] after 1 attempt(s)" in captured.err

    def test_collect_report_carries_structured_failures(
        self, csv_path, tmp_path, capsys
    ):
        jobs = self._write_batch(tmp_path, [JOB, INFEASIBLE])
        code = cli_main(
            [str(csv_path), str(tmp_path / "out.csv"), "--config", jobs,
             "--on-error", "collect", "--report"]
        )
        assert code == 1
        err = capsys.readouterr().err  # the report prints to stderr
        payload = json.loads(err[err.index("\n[") :])
        assert [entry["status"] for entry in payload] == ["ok", "failed"]
        assert payload[1]["error"]["type"] == "infeasible"

    def test_raise_mode_stays_the_default(self, csv_path, tmp_path, capsys):
        jobs = self._write_batch(tmp_path, [JOB, INFEASIBLE])
        code = cli_main([str(csv_path), str(tmp_path / "out.csv"), "--config", jobs])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_policy_flags_require_batch_mode(self, csv_path, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(
                [str(csv_path), str(tmp_path / "out.csv"), "--qi", "zipcode",
                 "--on-error", "collect"]
            )
        single = tmp_path / "one.json"
        single.write_text(json.dumps(JOB))
        code = cli_main(
            [str(csv_path), str(tmp_path / "out.csv"), "--config", str(single),
             "--retries", "2"]
        )
        assert code == 2
        assert "--retries applies to batch mode" in capsys.readouterr().err

    def test_negative_retries_rejected(self, csv_path, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                [str(csv_path), str(tmp_path / "out.csv"), "--config", "x.json",
                 "--retries", "-1"]
            )

    def test_single_job_timeout_flag_sets_config(self, csv_path, tmp_path):
        out = tmp_path / "out.csv"
        code = cli_main(
            [str(csv_path), str(out), "--qi", "zipcode", "--qi", "job",
             "--numeric-qi", "age", "--sensitive", "disease", "--k", "2",
             "--job-timeout", "30"]
        )
        assert code == 0
        assert out.exists()
