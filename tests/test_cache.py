"""Engine cache store + cache-aware batch planning.

Pins the contracts of the pluggable cache layer and the planner on top:

* :class:`~repro.core.cache.EngineCacheStore` — budget validation, the LRU
  and stratum-aware eviction policies, the full counter set
  (hits / misses / evictions / coalesced / recomputed_after_evict / merged),
  ``clear`` and the destructive shard ``merge_from``;
* eviction-under-pressure correctness: a deliberately tiny byte budget
  yields byte-identical releases to an unconstrained run for all four
  full-domain algorithms, sequential and at ``workers=4``;
* ``AnonymizationConfig`` rejects bad ``cache_bytes`` values at validation
  time with the key-naming error style;
* deterministic parallel cache fill: Incognito's pre-seeded subset bottoms
  make the engine's from_rows/rollups profile identical at any worker count;
* the :class:`~repro.api.BatchPlanner`: wave scheduling on over-budget
  sweeps (zero ``recomputed_after_evict``), plan resolution, sharding with
  the memo merge step, and the CLI knobs (``--cache-bytes``, ``--plan``).
"""

import itertools
import json

import pytest

from repro.api import AnonymizationConfig, BatchPlanner, run, run_batch
from repro.cli import main as cli_main
from repro.core.cache import (
    FOOTPRINT_CALIBRATION,
    EngineCacheStore,
    estimate_cache_footprint,
)
from repro.core.engine import LatticeEvaluator
from repro.core.io import read_csv
from repro.core.lattice import GeneralizationLattice
from repro.data import adult_hierarchies, load_adult
from repro.data.synthetic import random_scenario
from repro.errors import ConfigError

CSV_TEXT = (
    "zipcode,job,age,disease\n"
    "13053,engineer,29,flu\n"
    "13068,teacher,31,hiv\n"
    "13053,engineer,35,ulcer\n"
    "13068,nurse,40,flu\n"
    "14850,teacher,22,flu\n"
    "14850,nurse,24,cancer\n"
    "14853,engineer,28,hiv\n"
    "14853,teacher,33,ulcer\n"
)

JOB = {
    "quasi_identifiers": ["zipcode", "job"],
    "numeric_quasi_identifiers": ["age"],
    "sensitive": ["disease"],
    "models": [{"model": "k-anonymity", "k": 2}],
    "algorithm": {"algorithm": "flash"},
}


def _fingerprint(table):
    return table.fingerprint()


def _scenario(seed, n_rows=160):
    table, schema, hierarchies = random_scenario(
        n_rows=n_rows, n_categorical_qis=2, n_values=8, seed=seed
    )
    return table, schema.quasi_identifiers, hierarchies


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(CSV_TEXT)
    return path


@pytest.fixture
def table(csv_path):
    return read_csv(
        csv_path, categorical=["zipcode", "job", "disease"], numeric=["age"]
    )


class TestEngineCacheStore:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="policy"):
            EngineCacheStore(policy="mru")
        for bad in (0, -1, 2.5, True):
            with pytest.raises(ValueError, match="cache_bytes"):
                EngineCacheStore(cache_bytes=bad)
        with pytest.raises(ValueError, match="cache_limit"):
            EngineCacheStore(cache_limit=0)

    def test_misses_equal_computations_and_sum_to_entries(self):
        table, qi, hierarchies = _scenario(0)
        evaluator = LatticeEvaluator(table, qi, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        for node in lattice.nodes():
            evaluator.stats(node)
        evaluator.stats(lattice.bottom)  # one guaranteed hit
        info = evaluator.cache_info()
        assert info["misses"] == info["from_rows"] + info["rollups"]
        assert info["misses"] == info["entries"] == lattice.size
        assert info["hits"] >= 1
        assert info["recomputed_after_evict"] == 0

    def test_lru_keeps_recently_hit_entries(self):
        table, qi, hierarchies = _scenario(1)
        evaluator = LatticeEvaluator(
            table, qi, hierarchies, cache_limit=3, cache_policy="lru"
        )
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        nodes = list(lattice.nodes())
        a, b, c, d = nodes[0], nodes[1], nodes[2], nodes[3]
        for node in (a, b, c):
            evaluator.stats(node)
        evaluator.stats(a)  # refresh a: b is now the coldest
        evaluator.stats(d)  # evicts exactly one entry
        cached = {key[1] for key in evaluator.cache.keys()}
        assert a in cached and b not in cached

    def test_lru_counts_rollup_ancestor_reads_as_uses(self):
        """The workhorse bottom is read almost only through the ancestor
        path; that must refresh its recency or it is the first victim."""
        table, qi, hierarchies = _scenario(8)
        evaluator = LatticeEvaluator(
            table, qi, hierarchies, cache_limit=3, cache_policy="lru"
        )
        bottom = (0,) * len(qi)
        evaluator.stats(bottom)
        # Pairwise-incomparable nodes: each rolls up from the bottom (its
        # only cached ancestor), touching it before every insertion.
        singles = [
            tuple(1 if i == j else 0 for j in range(len(qi)))
            for i in range(len(qi))
        ]
        for node in singles:
            evaluator.stats(node)
        cached = {key[1] for key in evaluator.cache.keys()}
        assert bottom in cached
        assert singles[0] not in cached  # the true LRU victim

    def test_stratum_policy_evicts_rollup_reconstructible_nodes_first(self):
        table, qi, hierarchies = _scenario(2)
        evaluator = LatticeEvaluator(
            table, qi, hierarchies, cache_limit=4, cache_policy="stratum"
        )
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        bottom = lattice.bottom
        evaluator.stats(bottom)
        # Fill past the limit with generalized nodes: every eviction should
        # shed a node reconstructible by roll-up, never the bottom root.
        for node in itertools.islice(lattice.nodes(), 1, 10):
            evaluator.stats(node)
        cached = {key[1] for key in evaluator.cache.keys()}
        assert bottom in cached
        assert evaluator.counters["evictions"] > 0

    def test_recomputed_after_evict_counts_budget_thrash(self):
        table, qi, hierarchies = _scenario(3)
        evaluator = LatticeEvaluator(table, qi, hierarchies, cache_limit=2)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        nodes = list(lattice.nodes())[:4]
        for node in nodes:
            evaluator.stats(node)
        assert evaluator.counters["recomputed_after_evict"] == 0
        for node in nodes:  # the early nodes were evicted by the later ones
            evaluator.stats(node)
        assert evaluator.counters["recomputed_after_evict"] > 0

    def test_clear_drops_entries_keeps_counters(self):
        table, qi, hierarchies = _scenario(4)
        evaluator = LatticeEvaluator(table, qi, hierarchies)
        evaluator.stats((0, 0, 0))
        before = dict(evaluator.counters)
        evaluator.cache.clear()
        info = evaluator.cache_info()
        assert info["entries"] == 0 and info["bytes"] == 0
        assert info["misses"] == before["misses"]
        # Recomputing a cleared key is budget thrash, and counted as such.
        evaluator.stats((0, 0, 0))
        assert evaluator.counters["recomputed_after_evict"] == 1

    def test_adopt_merges_shard_memo_and_rehomes_entries(self):
        table, qi, hierarchies = _scenario(5)
        primary = LatticeEvaluator(table, qi, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        nodes = list(lattice.nodes())
        primary.stats(nodes[0])
        shard = primary.clone()
        assert shard.cache is not primary.cache
        shard.stats(nodes[0])  # duplicate: dropped at merge
        stats = shard.stats(nodes[1])
        adopted = primary.adopt(shard)
        assert adopted == 1
        assert primary.counters["merged"] == 1
        assert len(shard.cache) == 0
        assert primary.cache._entries[(tuple(qi), nodes[1])] is stats
        assert stats._engine is primary
        # The shard's activity is folded into the primary's counters.
        assert primary.counters["misses"] >= 3

    def test_footprint_estimate_bounds_actual_usage(self):
        table, qi, hierarchies = _scenario(6, n_rows=300)
        evaluator = LatticeEvaluator(table, qi, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        for node in lattice.nodes():
            evaluator.stats(node).histogram("sensitive")
        estimate = estimate_cache_footprint(
            hierarchies,
            qi,
            table.n_rows,
            sensitive_categories=(len(table.column("sensitive").categories),),
        )
        assert estimate >= evaluator.cache_info()["bytes"]

    def test_footprint_estimate_calibrated_on_adult(self):
        """The estimate must stay a *tight* upper bound, not just an upper
        bound — the planner sizes waves from it, so a wildly conservative
        estimate (the pre-calibration model was ~15x) forces needless
        serialization. Calibrated against measured bytes on the Adult
        schema: within a small constant factor."""
        table = load_adult(n_rows=2000, seed=42)
        qi = ["workclass", "education", "marital_status"]
        hierarchies = {
            name: hierarchy
            for name, hierarchy in adult_hierarchies().items()
            if name in qi
        }
        evaluator = LatticeEvaluator(table, qi, hierarchies)
        lattice = GeneralizationLattice.from_hierarchies(hierarchies, qi)
        for node in lattice.nodes():
            evaluator.stats(node).histogram("occupation")
        measured = evaluator.cache_info()["bytes"]
        estimate = estimate_cache_footprint(
            hierarchies,
            qi,
            table.n_rows,
            sensitive_categories=(
                len(table.column("occupation").categories),
            ),
        )
        assert measured <= estimate <= 6 * measured
        # The tightness knob is public: doubling it scales the estimate.
        assert FOOTPRINT_CALIBRATION > 0


class TestConfigCacheBytes:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "256M"])
    def test_invalid_values_rejected_at_config_time(self, bad):
        with pytest.raises(ConfigError, match="cache_bytes"):
            AnonymizationConfig.from_dict({**JOB, "cache_bytes": bad})

    def test_rejected_for_algorithms_without_an_engine(self):
        """A memory bound the algorithm can never consume must not
        validate silently — same guard style as max_suppression."""
        for name in ("mondrian", "tds"):
            with pytest.raises(ConfigError, match="cache_bytes"):
                AnonymizationConfig.from_dict(
                    {
                        **JOB,
                        "algorithm": {"algorithm": name},
                        "cache_bytes": 1 << 20,
                    }
                )

    def test_valid_budget_round_trips(self):
        config = AnonymizationConfig.from_dict({**JOB, "cache_bytes": 1 << 20})
        assert config.cache_bytes == 1 << 20
        assert AnonymizationConfig.from_json(config.to_json()) == config

    def test_run_builds_budgeted_evaluator(self, table):
        config = AnonymizationConfig.from_dict({**JOB, "cache_bytes": 1 << 20})
        result = run(config, table)
        assert result.engine is not None
        assert result.engine.cache.cache_bytes == 1 << 20
        assert result.engine.cache.policy == "stratum"

    def test_jobs_with_different_budgets_get_different_engines(self, table):
        config_a = AnonymizationConfig.from_dict({**JOB, "cache_bytes": 1 << 20})
        config_b = AnonymizationConfig.from_dict({**JOB, "cache_bytes": 2 << 20})
        results = run_batch([config_a, config_b], table)
        assert results[0].engine is not results[1].engine
        assert results[0].engine.cache.cache_bytes == 1 << 20
        assert results[1].engine.cache.cache_bytes == 2 << 20


class TestEvictionUnderPressureCorrectness:
    """Byte-identical releases under a deliberately tiny byte budget."""

    ALGORITHMS = ("incognito", "ola", "flash", "datafly")
    TINY = 96 * 1024  # forces constant eviction at 800 rows

    def _configs(self, cache_bytes=None):
        qis = ["workclass", "education", "marital_status"]
        base = {
            "quasi_identifiers": qis,
            "sensitive": ["salary"],
            "models": [{"model": "k-anonymity", "k": 4}],
        }
        if cache_bytes is not None:
            base["cache_bytes"] = cache_bytes
        return [
            AnonymizationConfig.from_dict(
                {**base, "algorithm": {"algorithm": name}}
            )
            for name in self.ALGORITHMS
        ]

    @pytest.fixture(scope="class")
    def adult(self):
        return load_adult(n_rows=800, seed=3)

    @pytest.fixture(scope="class")
    def hierarchies(self):
        keep = ("workclass", "education", "marital_status")
        return {
            name: hierarchy
            for name, hierarchy in adult_hierarchies().items()
            if name in keep
        }

    def test_tiny_budget_releases_byte_identical(self, adult, hierarchies):
        reference = run_batch(self._configs(), adult, hierarchies=hierarchies)
        squeezed = run_batch(
            self._configs(self.TINY), adult, hierarchies=hierarchies
        )
        evicted = 0
        for ref, sq in zip(reference, squeezed):
            assert ref.release.node == sq.release.node
            assert _fingerprint(ref.release.table) == _fingerprint(sq.release.table)
            evicted += sq.engine.cache_info()["evictions"]
        assert evicted > 0, "budget was not actually under pressure"

    def test_tiny_budget_parallel_matches_sequential(self, adult, hierarchies):
        sequential = run_batch(
            self._configs(self.TINY), adult, hierarchies=hierarchies
        )
        parallel = run_batch(
            self._configs(self.TINY), adult, hierarchies=hierarchies, workers=4
        )
        for seq, par in zip(sequential, parallel):
            assert seq.release.node == par.release.node
            assert _fingerprint(seq.release.table) == _fingerprint(par.release.table)


class TestIncognitoDeterministicCacheFill:
    def _configs(self):
        base = {
            "quasi_identifiers": ["workclass", "education", "marital_status"],
            "sensitive": ["salary"],
            "algorithm": {"algorithm": "incognito"},
        }
        return [
            AnonymizationConfig.from_dict(
                {**base, "models": [{"model": "k-anonymity", "k": k}]}
            )
            for k in (3, 7, 15)
        ]

    @pytest.fixture(scope="class")
    def adult(self):
        return load_adult(n_rows=500, seed=11)

    @pytest.fixture(scope="class")
    def curated(self):
        return adult_hierarchies()

    def test_parallel_profile_equals_sequential_profile(self, adult, curated):
        sequential = run_batch(self._configs(), adult, hierarchies=curated)
        seq_info = sequential[0].engine.cache_info()
        for workers in (2, 4):
            parallel = run_batch(
                self._configs(), adult, hierarchies=curated, workers=workers
            )
            par_info = parallel[0].engine.cache_info()
            assert par_info["from_rows"] == seq_info["from_rows"]
            assert par_info["rollups"] == seq_info["rollups"]
            for seq, par in zip(sequential, parallel):
                assert _fingerprint(seq.release.table) == _fingerprint(
                    par.release.table
                )

    def test_preseed_pins_from_rows_to_subset_bottoms(self, adult, curated):
        results = run_batch(self._configs(), adult, hierarchies=curated)
        info = results[0].engine.cache_info()
        # 3 QIs -> 7 subset bottoms (the full-names bottom coincides with
        # the size-3 subset when the QI order is already sorted; one more
        # from-rows at most otherwise). Everything else rolls up.
        assert info["from_rows"] <= 2**3
        assert info["recomputed_after_evict"] == 0
        assert info["misses"] == info["from_rows"] + info["rollups"]


class TestBatchPlanner:
    def _two_env_configs(self, cache_bytes=None):
        env_a = dict(JOB)
        env_b = {**JOB, "quasi_identifiers": ["zipcode"]}
        if cache_bytes is not None:
            env_a["cache_bytes"] = cache_bytes
            env_b["cache_bytes"] = cache_bytes
        return [
            AnonymizationConfig.from_dict(env_a),
            AnonymizationConfig.from_dict(env_b),
            AnonymizationConfig.from_dict(
                {**env_a, "models": [{"model": "k-anonymity", "k": 3}]}
            ),
        ]

    def test_rejects_unknown_plan_and_bad_budget(self, table):
        with pytest.raises(ConfigError, match="plan"):
            BatchPlanner(self._two_env_configs(), table, plan="eager")
        for bad in (0, -5, 1.5, True):
            with pytest.raises(ConfigError, match="cache_bytes"):
                BatchPlanner(self._two_env_configs(), table, cache_bytes=bad)

    def test_waves_without_budget_resolves_to_shared(self, table):
        """No budget means nothing to size waves against; the plan must
        report the shared behavior it actually executes."""
        planner = BatchPlanner(self._two_env_configs(), table, plan="waves")
        plan = planner.plan()
        assert plan.mode == "shared"
        assert len(plan.waves) == 1

    def test_auto_resolves_waves_only_when_over_budget(self, table):
        roomy = BatchPlanner(self._two_env_configs(), table, cache_bytes=1 << 30)
        assert roomy.plan().mode == "shared"
        # 20 000 bytes is below the two environments' combined *calibrated*
        # footprint estimate (the pre-calibration model tripped at 50 000).
        tight = BatchPlanner(self._two_env_configs(), table, cache_bytes=20_000)
        plan = tight.plan()
        assert plan.mode == "waves"
        assert len(plan.waves) == 2
        # Same-environment jobs (indices 0 and 2) always share a wave.
        assert sorted(plan.waves[0]) == [0, 2]
        assert json.dumps(plan.to_dict())  # JSON-safe summary

    def test_waves_match_shared_fingerprints_on_adult_sample(self):
        """Tier-1 smoke: plan choice never changes the released bytes."""
        adult = load_adult(n_rows=400, seed=7)
        configs = [
            AnonymizationConfig.from_dict(
                {
                    "quasi_identifiers": list(qis),
                    "sensitive": ["salary"],
                    "models": [{"model": "k-anonymity", "k": k}],
                    "algorithm": {"algorithm": algorithm},
                }
            )
            for qis in (
                ("workclass", "education"),
                ("marital_status", "race", "sex"),
            )
            for algorithm, k in (("flash", 3), ("ola", 5))
        ]
        curated = adult_hierarchies()
        shared = run_batch(configs, adult, hierarchies=curated, plan="shared")
        waved = run_batch(
            configs, adult, hierarchies=curated, plan="waves", cache_bytes=300_000
        )
        for a, b in zip(shared, waved):
            assert a.release.node == b.release.node
            assert _fingerprint(a.release.table) == _fingerprint(b.release.table)
        for result in waved:
            assert result.engine.cache_info()["recomputed_after_evict"] == 0

    def test_wave_budgets_cover_each_environment(self, table):
        planner = BatchPlanner(self._two_env_configs(), table, cache_bytes=20_000)
        plan = planner.plan()
        assert plan.mode == "waves"
        for key, budget in plan.budgets.items():
            assert 0 < budget <= 20_000
        planner.execute()  # runs through the wave path without error

    def test_sharded_execution_matches_and_merges(self, table):
        configs = [
            AnonymizationConfig.from_dict(
                {**JOB, "models": [{"model": "k-anonymity", "k": k}]}
            )
            for k in (2, 3, 4)
        ]
        baseline = run_batch(configs, table)
        sharded = BatchPlanner(configs, table, workers=3, shard=True).execute()
        for base, result in zip(baseline, sharded):
            assert base.release.node == result.release.node
            assert _fingerprint(base.release.table) == _fingerprint(
                result.release.table
            )
        # All sharded results report the canonical (merged) engine, and the
        # canonical budget is restored after the wave's equal slicing.
        engines = {id(result.engine) for result in sharded}
        assert len(engines) == 1
        assert sharded[0].engine.counters["merged"] > 0
        assert sharded[0].engine.cache.cache_bytes >= 1

    def test_sharding_slices_the_environment_budget(self, table):
        configs = [
            AnonymizationConfig.from_dict(
                {**JOB, "models": [{"model": "k-anonymity", "k": k}]}
            )
            for k in (2, 3, 4)
        ]
        budget = 300_000
        planner = BatchPlanner(
            configs, table, workers=3, shard=True, cache_bytes=budget
        )
        results = planner.execute()
        group = planner._jobs[0][2]
        # Restored to the group's resolved slice, never the workers-fold.
        assert results[0].engine.cache.cache_bytes == max(group.budget, 1)
        assert group.budget <= budget


class TestCLICacheKnobs:
    def test_cache_bytes_flag_mode(self, csv_path, tmp_path, capsys):
        out = tmp_path / "anon.csv"
        rc = cli_main(
            [
                str(csv_path), str(out),
                "--qi", "zipcode", "--qi", "job", "--numeric-qi", "age",
                "--sensitive", "disease", "--k", "2", "--algorithm", "flash",
                "--cache-bytes", "1048576", "--report",
            ]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().err)
        assert report["config"]["cache_bytes"] == 1048576
        assert report["engine_cache"]["recomputed_after_evict"] == 0
        assert "misses" in report["engine_cache"]

    def test_invalid_cache_bytes_fails_loudly(self, csv_path, tmp_path, capsys):
        rc = cli_main(
            [
                str(csv_path), str(tmp_path / "anon.csv"),
                "--qi", "zipcode", "--cache-bytes", "0",
            ]
        )
        assert rc == 2
        assert "cache_bytes" in capsys.readouterr().err

    def test_batch_plan_flag(self, csv_path, tmp_path):
        jobs = [JOB, {**JOB, "models": [{"model": "k-anonymity", "k": 3}]}]
        job_path = tmp_path / "jobs.json"
        job_path.write_text(json.dumps(jobs))
        out_shared = tmp_path / "shared" / "anon.csv"
        out_waves = tmp_path / "waves" / "anon.csv"
        out_shared.parent.mkdir()
        out_waves.parent.mkdir()
        assert cli_main(
            [str(csv_path), str(out_shared), "--config", str(job_path),
             "--plan", "shared"]
        ) == 0
        assert cli_main(
            [str(csv_path), str(out_waves), "--config", str(job_path),
             "--plan", "waves", "--cache-bytes", "65536"]
        ) == 0
        for index in (1, 2):
            shared = out_shared.with_name(f"anon.{index}.csv")
            waves = out_waves.with_name(f"anon.{index}.csv")
            assert shared.read_bytes() == waves.read_bytes()

    def test_plan_without_batch_config_rejected(self, csv_path, tmp_path, capsys):
        job_path = tmp_path / "job.json"
        job_path.write_text(json.dumps(JOB))
        rc = cli_main(
            [str(csv_path), str(tmp_path / "anon.csv"), "--config",
             str(job_path), "--plan", "waves"]
        )
        assert rc == 2
        assert "JSON list of jobs" in capsys.readouterr().err

    def test_plan_without_config_rejected(self, csv_path, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                [str(csv_path), str(tmp_path / "out.csv"),
                 "--qi", "zipcode", "--plan", "waves"]
            )
