"""End-to-end integration tests across modules."""

import numpy as np
import pytest

from repro import (
    AlphaKAnonymity,
    Anonymizer,
    CompositeModel,
    Datafly,
    DeltaPresence,
    DistinctLDiversity,
    EntropyLDiversity,
    Incognito,
    KAnonymity,
    Mondrian,
    SchemaError,
    TCloseness,
    TopDownSpecialization,
)
from repro.attacks import homogeneity_attack, linkage_risks, simulate_linkage
from repro.core.generalize import apply_node
from repro.metrics import accuracy_experiment, gcp, non_uniform_entropy


class TestAnonymizerFacade:
    def test_missing_hierarchy_raises(self, adult_small):
        from repro.data import adult_schema

        with pytest.raises(SchemaError, match="no hierarchy"):
            Anonymizer(adult_small, adult_schema(), {})

    def test_default_algorithm_is_mondrian(self, adult_setup):
        table, schema, hierarchies = adult_setup
        release = Anonymizer(table, schema, hierarchies).apply(KAnonymity(5))
        assert release.algorithm.startswith("mondrian")

    def test_reports(self, adult_setup):
        table, schema, hierarchies = adult_setup
        anon = Anonymizer(table, schema, hierarchies)
        release = anon.apply(KAnonymity(5))
        risk = anon.risk_report(release)
        utility = anon.utility_report(release)
        assert risk["prosecutor_max_risk"] <= 0.2
        assert 0 <= utility["gcp"] <= 1


class TestFullPipelines:
    def test_medical_full_stack(self, medical_setup):
        """The l-diversity paper's scenario end-to-end."""
        table, schema, hierarchies = medical_setup
        anon = Anonymizer(table, schema, hierarchies)
        release = anon.apply(
            KAnonymity(4),
            EntropyLDiversity(2, "disease"),
            TCloseness(0.3, "disease"),
        )
        assert release.equivalence_class_sizes().min() >= 4
        assert homogeneity_attack(release, confidence=0.95)["exposed_fraction"] == 0.0
        assert linkage_risks(release)["prosecutor_max_risk"] <= 0.25

    def test_alpha_k_via_datafly(self, medical_setup):
        table, schema, hierarchies = medical_setup
        release = Datafly(max_suppression=0.1).anonymize(
            table, schema, hierarchies, [AlphaKAnonymity(0.7, 3, "disease")]
        )
        for counts in release.partition().sensitive_counts(release.table, "disease"):
            assert counts.sum() >= 3
            assert counts.max() <= 0.7 * counts.sum() + 1e-9

    def test_delta_presence_pipeline(self, medical_setup):
        """Generalize research + population identically, check presence bound."""
        table, schema, hierarchies = medical_setup
        rng = np.random.default_rng(3)
        member_rows = np.sort(rng.choice(table.n_rows, size=table.n_rows // 3, replace=False))
        research = table.take(member_rows)
        qi = schema.quasi_identifiers
        node = [h.height for h in (hierarchies[n] for n in qi)]
        node = [max(level - 1, 0) for level in node]  # one below top
        research_general = apply_node(research, hierarchies, qi, node)
        population_general = apply_node(table, hierarchies, qi, node)
        model = DeltaPresence(0.0, 0.9, population_general, qi)
        from repro.core.partition import partition_by_qi

        partition = partition_by_qi(research_general, qi)
        beliefs = model.beliefs(research_general, partition)
        assert np.isfinite(beliefs).all()
        assert (beliefs <= 1.0 + 1e-9).all()

    def test_composite_model_through_incognito(self, medical_setup):
        table, schema, hierarchies = medical_setup
        model = CompositeModel(KAnonymity(3), DistinctLDiversity(2, "disease"))
        release = Incognito().anonymize(table, schema, hierarchies, [model])
        assert release.equivalence_class_sizes().min() >= 3
        for counts in release.partition().sensitive_counts(release.table, "disease"):
            assert np.count_nonzero(counts) >= 2

    def test_k_sweep_risk_utility_tradeoff(self, adult_setup):
        """Risk falls and loss rises monotonically along the k sweep (E1/E3)."""
        table, schema, hierarchies = adult_setup
        anon = Anonymizer(table, schema, hierarchies)
        risks, losses = [], []
        for k in (2, 5, 15, 40):
            release = anon.apply(KAnonymity(k))
            risks.append(linkage_risks(release)["prosecutor_max_risk"])
            losses.append(gcp(table, release, hierarchies))
        assert risks == sorted(risks, reverse=True)
        assert losses == sorted(losses)

    def test_classification_utility_survives_anonymization(self, adult_setup):
        """E4's shape: anonymized accuracy stays above the majority baseline."""
        table, schema, hierarchies = adult_setup
        release = Anonymizer(table, schema, hierarchies).apply(KAnonymity(10))
        result = accuracy_experiment(table, release, "salary", seed=1)
        assert result["anonymized_accuracy"] >= result["baseline_accuracy"] - 0.05

    def test_tds_preserves_label_information_better_than_datafly(self, adult_setup):
        table, schema, hierarchies = adult_setup
        tds = TopDownSpecialization(target="salary").anonymize(
            table, schema, hierarchies, [KAnonymity(8)]
        )
        datafly = Datafly().anonymize(table, schema, hierarchies, [KAnonymity(8)])
        entropy_tds = non_uniform_entropy(table, tds, hierarchies)
        entropy_datafly = non_uniform_entropy(table, datafly, hierarchies)
        assert entropy_tds <= entropy_datafly + 0.05

    def test_simulated_attack_consistent_with_analytic_risk(self, adult_setup):
        table, schema, hierarchies = adult_setup
        release = Anonymizer(table, schema, hierarchies).apply(KAnonymity(5))
        simulated = simulate_linkage(table, release, n_targets=150, seed=2)
        analytic = linkage_risks(release)
        assert simulated["unique_match_rate"] <= analytic["prosecutor_max_risk"]
        assert simulated["avg_candidate_set"] >= 5
