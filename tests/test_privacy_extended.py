"""Tests for the extended privacy models: (k,e)-anonymity, personalized
privacy, and LKC-privacy."""

import numpy as np
import pytest

from repro.core.hierarchy import Hierarchy
from repro.core.partition import partition_by_qi
from repro.core.table import Column, Table
from repro.errors import SchemaError
from repro.privacy import GuardingNode, KEAnonymity, LKCPrivacy, PersonalizedPrivacy


@pytest.fixture
def salary_table():
    return Table(
        [
            Column.categorical("qi", ["a"] * 4 + ["b"] * 4),
            Column.numeric("salary", [30, 35, 40, 60, 30, 31, 32, 33]),
        ]
    )


class TestKEAnonymity:
    def test_range_condition(self, salary_table):
        partition = partition_by_qi(salary_table, ["qi"])
        # class a range 30, class b range 3.
        assert KEAnonymity(3, 10.0, "salary").failing_groups(salary_table, partition) == [1]
        assert KEAnonymity(3, 3.0, "salary").check(salary_table, partition)

    def test_k_condition(self, salary_table):
        partition = partition_by_qi(salary_table, ["qi"])
        assert not KEAnonymity(5, 1.0, "salary").check(salary_table, partition)

    def test_categorical_sensitive_raises(self):
        table = Table(
            [Column.categorical("qi", ["a", "a"]), Column.categorical("s", ["x", "y"])]
        )
        partition = partition_by_qi(table, ["qi"])
        with pytest.raises(SchemaError, match="numeric sensitive"):
            KEAnonymity(2, 1.0, "s").check(table, partition)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KEAnonymity(0, 1.0, "s")
        with pytest.raises(ValueError):
            KEAnonymity(2, -1.0, "s")

    def test_zero_e_reduces_to_k_anonymity(self, salary_table):
        partition = partition_by_qi(salary_table, ["qi"])
        assert KEAnonymity(4, 0.0, "salary").check(salary_table, partition)


class TestPersonalizedPrivacy:
    @pytest.fixture
    def disease_hierarchy(self):
        return Hierarchy.from_tree(
            {"Respiratory": ["flu", "pneumonia"], "Chronic": ["cancer", "hiv"]}
        )

    @pytest.fixture
    def table(self):
        return Table(
            [
                Column.categorical("qi", ["a"] * 4 + ["b"] * 4),
                Column.categorical(
                    "disease",
                    ["flu", "flu", "pneumonia", "cancer",
                     "flu", "cancer", "hiv", "pneumonia"],
                ),
            ]
        )

    def test_guarding_node_covers_subtree(self, disease_hierarchy):
        node = GuardingNode(disease_hierarchy, 1, "Respiratory")
        ground = disease_hierarchy.ground
        assert node.covers(ground.index("flu"))
        assert node.covers(ground.index("pneumonia"))
        assert not node.covers(ground.index("cancer"))

    def test_unknown_label_raises(self, disease_hierarchy):
        from repro.errors import HierarchyError

        with pytest.raises(HierarchyError):
            GuardingNode(disease_hierarchy, 1, "Imaginary")

    def test_breach_probability(self, table, disease_hierarchy):
        # Row 0 guards "Respiratory": class a has 3/4 respiratory records.
        model = PersonalizedPrivacy(
            {0: GuardingNode(disease_hierarchy, 1, "Respiratory")},
            p_breach=0.5,
            sensitive="disease",
        )
        partition = partition_by_qi(table, ["qi"])
        breaches = model.breach_probabilities(table, partition)
        assert breaches == [(0, 0.75)]
        assert not model.check(table, partition)
        assert model.failing_groups(table, partition) == [0]

    def test_leaf_guarding_node(self, table, disease_hierarchy):
        # Row 5 guards its exact value "cancer": class b has 1/4 cancer.
        model = PersonalizedPrivacy(
            {5: GuardingNode(disease_hierarchy, 0, "cancer")},
            p_breach=0.3,
            sensitive="disease",
        )
        partition = partition_by_qi(table, ["qi"])
        assert model.check(table, partition)

    def test_unguarded_rows_free(self, table):
        model = PersonalizedPrivacy({}, p_breach=0.01, sensitive="disease")
        partition = partition_by_qi(table, ["qi"])
        assert model.check(table, partition)

    def test_invalid_p_breach(self):
        with pytest.raises(ValueError):
            PersonalizedPrivacy({}, p_breach=0.0, sensitive="s")


class TestLKCPrivacy:
    @pytest.fixture
    def table(self):
        return Table(
            [
                Column.categorical("a", ["x", "x", "x", "y", "y", "y"]),
                Column.categorical("b", ["p", "p", "q", "q", "q", "q"]),
                Column.categorical("s", ["s1", "s2", "s1", "s2", "s1", "s2"]),
            ]
        )

    def test_l1_checks_single_attributes(self, table):
        # a=x matches 3, a=y matches 3, b=p matches 2, b=q matches 4.
        assert LKCPrivacy(1, 2, 1.0, "s", ["a", "b"]).check(table)
        assert not LKCPrivacy(1, 3, 1.0, "s", ["a", "b"]).check(table)

    def test_l2_checks_pairs(self, table):
        # (a=x, b=q) matches only 1 record.
        assert not LKCPrivacy(2, 2, 1.0, "s", ["a", "b"]).check(table)

    def test_confidence_bound(self, table):
        # b=p: both records have distinct s => confidence 0.5.
        model = LKCPrivacy(1, 2, 0.4, "s", ["a", "b"])
        violations = model.violations(table)
        assert any(v["max_confidence"] > 0.4 for v in violations)

    def test_violations_report_rows(self, table):
        model = LKCPrivacy(2, 2, 1.0, "s", ["a", "b"])
        violations = model.violations(table)
        assert all("rows" in v and len(v["rows"]) for v in violations)

    def test_failing_groups_maps_to_partition(self, table):
        partition = partition_by_qi(table, ["a", "b"])
        model = LKCPrivacy(2, 2, 1.0, "s", ["a", "b"])
        failing = model.failing_groups(table, partition)
        assert failing  # the singleton (x,q) class fails

    def test_l_capped_by_available_attributes(self, table):
        # L larger than the number of QIs: degrades to checking all subsets.
        assert LKCPrivacy(5, 1, 1.0, "s", ["a", "b"]).check(table)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LKCPrivacy(0, 2, 0.5, "s", ["a"])
        with pytest.raises(ValueError):
            LKCPrivacy(1, 0, 0.5, "s", ["a"])
        with pytest.raises(ValueError):
            LKCPrivacy(1, 2, 1.5, "s", ["a"])

    def test_generalization_fixes_lkc(self, medical_setup):
        """Generalizing QIs monotonically shrinks the violation list."""
        from repro.core.generalize import apply_node

        table, schema, hierarchies = medical_setup
        qi = schema.quasi_identifiers
        model = LKCPrivacy(2, 5, 0.9, "disease", qi)
        raw_violations = len(model.violations(table))
        generalized = apply_node(
            table, hierarchies, qi, [hierarchies[n].height for n in qi]
        )
        top_violations = len(model.violations(generalized))
        assert top_violations <= raw_violations
