"""Coverage for Release bookkeeping, the Adult file parser, Incognito with
non-monotone models, and assorted reprs/edge cases."""

import numpy as np
import pytest

from repro import (
    Anonymizer,
    Datafly,
    Incognito,
    KAnonymity,
    MDAVMicroaggregation,
    Mondrian,
    TCloseness,
    TopDownSpecialization,
)
from repro.core.generalize import apply_node
from repro.core.release import Release
from repro.data import load_adult_file


class TestRelease:
    def test_summary_fields(self, adult_setup):
        table, schema, hierarchies = adult_setup
        release = Mondrian().anonymize(table, schema, hierarchies, [KAnonymity(5)])
        summary = release.summary()
        assert summary["rows_published"] == table.n_rows
        assert summary["equivalence_classes"] == len(release.partition())
        assert summary["min_class_size"] >= 5

    def test_suppression_rate_zero_without_original_count(self, adult_setup):
        table, schema, hierarchies = adult_setup
        qi = schema.quasi_identifiers
        release = Release(
            table=apply_node(table, hierarchies, qi, [0] * len(qi)),
            schema=schema,
            algorithm="raw",
        )
        assert release.suppression_rate == 0.0

    def test_partition_cached(self, adult_setup):
        table, schema, hierarchies = adult_setup
        release = Mondrian().anonymize(table, schema, hierarchies, [KAnonymity(5)])
        assert release.partition() is release.partition()

    def test_suppressed_release_rates(self, adult_setup):
        table, schema, hierarchies = adult_setup
        release = Datafly(max_suppression=0.10).anonymize(
            table, schema, hierarchies, [KAnonymity(30)]
        )
        assert release.suppressed == table.n_rows - release.n_rows
        assert release.suppression_rate == pytest.approx(
            release.suppressed / table.n_rows
        )
        if release.suppressed:
            assert release.kept_rows is not None
            assert release.kept_rows.shape[0] == release.n_rows


class TestAdultFileParser:
    RAW = (
        "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
        " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n"
        "50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse,"
        " Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K.\n"
        "38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners,"
        " Not-in-family, White, Male, 0, 0, 40, ?, <=50K\n"
    )

    def test_parses_and_skips_missing(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(self.RAW)
        table = load_adult_file(path)
        assert table.n_rows == 2  # third row has '?'
        assert table.column("marital_status").decode() == ["Never-married", "Married"]
        assert table.values("age").tolist() == [39.0, 50.0]
        # Trailing period on salary stripped.
        assert table.column("salary").decode() == ["<=50K", "<=50K"]


class TestIncognitoNonMonotone:
    def test_non_monotone_model_disables_tagging(self, tiny_table, tiny_schema, tiny_hierarchies):
        class Whimsical:
            """Satisfied only at exactly-even total generalization heights."""

            name = "whimsical"
            monotone = False

            def check(self, table, partition):
                return min(g.size for g in partition.groups) >= 2

            def failing_groups(self, table, partition):
                return [i for i, g in enumerate(partition.groups) if g.size < 2]

        algo = Incognito()
        minimal = algo.find_minimal_nodes(
            tiny_table, tiny_schema.quasi_identifiers, tiny_hierarchies, [Whimsical()]
        )
        # Tagging must not have fired for a non-monotone model.
        assert algo.stats["tagged_without_check"] == 0
        assert minimal  # same k=2 semantics, so a frontier exists


class TestFacadeAndReprs:
    def test_utility_report_values(self, adult_setup):
        table, schema, hierarchies = adult_setup
        anonymizer = Anonymizer(table, schema, hierarchies)
        release = anonymizer.apply(KAnonymity(5))
        report = anonymizer.utility_report(release)
        assert set(report) == {"gcp", "discernibility", "c_avg"}

    def test_reprs_are_informative(self):
        assert "k=5" in repr(MDAVMicroaggregation(5))
        assert "strict" in repr(Mondrian())
        assert "0.05" in repr(Datafly())
        assert "salary" in repr(TopDownSpecialization(target="salary"))
        assert "closeness" not in repr(KAnonymity(3))
        assert "0.2" in repr(TCloseness(0.2, "s"))

    def test_model_names_render(self):
        from repro import (
            AlphaKAnonymity,
            DistinctLDiversity,
            EntropyLDiversity,
            KEAnonymity,
            LKCPrivacy,
            RecursiveCLDiversity,
        )

        assert KAnonymity(7).name == "7-anonymity"
        assert "distinct-3" in DistinctLDiversity(3, "d").name
        assert "entropy-2" in EntropyLDiversity(2, "d").name
        assert "(2,3)" in RecursiveCLDiversity(2, 3, "d").name
        assert "(0.6,4)" in AlphaKAnonymity(0.6, 4, "d").name
        assert "(3,10)" in KEAnonymity(3, 10, "d").name
        assert "LKC" in LKCPrivacy(2, 3, 0.5, "d", ["a"]).name


class TestHierarchyEdgeCases:
    def test_fanout_alias(self, tiny_hierarchies):
        h = tiny_hierarchies["nationality"]
        assert (h.fanout(1) == h.leaf_count(1)).all()

    def test_interval_repr(self, tiny_hierarchies):
        assert "bins=8" in repr(tiny_hierarchies["age"])

    def test_hierarchy_repr(self, tiny_hierarchies):
        assert "height=2" in repr(tiny_hierarchies["nationality"])
