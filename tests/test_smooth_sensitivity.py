"""Smooth sensitivity of the median: formula checks and accuracy wins."""

import math

import numpy as np
import pytest

from repro.dp import (
    dp_median_global,
    dp_median_smooth,
    local_sensitivity_at_distance,
    smooth_sensitivity_median,
)
from repro.errors import BudgetError

LO, HI = 0.0, 100.0


@pytest.fixture(scope="module")
def concentrated():
    """Tightly clustered sample: the smooth-sensitivity sweet spot."""
    rng = np.random.default_rng(1)
    return np.clip(rng.normal(50, 1.5, 501), LO, HI)


class TestLocalSensitivity:
    def test_distance_zero_is_neighbor_gap(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        # median index m=2; LS(0) = max(x[m+1]-x[m], x[m]-x[m-1], ...) over s=0,1
        expected = max(30.0 - 20.0, 40.0 - 30.0)
        assert local_sensitivity_at_distance(values, 0, LO, HI) == expected

    def test_grows_with_distance(self, concentrated):
        ls = [local_sensitivity_at_distance(concentrated, t, LO, HI) for t in range(6)]
        assert all(a <= b + 1e-12 for a, b in zip(ls, ls[1:]))

    def test_capped_by_range(self, concentrated):
        assert local_sensitivity_at_distance(concentrated, 10_000, LO, HI) <= HI - LO

    def test_padding_with_bounds(self):
        """A 1-point sample: moving that point swings the median across [lo, hi]."""
        assert local_sensitivity_at_distance([50.0], 1, LO, HI) == HI - LO

    def test_negative_distance_rejected(self):
        with pytest.raises(BudgetError):
            local_sensitivity_at_distance([1.0, 2.0, 3.0], -1, LO, HI)


class TestSmoothSensitivity:
    def test_at_least_local_at_zero(self, concentrated):
        beta = 0.1
        assert smooth_sensitivity_median(concentrated, beta, LO, HI) >= (
            local_sensitivity_at_distance(concentrated, 0, LO, HI)
        )

    def test_never_exceeds_global(self, concentrated):
        assert smooth_sensitivity_median(concentrated, 0.01, LO, HI) <= HI - LO

    def test_decreasing_in_beta(self, concentrated):
        values = [
            smooth_sensitivity_median(concentrated, beta, LO, HI)
            for beta in (0.001, 0.01, 0.1, 1.0)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_concentrated_data_far_below_global(self, concentrated):
        s = smooth_sensitivity_median(concentrated, beta=0.05, lo=LO, hi=HI)
        assert s < (HI - LO) / 20

    def test_spread_data_near_global(self):
        """Two extreme clusters around the median: the median is fragile."""
        values = [LO] * 250 + [HI] * 251
        s = smooth_sensitivity_median(values, beta=1.0, lo=LO, hi=HI)
        assert s >= (HI - LO) * math.exp(-1.0) * 0.99  # LS(1)=span, decayed once

    def test_dominated_tail_short_circuits(self, concentrated):
        """The early-exit never changes the answer (compare to brute force)."""
        beta = 0.2
        x = np.sort(np.clip(concentrated[:51], LO, HI))
        brute = max(
            math.exp(-beta * t) * local_sensitivity_at_distance(x, t, LO, HI)
            for t in range(x.size + 1)
        )
        assert smooth_sensitivity_median(x, beta, LO, HI) == pytest.approx(brute)

    def test_validation(self, concentrated):
        with pytest.raises(BudgetError):
            smooth_sensitivity_median(concentrated, 0.0, LO, HI)
        with pytest.raises(BudgetError):
            smooth_sensitivity_median([], 0.1, LO, HI)
        with pytest.raises(BudgetError):
            smooth_sensitivity_median(concentrated, 0.1, 5.0, 5.0)


class TestDPMedian:
    def test_smooth_beats_global_on_concentrated_data(self, concentrated):
        rng = np.random.default_rng(0)
        true = float(np.median(concentrated))
        eps = 0.5
        smooth_err = np.mean(
            [
                abs(dp_median_smooth(concentrated, eps, LO, HI, delta=1e-6, rng=rng) - true)
                for _ in range(60)
            ]
        )
        global_err = np.mean(
            [abs(dp_median_global(concentrated, eps, LO, HI, rng=rng) - true) for _ in range(60)]
        )
        assert smooth_err < global_err / 5

    def test_pure_dp_cauchy_variant(self, concentrated):
        rng = np.random.default_rng(3)
        true = float(np.median(concentrated))
        answers = [
            dp_median_smooth(concentrated, 1.0, LO, HI, delta=None, rng=rng)
            for _ in range(60)
        ]
        # Cauchy has heavy tails; the median of answers is still close.
        assert abs(float(np.median(answers)) - true) < 5.0

    def test_output_clipped_to_range(self, concentrated):
        rng = np.random.default_rng(4)
        for _ in range(40):
            out = dp_median_smooth(concentrated, 0.05, LO, HI, rng=rng)
            assert LO <= out <= HI

    def test_error_falls_with_epsilon(self, concentrated):
        true = float(np.median(concentrated))

        def mae(eps, seed):
            rng = np.random.default_rng(seed)
            return np.mean(
                [
                    abs(dp_median_smooth(concentrated, eps, LO, HI, delta=1e-6, rng=rng) - true)
                    for _ in range(80)
                ]
            )

        assert mae(2.0, 5) < mae(0.1, 5)

    def test_deterministic_with_rng(self, concentrated):
        a = dp_median_smooth(concentrated, 1.0, LO, HI, rng=np.random.default_rng(9))
        b = dp_median_smooth(concentrated, 1.0, LO, HI, rng=np.random.default_rng(9))
        assert a == b

    def test_validation(self, concentrated):
        with pytest.raises(BudgetError):
            dp_median_smooth(concentrated, 0.0, LO, HI)
        with pytest.raises(BudgetError):
            dp_median_smooth(concentrated, 1.0, LO, HI, delta=2.0)
        with pytest.raises(BudgetError):
            dp_median_global(concentrated, -1.0, LO, HI)
